"""Legacy setup shim.

The execution environment is offline and its setuptools lacks the
``wheel`` package PEP 517 editable installs need, so ``pip install -e .``
falls back to this file via ``setup.py develop``.
"""

from setuptools import setup

setup()
