"""Low-level wire-format encoding and decoding (RFC 1035 §4.1.4).

:class:`WireWriter` serializes integers, byte strings and domain names into
a growing buffer, applying standard DNS name compression: every name suffix
already emitted at an offset < 0x4000 is replaced by a two-byte pointer.
:class:`WireReader` is the inverse, following compression pointers with a
loop guard.

These two classes are the only place in the code base that touches raw
bytes; every higher layer (rdata, records, messages) builds on them.  The
DNScup prototype's claim that all of its messages fit in 512 bytes
(paper §5.2) is checked against the output of this module.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from .name import Name, NameError_

#: Compression pointers are 14-bit offsets tagged with the top two bits set.
_POINTER_TAG = 0xC0
_MAX_POINTER_OFFSET = 0x3FFF

_PACK_U8 = struct.Struct("!B").pack
_PACK_U16 = struct.Struct("!H").pack
_PACK_U32 = struct.Struct("!I").pack


class WireFormatError(ValueError):
    """Raised on malformed wire data: truncation, bad pointers, overruns."""


class WireWriter:
    """Accumulates a DNS message body with name compression.

    The compression table maps lower-cased label suffix tuples to the
    offset of their first occurrence, exactly as BIND does.  Compression
    can be disabled (``compress=False``) — RFC 3597 forbids compressing
    names inside the RDATA of unknown types, and tests use it to measure
    the savings compression buys.

    Output accumulates in one growing :class:`bytearray` (amortized O(1)
    appends, no per-write 1–2-byte ``bytes`` objects), and each name's
    length-prefixed label encodings are cached so re-emitting a name —
    the uncompressed path and every partial suffix match — skips the
    per-label ASCII re-encoding.  :meth:`reset` clears the message state
    while keeping the grown buffer storage and the name cache, so one
    writer can encode a stream of messages.
    """

    def __init__(self, compress: bool = True):
        self._buffer = bytearray()
        self._compress = compress
        self._offsets: Dict[Tuple[str, ...], int] = {}
        #: Exact-spelling label-chunk cache: labels tuple -> encoded chunks.
        self._name_cache: Dict[Tuple[str, ...], Tuple[bytes, ...]] = {}

    # -- primitives --------------------------------------------------------

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes."""
        self._buffer += data

    def write_u8(self, value: int) -> None:
        """Append one unsigned byte."""
        self._buffer += _PACK_U8(value)

    def write_u16(self, value: int) -> None:
        """Append a 16-bit big-endian integer."""
        self._buffer += _PACK_U16(value)

    def write_u32(self, value: int) -> None:
        """Append a 32-bit big-endian integer."""
        self._buffer += _PACK_U32(value)

    def write_string(self, data: bytes) -> None:
        """A length-prefixed character string (max 255 octets)."""
        if len(data) > 255:
            raise WireFormatError("character-string longer than 255 octets")
        self.write_u8(len(data))
        self.write_bytes(data)

    # -- names -------------------------------------------------------------

    def _encoded_labels(self, name: Name) -> Tuple[bytes, ...]:
        """``name``'s length-prefixed label chunks, cached by spelling."""
        labels = name.labels
        chunks = self._name_cache.get(labels)
        if chunks is None:
            chunks = tuple(_PACK_U8(len(encoded)) + encoded
                           for encoded in (label.encode("ascii")
                                           for label in labels))
            self._name_cache[labels] = chunks
        return chunks

    def write_name(self, name: Name) -> None:
        """Emit ``name``, compressing against previously written names."""
        key = name.key
        buffer = self._buffer
        if self._compress:
            target = self._offsets.get(key)
            if target is not None:
                # Whole-name hit — the common case on repeated owners.
                buffer += _PACK_U16(_POINTER_TAG << 8 | target)
                return
        chunks = self._encoded_labels(name)
        if self._compress:
            offsets = self._offsets
            for i in range(len(chunks)):
                suffix = key[i:]
                if i:
                    target = offsets.get(suffix)
                    if target is not None:
                        buffer += _PACK_U16(_POINTER_TAG << 8 | target)
                        return
                if len(buffer) <= _MAX_POINTER_OFFSET:
                    offsets[suffix] = len(buffer)
                buffer += chunks[i]
        else:
            for chunk in chunks:
                buffer += chunk
        buffer.append(0)

    # -- output ------------------------------------------------------------

    def getvalue(self) -> bytes:
        """The accumulated buffer."""
        return bytes(self._buffer)

    def reset(self) -> None:
        """Start a fresh message, reusing buffer storage and name cache."""
        self._buffer.clear()
        self._offsets.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class WireReader:
    """Sequential reader over a full DNS message with pointer chasing."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._offset = offset

    @property
    def offset(self) -> int:
        """Current cursor position."""
        return self._offset

    @property
    def remaining(self) -> int:
        """Bytes left in the buffer after the cursor."""
        return len(self._data) - self._offset

    def seek(self, offset: int) -> None:
        """Move the cursor to an absolute offset."""
        if not 0 <= offset <= len(self._data):
            raise WireFormatError(f"seek out of range: {offset}")
        self._offset = offset

    # -- primitives --------------------------------------------------------

    def read_bytes(self, count: int) -> bytes:
        """Consume and return ``count`` bytes."""
        if count < 0 or self._offset + count > len(self._data):
            raise WireFormatError("truncated message")
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def read_u8(self) -> int:
        """Consume one unsigned byte."""
        return self.read_bytes(1)[0]

    def read_u16(self) -> int:
        """Consume a 16-bit big-endian integer."""
        return struct.unpack("!H", self.read_bytes(2))[0]

    def read_u32(self) -> int:
        """Consume a 32-bit big-endian integer."""
        return struct.unpack("!I", self.read_bytes(4))[0]

    def read_string(self) -> bytes:
        """Consume one length-prefixed character string."""
        return self.read_bytes(self.read_u8())

    # -- names -------------------------------------------------------------

    def read_name(self) -> Name:
        """Decode a possibly-compressed name starting at the cursor."""
        labels: List[str] = []
        jumps = 0
        cursor = self._offset
        resume: Optional[int] = None
        while True:
            if cursor >= len(self._data):
                raise WireFormatError("name runs past end of message")
            length = self._data[cursor]
            if length & _POINTER_TAG == _POINTER_TAG:
                if cursor + 1 >= len(self._data):
                    raise WireFormatError("truncated compression pointer")
                pointer = ((length & 0x3F) << 8) | self._data[cursor + 1]
                if resume is None:
                    resume = cursor + 2
                if pointer >= cursor:
                    raise WireFormatError("forward compression pointer")
                jumps += 1
                if jumps > 128:
                    raise WireFormatError("compression pointer loop")
                cursor = pointer
                continue
            if length & _POINTER_TAG:
                raise WireFormatError(f"bad label tag 0x{length:02x}")
            if length == 0:
                cursor += 1
                break
            start = cursor + 1
            end = start + length
            if end > len(self._data):
                raise WireFormatError("label runs past end of message")
            try:
                labels.append(self._data[start:end].decode("ascii"))
            except UnicodeDecodeError as exc:
                raise WireFormatError("non-ascii label") from exc
            cursor = end
        self._offset = resume if resume is not None else cursor
        try:
            return Name(labels)
        except NameError_ as exc:
            raise WireFormatError(str(exc)) from exc
