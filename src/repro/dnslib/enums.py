"""Protocol constants for the DNS data model.

These enumerations follow RFC 1035 numbering, extended with the values
DNScup introduces: the ``CACHE_UPDATE`` opcode (6) used for proactive
cache-update messages and lease negotiation, alongside the standard
``UPDATE`` opcode (5) from RFC 2136 that DNScup builds upon.
"""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """DNS resource record types (RFC 1035 and friends)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41
    AXFR = 252
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRType":
        """Parse a record-type mnemonic such as ``"A"`` or ``"SOA"``."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown RR type mnemonic: {text!r}") from None


class RRClass(enum.IntEnum):
    """DNS classes.  ``NONE`` and ``ANY`` get special meaning in RFC 2136."""

    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRClass":
        """Parse from presentation text."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown RR class mnemonic: {text!r}") from None


class Opcode(enum.IntEnum):
    """Message opcodes.

    ``CACHE_UPDATE`` is DNScup's new opcode 6: the message an authoritative
    nameserver sends to DNS caches holding valid leases when a tracked
    resource record changes (paper §5.2).
    """

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5
    CACHE_UPDATE = 6


class Rcode(enum.IntEnum):
    """Response codes, including the RFC 2136 update-specific codes."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    YXDOMAIN = 6
    YXRRSET = 7
    NXRRSET = 8
    NOTAUTH = 9
    NOTZONE = 10


#: RFC 1035 §2.3.4 limit on UDP message payloads; the DNScup prototype
#: verifies all of its messages stay below this bound (paper §5.2).
MAX_UDP_PAYLOAD = 512

#: Maximum length of one label on the wire.
MAX_LABEL_LENGTH = 63

#: Maximum length of a full domain name on the wire, including the root.
MAX_NAME_WIRE_LENGTH = 255
