"""Domain names as immutable label sequences.

A :class:`Name` stores the label sequence of a fully-qualified domain name
(the root is the empty label sequence).  Names compare and hash
case-insensitively, as required by RFC 1035 §2.3.3, while preserving the
original spelling for presentation.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple, Union

from .enums import MAX_LABEL_LENGTH, MAX_NAME_WIRE_LENGTH


class NameError_(ValueError):
    """Raised for malformed domain names.

    Named with a trailing underscore to avoid shadowing the builtin
    ``NameError``.
    """


class Name:
    """An immutable, case-insensitively compared domain name.

    >>> Name.from_text("www.Example.COM") == Name.from_text("www.example.com")
    True
    >>> Name.from_text("www.example.com").parent()
    Name('example.com.')
    """

    __slots__ = ("_labels", "_key", "_hash")

    def __init__(self, labels: Sequence[str]):
        labels = tuple(labels)
        for label in labels:
            if not label:
                raise NameError_("empty label inside a name")
            if len(label.encode("ascii", "ignore")) > MAX_LABEL_LENGTH:
                raise NameError_(f"label too long: {label!r}")
        if self._wire_length(labels) > MAX_NAME_WIRE_LENGTH:
            raise NameError_("name exceeds 255 octets on the wire")
        self._labels: Tuple[str, ...] = labels
        self._key: Tuple[str, ...] = tuple(label.lower() for label in labels)
        # Names key every cache, lease table and trace index in the
        # system; precomputing the (immutable) hash keeps those dict
        # operations off the tuple-hashing path.
        self._hash: int = hash(self._key)

    @staticmethod
    def _wire_length(labels: Sequence[str]) -> int:
        return sum(len(label) + 1 for label in labels) + 1

    # -- construction ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Build a name from dotted text.  A trailing dot is optional."""
        text = text.strip()
        if text in ("", "."):
            return cls(())
        if text.endswith("."):
            text = text[:-1]
        labels = text.split(".")
        if any(not label for label in labels):
            raise NameError_(f"empty label in {text!r}")
        return cls(labels)

    @classmethod
    def root(cls) -> "Name":
        """The root name (empty label sequence)."""
        return cls(())

    # -- structure ---------------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        """The label tuple of this name."""
        return self._labels

    @property
    def key(self) -> Tuple[str, ...]:
        """Lower-cased label tuple used for comparisons and dict keys."""
        return self._key

    def is_root(self) -> bool:
        """True for the root name."""
        return not self._labels

    def parent(self) -> "Name":
        """The name with the leftmost label removed.

        :raises NameError_: when called on the root.
        """
        if not self._labels:
            raise NameError_("the root name has no parent")
        return Name(self._labels[1:])

    def child(self, label: str) -> "Name":
        """Prepend ``label``, producing a subdomain one level deeper."""
        return Name((label,) + self._labels)

    def concatenate(self, suffix: "Name") -> "Name":
        """Append ``suffix``'s labels — used to absolutize relative names."""
        return Name(self._labels + suffix._labels)

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` is ``other`` or lies beneath it."""
        n = len(other._key)
        if n == 0:
            return True
        return len(self._key) >= n and self._key[-n:] == other._key

    def relativize(self, origin: "Name") -> Tuple[str, ...]:
        """Labels of ``self`` with ``origin``'s suffix removed."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        n = len(origin._labels)
        return self._labels[: len(self._labels) - n] if n else self._labels

    def ancestors(self) -> Iterator["Name"]:
        """Yield self, parent, ..., root — the resolver walks these."""
        name = self
        while True:
            yield name
            if name.is_root():
                return
            name = name.parent()

    def tld(self) -> str:
        """The top-level label (e.g. ``"com"``), or ``""`` for the root."""
        return self._key[-1] if self._key else ""

    def wire_length(self) -> int:
        """Uncompressed length of this name on the wire."""
        return self._wire_length(self._labels)

    # -- text --------------------------------------------------------------

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        if not self._labels:
            return "."
        return ".".join(self._labels) + "."

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self._key == other._key
        return NotImplemented

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering: compare reversed label sequences.
        return tuple(reversed(self._key)) < tuple(reversed(other._key))

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._labels)

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"


NameLike = Union[Name, str]


def as_name(value: NameLike) -> Name:
    """Coerce a string or :class:`Name` into a :class:`Name`."""
    if isinstance(value, Name):
        return value
    return Name.from_text(value)
