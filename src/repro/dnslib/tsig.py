"""Transaction signatures (TSIG, RFC 2845-style) for secure DNScup.

Paper §5.3: plain-text CACHE-UPDATE messages could let a compromised
host poison caches, so DNScup defers to the secure DNS machinery —
DNSSEC and secure Dynamic Update.  The deployable core of that
machinery is TSIG: a shared-secret HMAC over the message appended as a
final additional-section record, verified hop by hop.  We implement the
subset DNScup needs:

* a :class:`Key` (name + HMAC-SHA256 secret) and :class:`Keyring`;
* :func:`sign` — append a TSIG record to a wire message;
* :func:`verify` — check and strip it, with clock-skew (fudge) and
  replay (timestamp monotonicity) protection.

The MAC covers the original message bytes plus the key name, algorithm,
signing time and fudge, as in RFC 2845 §3.4 (simplified: no prior-MAC
chaining, no truncated MACs — neither is needed for single-shot
CACHE-UPDATE exchanges).
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import struct
from typing import Dict, Optional, Tuple

from .name import Name, as_name

#: The one algorithm we support.
ALGORITHM = "hmac-sha256"

#: Default allowed clock skew, seconds (RFC 2845 recommends 300).
DEFAULT_FUDGE = 300

#: Marker prefixed to the appended TSIG blob so strip/parse is
#: unambiguous without full RR parsing of the additional section.
_TSIG_MAGIC = b"TSIG2845"


class TsigError(ValueError):
    """Verification failure: unknown key, bad MAC, expired, or replay."""


@dataclasses.dataclass(frozen=True)
class Key:
    """A shared secret identified by a domain-style key name."""

    name: Name
    secret: bytes

    @classmethod
    def create(cls, name, secret) -> "Key":
        """Validated constructor."""
        if isinstance(secret, str):
            secret = secret.encode("utf-8")
        if len(secret) < 16:
            raise ValueError("TSIG secrets must be at least 16 bytes")
        return cls(as_name(name), bytes(secret))


class Keyring:
    """Key store shared by the two ends of a signed channel."""

    def __init__(self):
        self._keys: Dict[Name, Key] = {}

    def add(self, key: Key) -> None:
        """Add one item."""
        self._keys[key.name] = key

    def get(self, name) -> Optional[Key]:
        """Lookup by key; None when absent."""
        return self._keys.get(as_name(name))

    def __contains__(self, name) -> bool:
        return as_name(name) in self._keys

    def __len__(self) -> int:
        return len(self._keys)


def _mac_input(message_wire: bytes, key_name: Name, signed_at: int,
               fudge: int) -> bytes:
    return b"".join([
        message_wire,
        key_name.to_text().lower().encode("ascii"),
        ALGORITHM.encode("ascii"),
        struct.pack("!QH", signed_at, fudge),
    ])


def sign(message_wire: bytes, key: Key, now: float,
         fudge: int = DEFAULT_FUDGE) -> bytes:
    """Return ``message_wire`` with a TSIG blob appended."""
    signed_at = int(now)
    mac = hmac.new(key.secret,
                   _mac_input(message_wire, key.name, signed_at, fudge),
                   hashlib.sha256).digest()
    key_name = key.name.to_text().encode("ascii")
    blob = b"".join([
        _TSIG_MAGIC,
        struct.pack("!H", len(key_name)), key_name,
        struct.pack("!QH", signed_at, fudge),
        struct.pack("!H", len(mac)), mac,
    ])
    return message_wire + blob


def split_signed(wire: bytes) -> Tuple[bytes, Optional[dict]]:
    """Split a possibly-signed wire blob into (message, tsig fields).

    Returns ``(wire, None)`` when no TSIG blob is present.
    """
    marker = wire.rfind(_TSIG_MAGIC)
    if marker == -1:
        return wire, None
    cursor = marker + len(_TSIG_MAGIC)
    try:
        (name_length,) = struct.unpack_from("!H", wire, cursor)
        cursor += 2
        key_name = Name.from_text(wire[cursor:cursor + name_length]
                                  .decode("ascii"))
        cursor += name_length
        signed_at, fudge = struct.unpack_from("!QH", wire, cursor)
        cursor += 10
        (mac_length,) = struct.unpack_from("!H", wire, cursor)
        cursor += 2
        mac = wire[cursor:cursor + mac_length]
        if len(mac) != mac_length or cursor + mac_length != len(wire):
            raise ValueError("truncated TSIG blob")
    except (struct.error, ValueError) as exc:
        raise TsigError(f"malformed TSIG blob: {exc}") from exc
    fields = {"key_name": key_name, "signed_at": signed_at,
              "fudge": fudge, "mac": mac}
    return wire[:marker], fields


class Verifier:
    """Stateful verification with per-key replay protection."""

    def __init__(self, keyring: Keyring):
        self.keyring = keyring
        self._last_signed_at: Dict[Name, int] = {}

    def verify(self, wire: bytes, now: float,
               require_signature: bool = True) -> bytes:
        """Verify and strip the TSIG blob; returns the bare message.

        :raises TsigError: on any failure.  With
            ``require_signature=False`` an unsigned message passes
            through untouched (incremental deployment: unsigned peers
            fall back to plain DNScup).
        """
        message, fields = split_signed(wire)
        if fields is None:
            if require_signature:
                raise TsigError("unsigned message on a signed channel")
            return message
        key = self.keyring.get(fields["key_name"])
        if key is None:
            raise TsigError(f"unknown key: {fields['key_name']}")
        expected = hmac.new(
            key.secret,
            _mac_input(message, key.name, fields["signed_at"],
                       fields["fudge"]),
            hashlib.sha256).digest()
        if not hmac.compare_digest(expected, fields["mac"]):
            raise TsigError("MAC mismatch")
        if abs(now - fields["signed_at"]) > fields["fudge"]:
            raise TsigError(
                f"signature outside fudge window: signed at "
                f"{fields['signed_at']}, now {now:.0f}")
        last = self._last_signed_at.get(key.name)
        if last is not None and fields["signed_at"] < last:
            raise TsigError("stale timestamp: possible replay")
        self._last_signed_at[key.name] = fields["signed_at"]
        return message
