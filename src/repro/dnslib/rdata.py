"""Typed RDATA for the record types the reproduction needs.

Each class is an immutable value object with three representations:
text (master-file fields), wire (via :class:`~repro.dnslib.wire.WireWriter`
/ :class:`~repro.dnslib.wire.WireReader`), and Python attributes.  ``A``
records carry plain dotted-quad strings rather than ``ipaddress`` objects;
the simulator fabricates millions of them and string keys are cheap.
"""

from __future__ import annotations

import struct
from typing import Callable, ClassVar, Dict, List, Tuple, Type

from .enums import RRType
from .name import Name, as_name
from .wire import WireFormatError, WireReader, WireWriter


def _check_ipv4(text: str) -> str:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address: {text!r}")
    for part in parts:
        if not part.isdigit() or not 0 <= int(part) <= 255 or (part != "0" and part[0] == "0"):
            raise ValueError(f"bad IPv4 address: {text!r}")
    return text


def _check_ipv6(text: str) -> str:
    # Minimal validation: hex groups with at most one "::" elision.
    if text.count("::") > 1:
        raise ValueError(f"bad IPv6 address: {text!r}")
    groups = [g for g in text.replace("::", ":x:").split(":") if g != ""]
    expanded = 8 if "::" not in text else len([g for g in groups if g != "x"])
    if "::" not in text and len(groups) != 8:
        raise ValueError(f"bad IPv6 address: {text!r}")
    if expanded > 8:
        raise ValueError(f"bad IPv6 address: {text!r}")
    for group in groups:
        if group == "x":
            continue
        if len(group) > 4 or any(c not in "0123456789abcdefABCDEF" for c in group):
            raise ValueError(f"bad IPv6 address: {text!r}")
    return text.lower()


def _ipv6_to_bytes(text: str) -> bytes:
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    return b"".join(struct.pack("!H", int(g, 16)) for g in groups)


def _ipv6_from_bytes(data: bytes) -> str:
    groups = [f"{struct.unpack('!H', data[i:i + 2])[0]:x}" for i in range(0, 16, 2)]
    return ":".join(groups)


class Rdata:
    """Base class for typed record data."""

    rrtype: ClassVar[RRType]

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        raise NotImplementedError

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        raise NotImplementedError

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "Rdata":
        """Decode one instance from the reader's cursor."""
        raise NotImplementedError

    @classmethod
    def from_text(cls, fields: List[str], origin: Name) -> "Rdata":
        """Parse from presentation text."""
        raise NotImplementedError

    # Value semantics come from each subclass's _key().

    def _key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Rdata):
            return self.rrtype == other.rrtype and self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.rrtype, self._key()))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()!r})"


class A(Rdata):
    """An IPv4 address — the record type DNScup's study targets (§3)."""

    rrtype = RRType.A
    __slots__ = ("address",)

    def __init__(self, address: str):
        self.address = _check_ipv4(address)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer.write_bytes(bytes(int(p) for p in self.address.split(".")))

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return self.address

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "A":
        """Decode one instance from the reader's cursor."""
        if rdlength != 4:
            raise WireFormatError(f"A rdata must be 4 bytes, got {rdlength}")
        return cls(".".join(str(b) for b in reader.read_bytes(4)))

    @classmethod
    def from_text(cls, fields: List[str], origin: Name) -> "A":
        """Parse from presentation text."""
        (address,) = fields
        return cls(address)

    def _key(self) -> Tuple:
        return (self.address,)


class AAAA(Rdata):
    """An IPv6 address."""

    rrtype = RRType.AAAA
    __slots__ = ("address",)

    def __init__(self, address: str):
        self.address = _check_ipv6(address)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer.write_bytes(_ipv6_to_bytes(self.address))

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return self.address

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "AAAA":
        """Decode one instance from the reader's cursor."""
        if rdlength != 16:
            raise WireFormatError(f"AAAA rdata must be 16 bytes, got {rdlength}")
        return cls(_ipv6_from_bytes(reader.read_bytes(16)))

    @classmethod
    def from_text(cls, fields: List[str], origin: Name) -> "AAAA":
        """Parse from presentation text."""
        (address,) = fields
        return cls(address)

    def _key(self) -> Tuple:
        return (_ipv6_to_bytes(self.address),)


class _SingleName(Rdata):
    """Shared implementation for NS/CNAME/PTR — one domain name."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target: Name = as_name(target)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer.write_name(self.target)

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return self.target.to_text()

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        """Decode one instance from the reader's cursor."""
        return cls(reader.read_name())

    @classmethod
    def from_text(cls, fields: List[str], origin: Name):
        """Parse from presentation text."""
        (target,) = fields
        return cls(_absolutize(target, origin))

    def _key(self) -> Tuple:
        return (self.target,)


class NS(_SingleName):
    """A delegation to a nameserver."""

    rrtype = RRType.NS


class CNAME(_SingleName):
    """A canonical-name alias."""

    rrtype = RRType.CNAME


class PTR(_SingleName):
    """A reverse-mapping pointer."""

    rrtype = RRType.PTR


class SOA(Rdata):
    """Start of authority: zone serial and timers (RFC 1035 §3.3.13)."""

    rrtype = RRType.SOA
    __slots__ = ("mname", "rname", "serial", "refresh", "retry", "expire", "minimum")

    def __init__(self, mname, rname, serial: int, refresh: int, retry: int,
                 expire: int, minimum: int):
        self.mname: Name = as_name(mname)
        self.rname: Name = as_name(rname)
        self.serial = serial & 0xFFFFFFFF
        self.refresh = refresh
        self.retry = retry
        self.expire = expire
        self.minimum = minimum

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer.write_name(self.mname)
        writer.write_name(self.rname)
        for value in (self.serial, self.refresh, self.retry, self.expire, self.minimum):
            writer.write_u32(value)

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return (f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
                f"{self.refresh} {self.retry} {self.expire} {self.minimum}")

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SOA":
        """Decode one instance from the reader's cursor."""
        mname = reader.read_name()
        rname = reader.read_name()
        serial, refresh, retry, expire, minimum = (reader.read_u32() for _ in range(5))
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    @classmethod
    def from_text(cls, fields: List[str], origin: Name) -> "SOA":
        """Parse from presentation text."""
        mname, rname, serial, refresh, retry, expire, minimum = fields
        return cls(_absolutize(mname, origin), _absolutize(rname, origin),
                   int(serial), int(refresh), int(retry), int(expire), int(minimum))

    def _key(self) -> Tuple:
        return (self.mname, self.rname, self.serial, self.refresh,
                self.retry, self.expire, self.minimum)


class MX(Rdata):
    """A mail exchanger with preference."""

    rrtype = RRType.MX
    __slots__ = ("preference", "exchange")

    def __init__(self, preference: int, exchange):
        self.preference = preference
        self.exchange: Name = as_name(exchange)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer.write_u16(self.preference)
        writer.write_name(self.exchange)

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return f"{self.preference} {self.exchange.to_text()}"

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "MX":
        """Decode one instance from the reader's cursor."""
        return cls(reader.read_u16(), reader.read_name())

    @classmethod
    def from_text(cls, fields: List[str], origin: Name) -> "MX":
        """Parse from presentation text."""
        preference, exchange = fields
        return cls(int(preference), _absolutize(exchange, origin))

    def _key(self) -> Tuple:
        return (self.preference, self.exchange)


class TXT(Rdata):
    """Free-form text strings."""

    rrtype = RRType.TXT
    __slots__ = ("strings",)

    def __init__(self, strings):
        if isinstance(strings, (str, bytes)):
            strings = [strings]
        self.strings: Tuple[bytes, ...] = tuple(
            s.encode("ascii") if isinstance(s, str) else bytes(s) for s in strings
        )
        if not self.strings:
            raise ValueError("TXT needs at least one string")

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        for string in self.strings:
            writer.write_string(string)

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return " ".join('"' + s.decode("ascii") + '"' for s in self.strings)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "TXT":
        """Decode one instance from the reader's cursor."""
        end = reader.offset + rdlength
        strings = []
        while reader.offset < end:
            strings.append(reader.read_string())
        if reader.offset != end:
            raise WireFormatError("TXT rdata length mismatch")
        return cls(strings)

    @classmethod
    def from_text(cls, fields: List[str], origin: Name) -> "TXT":
        """Parse from presentation text."""
        return cls([field.strip('"') for field in fields])

    def _key(self) -> Tuple:
        return self.strings


class SRV(Rdata):
    """Service location (RFC 2782)."""

    rrtype = RRType.SRV
    __slots__ = ("priority", "weight", "port", "target")

    def __init__(self, priority: int, weight: int, port: int, target):
        self.priority = priority
        self.weight = weight
        self.port = port
        self.target: Name = as_name(target)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer.write_u16(self.priority)
        writer.write_u16(self.weight)
        writer.write_u16(self.port)
        writer.write_name(self.target)

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return f"{self.priority} {self.weight} {self.port} {self.target.to_text()}"

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SRV":
        """Decode one instance from the reader's cursor."""
        return cls(reader.read_u16(), reader.read_u16(), reader.read_u16(),
                   reader.read_name())

    @classmethod
    def from_text(cls, fields: List[str], origin: Name) -> "SRV":
        """Parse from presentation text."""
        priority, weight, port, target = fields
        return cls(int(priority), int(weight), int(port), _absolutize(target, origin))

    def _key(self) -> Tuple:
        return (self.priority, self.weight, self.port, self.target)


class EmptyRdata(Rdata):
    """Zero-length RDATA.

    RFC 2136 encodes its prerequisite and delete pseudo-records with
    RDLENGTH 0; this sentinel is what such records carry in memory and
    what zero-length rdata decodes to.
    """

    __slots__ = ("_rrtype",)

    def __init__(self, rrtype: RRType):
        self._rrtype = RRType(rrtype)

    @property
    def rrtype(self) -> RRType:  # type: ignore[override]
        """The record type this object carries."""
        return self._rrtype

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        pass  # zero octets

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return ""

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "EmptyRdata":
        """Decode one instance from the reader's cursor."""
        raise NotImplementedError("constructed via rdata_from_wire")

    def _key(self) -> Tuple:
        return ()


class Generic(Rdata):
    """Opaque rdata for types without a dedicated class (RFC 3597 style)."""

    __slots__ = ("_rrtype", "data")

    def __init__(self, rrtype: RRType, data: bytes):
        self._rrtype = rrtype
        self.data = bytes(data)

    @property
    def rrtype(self) -> RRType:  # type: ignore[override]
        """The record type this object carries."""
        return self._rrtype

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer.write_bytes(self.data)

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return f"\\# {len(self.data)} {self.data.hex()}"

    @classmethod
    def from_wire_typed(cls, rrtype: RRType, reader: WireReader, rdlength: int) -> "Generic":
        """Decode opaque rdata of the given type."""
        return cls(rrtype, reader.read_bytes(rdlength))

    def _key(self) -> Tuple:
        return (self.data,)


def _absolutize(text: str, origin: Name) -> Name:
    """Master-file name resolution: append the origin unless absolute."""
    if text == "@":
        return origin
    if text.endswith("."):
        return Name.from_text(text)
    return Name.from_text(text).concatenate(origin)


_RDATA_CLASSES: Dict[RRType, Type[Rdata]] = {
    RRType.A: A,
    RRType.AAAA: AAAA,
    RRType.NS: NS,
    RRType.CNAME: CNAME,
    RRType.PTR: PTR,
    RRType.SOA: SOA,
    RRType.MX: MX,
    RRType.TXT: TXT,
    RRType.SRV: SRV,
}


def rdata_class_for(rrtype: RRType) -> Type[Rdata]:
    """The concrete :class:`Rdata` subclass for ``rrtype``, if known."""
    try:
        return _RDATA_CLASSES[rrtype]
    except KeyError:
        raise ValueError(f"no rdata class for type {rrtype!r}") from None


def rdata_from_wire(rrtype: RRType, reader: WireReader, rdlength: int) -> Rdata:
    """Decode rdata, falling back to :class:`Generic` for unknown types.

    Zero-length rdata decodes to :class:`EmptyRdata` — the RFC 2136
    pseudo-record convention (no real record of the supported types has
    empty rdata).
    """
    if rdlength == 0:
        return EmptyRdata(rrtype)
    cls = _RDATA_CLASSES.get(rrtype)
    end = reader.offset + rdlength
    if cls is None:
        rdata: Rdata = Generic.from_wire_typed(rrtype, reader, rdlength)
    else:
        rdata = cls.from_wire(reader, rdlength)
    if reader.offset != end:
        raise WireFormatError(
            f"rdata length mismatch for {rrtype.name}: "
            f"declared {rdlength}, consumed {reader.offset - (end - rdlength)}"
        )
    return rdata


def rdata_from_text(rrtype: RRType, fields: List[str], origin: Name) -> Rdata:
    """Parse master-file rdata fields for ``rrtype``."""
    return rdata_class_for(rrtype).from_text(fields, origin)
