"""DNS messages, including DNScup's wire extensions.

The layout follows RFC 1035 §4.1 — header, question, answer, authority,
additional — with the two fields the DNScup prototype adds (paper §5.2):

* **RRC** (recent reference counter): a 16-bit query-rate indicator the
  local nameserver appends to each question, telling the authoritative
  server how hot this record is locally so it can size the lease.
* **LLT** (lease length time): a 16-bit lease duration, in seconds,
  appended to the answer section of a response when a lease is granted.

Both fields are present only when the **CU** header bit is set (we use the
single reserved Z bit, 0x0040, as the "DNScup-aware" marker), which keeps
plain RFC 1035 messages byte-identical to standard DNS — the backward
compatibility the paper claims.  For UPDATE (RFC 2136) messages the four
sections are re-labelled zone / prerequisite / update / additional; the
aliases on :class:`Message` expose that vocabulary.
"""

from __future__ import annotations

import itertools
import struct
from typing import List, Optional, Tuple

from .enums import MAX_UDP_PAYLOAD, Opcode, Rcode, RRClass, RRType
from .name import Name, as_name
from .records import ResourceRecord
from .wire import WireFormatError, WireReader, WireWriter

FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_TC = 0x0200
FLAG_RD = 0x0100
FLAG_RA = 0x0080
#: DNScup-aware marker: repurposes the reserved Z bit.  When set, each
#: question carries an RRC field and each response carries an LLT field.
FLAG_CU = 0x0040

_OPCODE_SHIFT = 11
_OPCODE_MASK = 0xF

#: RRC and LLT are 16-bit, so both saturate at this value.  A lease longer
#: than ~18.2 hours must be renewed in installments (paper's maxima for CDN
#: and Dyn domains, 200 s and 6000 s, fit directly).
MAX_U16 = 0xFFFF

_id_counter = itertools.count(1)

_ROOT_NAME = Name.root()


def next_message_id() -> int:
    """A process-wide deterministic ID sequence (wraps at 16 bits)."""
    return next(_id_counter) & MAX_U16


class Question:
    """One question-section entry, optionally carrying DNScup's RRC."""

    __slots__ = ("name", "rrtype", "rrclass", "rrc")

    def __init__(self, name, rrtype: RRType, rrclass: RRClass = RRClass.IN,
                 rrc: Optional[int] = None):
        self.name: Name = as_name(name)
        self.rrtype = RRType(rrtype)
        self.rrclass = RRClass(rrclass)
        if rrc is not None and not 0 <= rrc <= MAX_U16:
            raise ValueError(f"RRC out of 16-bit range: {rrc}")
        self.rrc = rrc

    def to_wire(self, writer: WireWriter, cu: bool) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer.write_name(self.name)
        writer.write_u16(self.rrtype)
        writer.write_u16(self.rrclass)
        if cu:
            writer.write_u16(self.rrc if self.rrc is not None else 0)

    @classmethod
    def from_wire(cls, reader: WireReader, cu: bool) -> "Question":
        """Decode one instance from the reader's cursor."""
        name = reader.read_name()
        rrtype = RRType(reader.read_u16())
        rrclass = RRClass(reader.read_u16())
        rrc = reader.read_u16() if cu else None
        return cls(name, rrtype, rrclass, rrc)

    def key(self) -> Tuple[Name, RRType, RRClass]:
        """The lookup key for this object."""
        return (self.name, self.rrtype, self.rrclass)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Question):
            return self.key() == other.key() and self.rrc == other.rrc
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.key(), self.rrc))

    def __repr__(self) -> str:
        rrc = f", rrc={self.rrc}" if self.rrc is not None else ""
        return f"Question({self.name.to_text()!r}, {self.rrtype.name}{rrc})"


class Message:
    """A full DNS message.

    Use the factory helpers (:func:`make_query`, :func:`make_response`,
    :func:`make_update`, :func:`make_cache_update`) rather than driving the
    constructor directly; they set the flag combinations each opcode needs.
    """

    __slots__ = ("id", "flags", "rcode_value", "question", "answer",
                 "authority", "additional", "llt", "edns_payload_size")

    def __init__(self, msg_id: Optional[int] = None, flags: int = 0,
                 rcode: Rcode = Rcode.NOERROR):
        self.id = next_message_id() if msg_id is None else msg_id
        self.flags = flags
        self.rcode_value = Rcode(rcode)
        self.question: List[Question] = []
        self.answer: List[ResourceRecord] = []
        self.authority: List[ResourceRecord] = []
        self.additional: List[ResourceRecord] = []
        #: Lease length granted, seconds; present on CU responses only.
        self.llt: Optional[int] = None
        #: EDNS0 (RFC 6891): advertised UDP payload size.  None = no OPT
        #: record; the peer must assume the classic 512-byte limit.
        self.edns_payload_size: Optional[int] = None

    # -- flag accessors ------------------------------------------------------

    @property
    def opcode(self) -> Opcode:
        """The message opcode from the header flags."""
        return Opcode((self.flags >> _OPCODE_SHIFT) & _OPCODE_MASK)

    @opcode.setter
    def opcode(self, value: Opcode) -> None:
        """The message opcode from the header flags."""
        self.flags = (self.flags & ~(_OPCODE_MASK << _OPCODE_SHIFT)) | \
            ((int(value) & _OPCODE_MASK) << _OPCODE_SHIFT)

    @property
    def rcode(self) -> Rcode:
        """The response code."""
        return self.rcode_value

    @rcode.setter
    def rcode(self, value: Rcode) -> None:
        """The response code."""
        self.rcode_value = Rcode(value)

    def _flag(self, bit: int) -> bool:
        return bool(self.flags & bit)

    def _set_flag(self, bit: int, on: bool) -> None:
        self.flags = (self.flags | bit) if on else (self.flags & ~bit)

    is_response = property(lambda self: self._flag(FLAG_QR),
                           lambda self, v: self._set_flag(FLAG_QR, v))
    authoritative = property(lambda self: self._flag(FLAG_AA),
                             lambda self, v: self._set_flag(FLAG_AA, v))
    truncated = property(lambda self: self._flag(FLAG_TC),
                         lambda self, v: self._set_flag(FLAG_TC, v))
    recursion_desired = property(lambda self: self._flag(FLAG_RD),
                                 lambda self, v: self._set_flag(FLAG_RD, v))
    recursion_available = property(lambda self: self._flag(FLAG_RA),
                                   lambda self, v: self._set_flag(FLAG_RA, v))
    cache_update_aware = property(lambda self: self._flag(FLAG_CU),
                                  lambda self, v: self._set_flag(FLAG_CU, v))

    # -- RFC 2136 section aliases ---------------------------------------------

    @property
    def zone(self) -> List[Question]:
        """UPDATE vocabulary: the zone section is the question section."""
        return self.question

    @property
    def prerequisite(self) -> List[ResourceRecord]:
        """RFC 2136 vocabulary: the prerequisite section (answer)."""
        return self.answer

    @property
    def update(self) -> List[ResourceRecord]:
        """RFC 2136 vocabulary: the update section (authority)."""
        return self.authority

    # -- wire ------------------------------------------------------------------

    def to_wire(self) -> bytes:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer = WireWriter()
        writer.write_u16(self.id)
        writer.write_u16(self.flags & 0xFFF0 | (int(self.rcode_value) & 0xF))
        extra = 1 if self.edns_payload_size is not None else 0
        writer.write_u16(len(self.question))
        writer.write_u16(len(self.answer))
        writer.write_u16(len(self.authority))
        writer.write_u16(len(self.additional) + extra)
        cu = self.cache_update_aware
        for question in self.question:
            question.to_wire(writer, cu)
        for record in self.answer:
            record.to_wire(writer)
        if cu and self.is_response:
            writer.write_u16(self.llt if self.llt is not None else 0)
        for record in self.authority:
            record.to_wire(writer)
        for record in self.additional:
            record.to_wire(writer)
        if self.edns_payload_size is not None:
            # RFC 6891 OPT pseudo-RR: root owner, CLASS = payload size.
            writer.write_name(_ROOT_NAME)
            writer.write_u16(RRType.OPT)
            writer.write_u16(self.edns_payload_size)
            writer.write_u32(0)   # extended rcode/version/flags: all zero
            writer.write_u16(0)   # empty RDATA
        return writer.getvalue()

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        """Decode one instance from the reader's cursor."""
        reader = WireReader(data)
        msg_id = reader.read_u16()
        raw_flags = reader.read_u16()
        counts = [reader.read_u16() for _ in range(4)]
        message = cls(msg_id, raw_flags & 0xFFF0, Rcode(raw_flags & 0xF))
        cu = message.cache_update_aware
        for _ in range(counts[0]):
            message.question.append(Question.from_wire(reader, cu))
        for _ in range(counts[1]):
            message.answer.append(ResourceRecord.from_wire(reader))
        if cu and message.is_response:
            llt = reader.read_u16()
            message.llt = llt or None
        for _ in range(counts[2]):
            message.authority.append(ResourceRecord.from_wire(reader))
        for _ in range(counts[3]):
            # Peek for an EDNS0 OPT pseudo-record: its CLASS field holds
            # a payload size, not a real class, so it cannot go through
            # ResourceRecord.from_wire.
            mark = reader.offset
            reader.read_name()
            peeked_type = reader.read_u16()
            if peeked_type == RRType.OPT:
                message.edns_payload_size = reader.read_u16()
                reader.read_u32()                      # ext-rcode/flags
                reader.read_bytes(reader.read_u16())   # RDATA (ignored)
                continue
            reader.seek(mark)
            message.additional.append(ResourceRecord.from_wire(reader))
        if reader.remaining:
            raise WireFormatError(f"{reader.remaining} trailing bytes after message")
        return message

    def wire_size(self) -> int:
        """Encoded size in bytes — compared against the 512-byte UDP bound."""
        return len(self.to_wire())

    def fits_in_udp(self) -> bool:
        """True when the encoding fits the 512-byte UDP bound."""
        return self.wire_size() <= MAX_UDP_PAYLOAD

    def __repr__(self) -> str:
        kind = "response" if self.is_response else "query"
        return (f"Message(id={self.id}, {self.opcode.name} {kind}, "
                f"rcode={self.rcode_value.name}, q={len(self.question)}, "
                f"an={len(self.answer)}, au={len(self.authority)}, "
                f"ad={len(self.additional)})")


class WireTemplate:
    """A message encoded once, re-addressed per recipient.

    Fan-out paths (CACHE-UPDATE notifications, DNS-Push pushes) send the
    *same* message body to many peers, differing only in the 16-bit
    message ID each peer will echo in its acknowledgement.  Encoding the
    message per recipient re-runs name compression and section
    serialization N times for identical bytes; this template encodes the
    wire image once into a :class:`bytearray` and :meth:`with_id` merely
    patches the ID field (the first two octets, RFC 1035 §4.1.1) in
    place before snapshotting the datagram.
    """

    __slots__ = ("_buffer",)

    def __init__(self, message: "Message"):
        self._buffer = bytearray(message.to_wire())

    def with_id(self, msg_id: int) -> bytes:
        """The wire image re-addressed to carry ``msg_id``."""
        struct.pack_into("!H", self._buffer, 0, msg_id & MAX_U16)
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


# -- factories ----------------------------------------------------------------


def make_query(name, rrtype: RRType, recursion_desired: bool = True,
               rrc: Optional[int] = None) -> Message:
    """A standard QUERY.  Passing ``rrc`` marks the query DNScup-aware."""
    message = Message()
    message.opcode = Opcode.QUERY
    message.recursion_desired = recursion_desired
    if rrc is not None:
        message.cache_update_aware = True
    message.question.append(Question(name, rrtype, rrc=rrc))
    return message


def make_response(query: Message, rcode: Rcode = Rcode.NOERROR,
                  llt: Optional[int] = None) -> Message:
    """A response mirroring ``query``'s ID, opcode, question and CU bit."""
    message = Message(query.id, 0, rcode)
    message.opcode = query.opcode
    message.is_response = True
    message.recursion_desired = query.recursion_desired
    message.cache_update_aware = query.cache_update_aware
    message.question.extend(query.question)
    if llt is not None:
        if not query.cache_update_aware:
            raise ValueError("cannot grant a lease to a non-DNScup query")
        if not 0 <= llt <= MAX_U16:
            raise ValueError(f"LLT out of 16-bit range: {llt}")
        message.llt = llt
    return message


def make_update(zone_name) -> Message:
    """An RFC 2136 UPDATE skeleton for ``zone_name``."""
    message = Message()
    message.opcode = Opcode.UPDATE
    message.question.append(Question(zone_name, RRType.SOA))
    return message


def make_notify(zone_name) -> Message:
    """An RFC 1996 NOTIFY for ``zone_name``."""
    message = Message()
    message.opcode = Opcode.NOTIFY
    message.authoritative = True
    message.question.append(Question(zone_name, RRType.SOA))
    return message


def make_cache_update(name, records: List[ResourceRecord]) -> Message:
    """DNScup's CACHE-UPDATE (opcode 6): push fresh records to a cache.

    The answer section carries the new RRset for ``name``; receivers
    overwrite their cached copy and acknowledge (paper §4, steps 3-4).
    """
    message = Message()
    message.opcode = Opcode.CACHE_UPDATE
    message.authoritative = True
    message.cache_update_aware = True
    rrtype = records[0].rrtype if records else RRType.A
    message.question.append(Question(name, rrtype))
    message.answer.extend(records)
    return message


def truncate_response(response: Message) -> Message:
    """The TC-flagged stub of a response too large for UDP.

    RFC 1035 §4.2.1: keep the header and question, drop the data
    sections, set TC; the client retries over the stream path.
    """
    truncated = Message(response.id, response.flags, response.rcode)
    truncated.question.extend(response.question)
    truncated.truncated = True
    return truncated


def make_cache_update_ack(update: Message) -> Message:
    """The acknowledgement a cache returns for a CACHE-UPDATE."""
    ack = Message(update.id, 0, Rcode.NOERROR)
    ack.opcode = Opcode.CACHE_UPDATE
    ack.is_response = True
    ack.cache_update_aware = True
    ack.question.extend(update.question)
    return ack
