"""Resource records and RRsets.

A :class:`ResourceRecord` is one (name, type, class, ttl, rdata) tuple; an
:class:`RRSet` groups the records sharing (name, type, class) — the unit a
zone stores and a cache caches.  TTLs live on the set, matching RFC 2181
§5.2's requirement that members of an RRset share a TTL.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from .enums import RRClass, RRType
from .name import Name, as_name
from .rdata import Rdata, rdata_from_wire
from .wire import WireReader, WireWriter


class ResourceRecord:
    """A single DNS resource record."""

    __slots__ = ("name", "rrtype", "rrclass", "ttl", "rdata")

    def __init__(self, name, rrtype: RRType, ttl: int, rdata: Rdata,
                 rrclass: RRClass = RRClass.IN):
        self.name: Name = as_name(name)
        self.rrtype = RRType(rrtype)
        self.rrclass = RRClass(rrclass)
        if ttl < 0 or ttl > 0x7FFFFFFF:
            raise ValueError(f"TTL out of range: {ttl}")
        self.ttl = ttl
        self.rdata = rdata

    # -- wire --------------------------------------------------------------

    def to_wire(self, writer: WireWriter) -> None:
        """Serialize onto ``writer`` in RFC 1035 wire format."""
        writer.write_name(self.name)
        writer.write_u16(self.rrtype)
        writer.write_u16(self.rrclass)
        writer.write_u32(self.ttl)
        # RDLENGTH is not knowable before rdata is rendered (name
        # compression), so render into a sub-writer that shares no
        # compression state crossing the length field.  We render rdata
        # with compression disabled to keep lengths deterministic.
        sub = WireWriter(compress=False)
        self.rdata.to_wire(sub)
        payload = sub.getvalue()
        writer.write_u16(len(payload))
        writer.write_bytes(payload)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "ResourceRecord":
        """Decode one instance from the reader's cursor."""
        name = reader.read_name()
        rrtype = RRType(reader.read_u16())
        rrclass = RRClass(reader.read_u16())
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        rdata = rdata_from_wire(rrtype, reader, rdlength)
        return cls(name, rrtype, ttl, rdata, rrclass)

    # -- text --------------------------------------------------------------

    def to_text(self) -> str:
        """Master-file (presentation) rendering."""
        return (f"{self.name.to_text()} {self.ttl} {self.rrclass.name} "
                f"{self.rrtype.name} {self.rdata.to_text()}")

    # -- value semantics ---------------------------------------------------

    def _key(self) -> Tuple:
        return (self.name, self.rrtype, self.rrclass, self.ttl, self.rdata)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResourceRecord):
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"ResourceRecord({self.to_text()!r})"


class RRSet:
    """All records for one (name, type, class), sharing a TTL.

    Rdata order is preserved as inserted but equality is order-insensitive:
    an RRset is a set, and CDN-style rotation (paper §3.2, "logical
    changes") permutes the order without changing the set.
    """

    __slots__ = ("name", "rrtype", "rrclass", "ttl", "_rdatas")

    def __init__(self, name, rrtype: RRType, ttl: int,
                 rdatas: Iterable[Rdata] = (), rrclass: RRClass = RRClass.IN):
        self.name: Name = as_name(name)
        self.rrtype = RRType(rrtype)
        self.rrclass = RRClass(rrclass)
        self.ttl = ttl
        self._rdatas: List[Rdata] = []
        for rdata in rdatas:
            self.add(rdata)

    # -- mutation ----------------------------------------------------------

    def add(self, rdata: Rdata) -> bool:
        """Add ``rdata`` unless already present; return True when added."""
        if rdata.rrtype != self.rrtype:
            raise ValueError(f"rdata type {rdata.rrtype!r} != set type {self.rrtype!r}")
        if rdata in self._rdatas:
            return False
        self._rdatas.append(rdata)
        return True

    def discard(self, rdata: Rdata) -> bool:
        """Remove ``rdata`` if present; return True when removed."""
        try:
            self._rdatas.remove(rdata)
            return True
        except ValueError:
            return False

    def replace(self, rdatas: Iterable[Rdata]) -> None:
        """Replace the rdata set wholesale."""
        self._rdatas = []
        for rdata in rdatas:
            self.add(rdata)

    def rotate(self, steps: int = 1) -> None:
        """Rotate rdata order — round-robin answer shuffling."""
        if len(self._rdatas) > 1:
            steps %= len(self._rdatas)
            self._rdatas = self._rdatas[steps:] + self._rdatas[:steps]

    # -- access ------------------------------------------------------------

    @property
    def rdatas(self) -> Tuple[Rdata, ...]:
        """The rdata tuple of this set."""
        return tuple(self._rdatas)

    def to_records(self) -> List[ResourceRecord]:
        """Expand into individual resource records."""
        return [ResourceRecord(self.name, self.rrtype, self.ttl, rdata, self.rrclass)
                for rdata in self._rdatas]

    def copy(self) -> "RRSet":
        """An independent copy."""
        return RRSet(self.name, self.rrtype, self.ttl, self._rdatas, self.rrclass)

    def key(self) -> Tuple[Name, RRType, RRClass]:
        """The lookup key for this object."""
        return (self.name, self.rrtype, self.rrclass)

    def same_rdatas(self, other: "RRSet") -> bool:
        """Order-insensitive rdata comparison (change *detection* input)."""
        return frozenset(self._rdatas) == frozenset(other._rdatas)

    def __len__(self) -> int:
        return len(self._rdatas)

    def __iter__(self) -> Iterator[Rdata]:
        return iter(self._rdatas)

    def __contains__(self, rdata: Rdata) -> bool:
        return rdata in self._rdatas

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RRSet):
            return (self.key() == other.key() and self.ttl == other.ttl
                    and self.same_rdatas(other))
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.key(), self.ttl, frozenset(self._rdatas)))

    def __repr__(self) -> str:
        return (f"RRSet({self.name.to_text()!r}, {self.rrtype.name}, ttl={self.ttl}, "
                f"{[r.to_text() for r in self._rdatas]})")


def records_to_rrsets(records: Iterable[ResourceRecord]) -> List[RRSet]:
    """Group records into RRsets, preserving first-seen order."""
    sets: List[RRSet] = []
    index = {}
    for record in records:
        key = (record.name, record.rrtype, record.rrclass)
        if key in index:
            index[key].add(record.rdata)
        else:
            rrset = RRSet(record.name, record.rrtype, record.ttl,
                          [record.rdata], record.rrclass)
            index[key] = rrset
            sets.append(rrset)
    return sets
