"""DNS data model and wire format — the bottom substrate of the stack.

Exports the names the rest of the package (and downstream users) need:
domain names, rdata types, records, messages, and protocol constants,
including DNScup's CACHE-UPDATE opcode and RRC/LLT fields.
"""

from .enums import (
    MAX_LABEL_LENGTH,
    MAX_NAME_WIRE_LENGTH,
    MAX_UDP_PAYLOAD,
    Opcode,
    Rcode,
    RRClass,
    RRType,
)
from .message import (
    FLAG_CU,
    MAX_U16,
    Message,
    Question,
    WireTemplate,
    make_cache_update,
    make_cache_update_ack,
    make_notify,
    make_query,
    make_response,
    make_update,
    truncate_response,
)
from .name import Name, NameError_, as_name
from .rdata import (
    A,
    AAAA,
    CNAME,
    MX,
    NS,
    PTR,
    SOA,
    SRV,
    TXT,
    EmptyRdata,
    Generic,
    Rdata,
    rdata_class_for,
    rdata_from_text,
    rdata_from_wire,
)
from .records import ResourceRecord, RRSet, records_to_rrsets
from .tsig import (
    DEFAULT_FUDGE,
    Key,
    Keyring,
    TsigError,
    Verifier,
    sign,
    split_signed,
)
from .wire import WireFormatError, WireReader, WireWriter

__all__ = [
    "A", "AAAA", "CNAME", "MX", "NS", "PTR", "SOA", "SRV", "TXT", "Generic",
    "Rdata", "EmptyRdata", "rdata_class_for", "rdata_from_text", "rdata_from_wire",
    "Name", "NameError_", "as_name",
    "ResourceRecord", "RRSet", "records_to_rrsets",
    "Message", "Question", "WireTemplate", "make_query", "make_response",
    "make_update",
    "make_notify", "make_cache_update", "make_cache_update_ack",
    "truncate_response",
    "Opcode", "Rcode", "RRClass", "RRType",
    "MAX_UDP_PAYLOAD", "MAX_LABEL_LENGTH", "MAX_NAME_WIRE_LENGTH", "MAX_U16",
    "FLAG_CU",
    "WireReader", "WireWriter", "WireFormatError",
    "Key", "Keyring", "Verifier", "TsigError", "sign", "split_signed",
    "DEFAULT_FUDGE",
]
