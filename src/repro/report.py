"""Tiny tabular report helpers shared by the CLI tools and benches.

Everything the evaluation produces is a small table or series; this
module renders them as aligned text and as CSV so results can be
plotted with any external tool.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence, TextIO, Union


def format_table(header: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width text rendering of a small table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(target: Union[str, TextIO], header: Sequence[str],
              rows: Iterable[Sequence]) -> int:
    """Write rows as CSV; returns the number of data rows written."""
    own = isinstance(target, str)
    stream: TextIO = open(target, "w", newline="") if own else target  # type: ignore[arg-type]
    try:
        writer = csv.writer(stream)
        writer.writerow(list(header))
        count = 0
        for row in rows:
            writer.writerow(list(row))
            count += 1
        return count
    finally:
        if own:
            stream.close()


def read_csv(source: Union[str, TextIO]) -> List[List[str]]:
    """Read a CSV back (header included) — round-trip helper for tests."""
    own = isinstance(source, str)
    stream: TextIO = open(source, newline="") if own else source  # type: ignore[arg-type]
    try:
        return [row for row in csv.reader(stream)]
    finally:
        if own:
            stream.close()
