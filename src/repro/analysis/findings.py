"""Finding records and their byte-stable renderings.

Every rule reports :class:`Finding` objects carrying a stable ``DCUP###``
code, a repo-relative path, and a 1-based line / 0-based column.  Output
is deterministic by construction: findings sort on ``(path, line, col,
code, message)`` and the JSON form is rendered with sorted keys and
fixed separators, so identical trees lint to byte-identical reports —
the same discipline the trace exporter follows.
"""

from __future__ import annotations

import dataclasses
import json
import re
from typing import Dict, List, Sequence, Tuple

#: The shape every rule code must match (stable public contract).
CODE_PATTERN = re.compile(r"^DCUP\d{3}$")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str        # stable rule code, e.g. "DCUP001"
    rule: str        # short rule name, e.g. "determinism-wall-clock"
    path: str        # display path of the offending file (posix separators)
    line: int        # 1-based line number
    col: int         # 0-based column offset
    message: str     # human-oriented description of the violation

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Deterministic ordering for reports."""
        return (self.path, self.line, self.col, self.code, self.message)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (keys sorted at render time)."""
        return {
            "code": self.code,
            "col": self.col,
            "line": self.line,
            "message": self.message,
            "path": self.path,
            "rule": self.rule,
        }

    def render(self) -> str:
        """The classic compiler-style one-liner."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Findings in their canonical report order."""
    return sorted(findings, key=Finding.sort_key)


def render_text(findings: Sequence[Finding]) -> str:
    """Human output: one line per finding plus a count trailer."""
    ordered = sort_findings(findings)
    lines = [finding.render() for finding in ordered]
    noun = "finding" if len(ordered) == 1 else "findings"
    lines.append(f"repro-lint: {len(ordered)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Byte-stable JSON: sorted findings, sorted keys, fixed separators."""
    document = {
        "count": len(findings),
        "findings": [finding.as_dict() for finding in sort_findings(findings)],
        "version": 1,
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))
