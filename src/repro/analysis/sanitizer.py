"""TSan-style runtime concurrency sanitizer for the live transport.

The static rules (:mod:`repro.analysis.rules_async`) catch what an AST
can see; this harness catches the rest *while the live run executes*.
Armed via ``LiveClock(sanitize=True)`` (and from the CLI as
``repro-live --sanitize``), it watches four failure classes and reports
each through the same :class:`~repro.analysis.findings.Finding`
machinery — the runtime counterparts of the static codes:

* **DCUP009 — blocking slice**: every timer callback is timed; a slice
  that holds the loop longer than ``block_threshold`` seconds is a
  blocking call by observation, whatever its spelling.
* **DCUP010 — never-awaited coroutine**: CPython announces a collected
  un-awaited coroutine as a ``RuntimeWarning``; the sanitizer captures
  those (with ``sys.set_coroutine_origin_tracking_depth`` armed so the
  origin traceback exists) instead of letting them scroll past.
* **DCUP011 — wrong-context mutation**: loop-owned structures
  (TraceBus taps, the stream connection pool) get their mutators
  wrapped; a call from a foreign event loop or a foreign thread is
  recorded with the caller's source location.  Synchronous calls on
  the owner thread (setup/teardown before the loop runs) are legal.
* **DCUP012 — task leak at quiescence**: when the clock drains, every
  task still alive on the loop must be either the drain itself or an
  *adopted* task (server-side connection handlers parked on idle
  pooled connections, ``LiveClock.spawn`` children).  Anything else is
  work nobody owns.

The sanitizer is built only when asked for — the zero-cost-when-off
discipline of the observability layer applies: an unsanitized
``LiveClock`` carries a single ``None`` attribute and no wrapper ever
exists.
"""

from __future__ import annotations

import asyncio
import functools
import gc
import sys
import threading
import time
import warnings
import weakref
from typing import Any, Callable, List, Optional, Sequence, Set, TextIO, Tuple

from .findings import Finding, sort_findings

__all__ = ["Sanitizer"]

#: Default blocking-slice threshold (seconds).  Generous on purpose:
#: the CI gate runs the full Figure 7 scenario on shared runners, and a
#: scheduling hiccup must not read as a protocol bug.  Tests pin a tiny
#: explicit threshold instead.
DEFAULT_BLOCK_THRESHOLD = 0.5

#: Coroutine origin-tracking frames captured while armed.
DEFAULT_ORIGIN_DEPTH = 8


def _callable_site(fn: Callable[..., object]) -> Tuple[str, int, str]:
    """(path, line, label) describing where ``fn`` was defined."""
    probe: object = fn
    if isinstance(probe, functools.partial):
        probe = probe.func
    probe = getattr(probe, "__func__", probe)
    code = getattr(probe, "__code__", None)
    label = getattr(probe, "__qualname__", None) or repr(fn)
    if code is None:
        return ("<callable>", 0, label)
    return (code.co_filename, code.co_firstlineno, label)


class Sanitizer:
    """Runtime watchdog for one live event loop.

    Construct with the loop it owns (ownership also pins the current
    thread), then :meth:`start` to arm the global hooks and
    :meth:`stop` to restore them.  :meth:`report` returns the findings
    accumulated so far in canonical order; a clean run reports none.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 block_threshold: float = DEFAULT_BLOCK_THRESHOLD,
                 origin_depth: int = DEFAULT_ORIGIN_DEPTH):
        self._loop = loop
        self._owner_thread = threading.current_thread()
        self.block_threshold = block_threshold
        self.origin_depth = origin_depth
        self._findings: List[Finding] = []
        self._adopted: "weakref.WeakSet[asyncio.Task[Any]]" = (
            weakref.WeakSet())
        self._reported_tasks: Set[int] = set()
        self._guards: List[Tuple[object, str]] = []
        self._started = False
        self._prev_depth = 0
        self._prev_show: Optional[Callable[..., Any]] = None
        self._catcher: Optional["warnings.catch_warnings"] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Arm the global hooks (warning capture, origin tracking)."""
        if self._started:
            return
        self._started = True
        self._prev_depth = sys.get_coroutine_origin_tracking_depth()
        sys.set_coroutine_origin_tracking_depth(self.origin_depth)
        self._catcher = warnings.catch_warnings()
        self._catcher.__enter__()
        warnings.simplefilter("always", RuntimeWarning)
        self._prev_show = warnings.showwarning
        warnings.showwarning = self._on_warning  # type: ignore[assignment]

    def stop(self) -> None:
        """Restore every hook and unwrap every guard; idempotent.

        Guards are unwrapped even when :meth:`start` never ran — they
        are installed independently via :meth:`guard`.
        """
        for obj, attr in reversed(self._guards):
            try:
                delattr(obj, attr)
            except AttributeError:  # pragma: no cover - already unwrapped
                pass
        self._guards.clear()
        if not self._started:
            return
        self._started = False
        if self._prev_show is not None:
            warnings.showwarning = self._prev_show  # type: ignore[assignment]
            self._prev_show = None
        if self._catcher is not None:
            self._catcher.__exit__(None, None, None)
            self._catcher = None
        sys.set_coroutine_origin_tracking_depth(self._prev_depth)

    # -- reporting -------------------------------------------------------------

    def _add(self, code: str, rule: str, path: str, line: int,
             message: str) -> None:
        self._findings.append(Finding(code=code, rule=rule, path=path,
                                      line=line, col=0, message=message))

    def report(self) -> List[Finding]:
        """Findings accumulated so far, canonically sorted."""
        return sort_findings(self._findings)

    @property
    def ok(self) -> bool:
        """True while no finding has been recorded."""
        return not self._findings

    # -- DCUP009: blocking slices ----------------------------------------------

    def run_slice(self, fn: Callable[[], None]) -> None:
        """Run a loop callback, timing the slice it holds the loop."""
        started = time.perf_counter()
        try:
            fn()
        finally:
            elapsed = time.perf_counter() - started
            if elapsed >= self.block_threshold:
                path, line, label = _callable_site(fn)
                self._add(
                    "DCUP009", "sanitizer-blocking-slice", path, line,
                    f"callback {label} held the event loop for "
                    f"{elapsed:.3f}s (threshold "
                    f"{self.block_threshold:.3f}s): every timer and "
                    f"socket on the loop stalled for that slice")

    # -- DCUP010: never-awaited coroutines -------------------------------------

    def _on_warning(self, message: Any, category: type, filename: str,
                    lineno: int, file: Optional[TextIO] = None,
                    line: Optional[str] = None) -> None:
        text = str(message)
        if (issubclass(category, RuntimeWarning)
                and "was never awaited" in text):
            first = text.splitlines()[0]
            self._add(
                "DCUP010", "sanitizer-unawaited-coroutine", filename,
                lineno,
                f"{first}: the coroutine object was built and "
                f"collected without running")
        elif self._prev_show is not None:  # pragma: no cover - passthrough
            self._prev_show(message, category, filename, lineno, file, line)

    # -- DCUP011: wrong-context mutations --------------------------------------

    def guard(self, label: str, obj: object,
              methods: Sequence[str]) -> None:
        """Wrap instance ``methods`` of ``obj`` with a context check.

        A wrapped method called from a foreign running event loop or a
        foreign thread records a finding at the caller's location (and
        still performs the mutation — the sanitizer observes, it does
        not change behaviour).
        """
        for name in methods:
            bound = getattr(obj, name)

            def wrapper(*args: Any,
                        _bound: Callable[..., Any] = bound,
                        _name: str = name,
                        **kwargs: Any) -> Any:
                self._check_context(label, _name)
                return _bound(*args, **kwargs)

            functools.update_wrapper(wrapper, bound)
            setattr(obj, name, wrapper)
            self._guards.append((obj, name))

    def _check_context(self, label: str, method: str) -> None:
        try:
            running: Optional[asyncio.AbstractEventLoop] = (
                asyncio.get_running_loop())
        except RuntimeError:
            running = None
        if running is self._loop:
            return
        if running is None:
            if threading.current_thread() is self._owner_thread:
                return  # synchronous setup/teardown on the owner thread
            context = (f"from foreign thread "
                       f"{threading.current_thread().name!r}")
        else:
            context = "from a foreign event loop"
        frame = sys._getframe(2)
        self._add(
            "DCUP011", "sanitizer-wrong-context-mutation",
            frame.f_code.co_filename, frame.f_lineno,
            f"guarded structure {label!r} mutated via .{method}() "
            f"{context}: loop-owned registries must only change on "
            f"their owning loop (or synchronously on the owner thread)")

    # -- DCUP012: task leaks at quiescence -------------------------------------

    def adopt(self, task: "asyncio.Task[Any]") -> None:
        """Declare ``task`` legitimately long-lived (never a leak)."""
        self._adopted.add(task)

    def check_quiescence(self,
                         loop: Optional[asyncio.AbstractEventLoop] = None
                         ) -> None:
        """Record every unadopted task still alive on the loop.

        Called by :meth:`~repro.net.clock.LiveClock.wait_quiescent`
        at the end of every drain; repeated drains report each leaked
        task once.  The preceding ``gc.collect()`` also flushes the
        never-awaited warnings of coroutines dropped during the run.
        """
        target = loop if loop is not None else self._loop
        gc.collect()
        current = asyncio.current_task(target)
        for task in asyncio.all_tasks(target):
            if task is current or task.done():
                continue
            if task in self._adopted:
                continue
            if id(task) in self._reported_tasks:
                continue
            self._reported_tasks.add(id(task))
            coro = task.get_coro()
            code = getattr(coro, "cr_code", None)
            path = code.co_filename if code is not None else "<task>"
            line = code.co_firstlineno if code is not None else 0
            name = getattr(coro, "__qualname__", repr(coro))
            self._add(
                "DCUP012", "sanitizer-task-leak", path, line,
                f"task running {name} is still alive at quiescence and "
                f"nobody adopted it: retain and cancel/await the task, "
                f"or adopt it if it is legitimately long-lived")
