"""The await graph: per-module function table for the async rules.

The DCUP009–012 family (:mod:`repro.analysis.rules_async`) reasons
about *execution context*: is this call inside a coroutine, does this
expression produce a coroutine object nobody consumes, does this
statement run on the owning event loop at all?  All of that reduces to
one per-module structure built here:

* every function definition, async or not, with its qualified name;
* the set of names that are *unambiguously* coroutine functions (an
  ``async def`` whose name no plain ``def`` in the module shares — a
  shared name cannot be attributed at a call site, so it is dropped
  rather than risk a false positive);
* the set of function names referenced as **off-loop entry points**:
  ``threading.Thread(target=...)`` targets and callables handed to
  ``run_in_executor`` run on a worker thread, never on the event loop,
  so loop-owned structures must not be mutated from their bodies.

The graph is lazy and cached per :class:`~repro.analysis.linter.ModuleInfo`
(four rules share it), keyed weakly so a scan holds no extra memory
once its modules are released.
"""

from __future__ import annotations

import ast
import weakref
from typing import Dict, List, Optional, Set, Union

from .linter import ModuleInfo, terminal_name

__all__ = ["CORO_SINKS", "AwaitGraph", "FunctionInfo", "await_graph"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Call targets (by terminal name) that legitimately *consume* a
#: coroutine or future: passing a coroutine to one of these is the
#: sanctioned alternative to awaiting it.  ``spawn`` is
#: :meth:`repro.net.clock.LiveClock.spawn`; ``_defer``/``defer`` is
#: :meth:`repro.net.aio.AioNetwork._defer`.
CORO_SINKS = frozenset({
    "create_task", "ensure_future", "gather", "wait", "wait_for",
    "shield", "run", "run_until_complete", "run_coroutine_threadsafe",
    "as_completed", "spawn", "_defer", "defer",
})


class FunctionInfo:
    """One function definition and its await-graph attributes."""

    __slots__ = ("node", "name", "qualname", "is_async", "off_loop")

    def __init__(self, node: FunctionNode, qualname: str):
        self.node = node
        self.name = node.name
        self.qualname = qualname
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        #: True when this function is referenced as a thread target or
        #: executor callable somewhere in the module.
        self.off_loop = False


def _thread_target_names(tree: ast.Module) -> Set[str]:
    """Terminal names of callables handed to threads or executors."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func_name = terminal_name(node.func)
        if func_name == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = terminal_name(keyword.value)
                    if target is not None:
                        names.add(target)
        elif func_name == "run_in_executor" and len(node.args) >= 2:
            target = terminal_name(node.args[1])
            if target is not None:
                names.add(target)
    return names


class AwaitGraph:
    """Function table + call-context resolution for one module."""

    def __init__(self, module: ModuleInfo):
        self.module = module
        self.functions: List[FunctionInfo] = []
        self._by_node: Dict[ast.AST, FunctionInfo] = {}
        async_names: Set[str] = set()
        sync_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info = FunctionInfo(node, self._qualname(node))
            self.functions.append(info)
            self._by_node[node] = info
            if info.is_async:
                async_names.add(info.name)
            else:
                sync_names.add(info.name)
        #: Names that always denote a coroutine function in this module.
        self.async_names = frozenset(async_names - sync_names)
        off_loop = _thread_target_names(module.tree)
        for info in self.functions:
            if info.name in off_loop and not info.is_async:
                info.off_loop = True

    def _qualname(self, node: FunctionNode) -> str:
        parts: List[str] = [node.name]
        current: ast.AST = node
        parents = self.module.parents
        while current in parents:
            current = parents[current]
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                parts.append(current.name)
        return ".".join(reversed(parts))

    def function_of(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The innermost function enclosing ``node`` (None: module level)."""
        current: ast.AST = node
        parents = self.module.parents
        while current in parents:
            current = parents[current]
            info = self._by_node.get(current)
            if info is not None:
                return info
        return None

    def in_coroutine(self, node: ast.AST) -> bool:
        """True when ``node`` executes inside an ``async def`` body."""
        info = self.function_of(node)
        return info is not None and info.is_async

    def off_loop_context(self, node: ast.AST) -> Optional[str]:
        """Why ``node`` runs off the owning event loop, or None.

        Three contexts never run as loop callbacks: module level
        (import time), ``__del__`` (the collector's schedule), and the
        body of a function referenced as a thread target or executor
        callable.
        """
        info = self.function_of(node)
        if info is None:
            return "at module import time"
        if info.name == "__del__":
            return f"inside {info.qualname} (runs on the gc's schedule)"
        if info.off_loop:
            return (f"inside {info.qualname} (a thread-target/executor "
                    f"callable)")
        return None


_CACHE: "weakref.WeakKeyDictionary[ModuleInfo, AwaitGraph]" = (
    weakref.WeakKeyDictionary())


def await_graph(module: ModuleInfo) -> AwaitGraph:
    """The module's :class:`AwaitGraph`, built once and cached."""
    graph = _CACHE.get(module)
    if graph is None:
        graph = AwaitGraph(module)
        _CACHE[module] = graph
    return graph
