"""The rule framework: file walker, AST plumbing, and the default pack.

A :class:`Rule` sees one parsed :class:`ModuleInfo` at a time plus a
shared :class:`ProjectContext` for cross-file state (the trace-contract
rule needs the whole scan to decide that a registry name is never
emitted).  Rules yield :class:`~repro.analysis.findings.Finding`
records; the driver applies suppressions, the optional ``--select``
filter, and the canonical sort.

Selection filters *output*, never execution: every rule runs over every
file so cross-file rules always see the full picture.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from .findings import CODE_PATTERN, Finding, sort_findings
from .suppress import Suppressions, parse_suppressions

#: Directory names never descended into by the walker.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis"})

#: Subsystems (single path component under ``repro/``) with scoped rules.
DETERMINISM_SCOPE = ("core", "net", "sim", "obs")
ZERO_COST_SCOPE = ("core", "net")
#: Files outside ZERO_COST_SCOPE's subsystems that still carry the
#: zero-cost contract: the streaming auditor's optional window
#: histogram, the load ledger's optional trace hooks, and the live
#: telemetry plane's instrument touches must be guarded exactly like
#: the protocol engine's (the ``net`` entry is already covered by the
#: subsystem scope; it is listed for the record).
ZERO_COST_FILES = (
    ("obs", "streaming.py"),
    ("obs", "load.py"),
    ("net", "telemetry.py"),
)
EXACT_ROUNDING_FILES = (
    ("sim", "fastreplay.py"),
    ("sim", "columnar.py"),
    ("sim", "shard.py"),
    ("core", "leasearray.py"),
)
#: DCUP009 scope: the asyncio transport plus the live testbed shim —
#: the only places where code runs *inside* coroutines on the loop.
ASYNC_BLOCKING_SCOPE = ("net",)
ASYNC_BLOCKING_FILES = (("sim", "livetestbed.py"),)
#: DCUP010/DCUP012 scope: everywhere coroutines and task handles are
#: created (the transport, the live testbed, and the CLI drivers).
ASYNC_TASK_SCOPE = ("net", "sim", "tools")
#: DCUP011 scope: the subsystems holding loop-owned registries.
ASYNC_AFFINITY_SCOPE = ("net", "sim")


class LintError(RuntimeError):
    """Raised on unusable input: missing paths, unparseable files."""


class ModuleInfo:
    """One parsed source file plus the derived lookup structures."""

    def __init__(self, path: pathlib.Path, display: str, source: str):
        self.path = path
        self.display = display
        self.source = source
        try:
            self.tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            raise LintError(f"{display}: cannot parse: {exc}") from None
        self.suppressions: Suppressions = parse_suppressions(source)
        #: Child -> parent links for guard/ancestry queries.
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        #: Path components after the last ``repro`` directory — the
        #: package-relative location used for rule scoping.  Fixture
        #: trees reuse the scoping by mirroring the layout under any
        #: directory named ``repro``.
        parts = path.parts
        if "repro" in parts:
            anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
            self.package: Tuple[str, ...] = parts[anchor + 1:]
        else:
            self.package = ()

    @property
    def subsystem(self) -> Optional[str]:
        """First directory under the package root (``core``, ``net``...)."""
        return self.package[0] if len(self.package) > 1 else None

    def in_subsystems(self, names: Sequence[str]) -> bool:
        """True when this module lives under one of ``names``."""
        return self.subsystem in names

    def is_file(self, candidates: Sequence[Tuple[str, ...]]) -> bool:
        """True when the package-relative path matches one candidate."""
        return self.package in candidates


class ProjectContext:
    """Cross-file state shared by one lint run."""

    def __init__(self) -> None:
        #: Event name -> every (display path, line) that emits it.
        self.emitted: Dict[str, List[Tuple[str, int]]] = {}
        #: Files that define ``EVENT_NAMES`` (display path, line).  The
        #: registry-coverage check only runs when the registry itself
        #: was part of the scan — linting one file never claims the
        #: whole contract is unemitted.
        self.registry_sites: List[Tuple[str, int]] = []
        #: Lease-FSM declarations found in the scan (rules_fsm): per
        #: declaring file, the (transition, event, row line) triples.
        self.fsm_tables: List[Tuple[str, List[Tuple[str, str, int]]]] = []
        #: lease.*/renego.* event -> (display, line) emit sites seen in
        #: ``repro/core`` modules (the FSM dispatch surface).
        self.fsm_dispatch: Dict[str, List[Tuple[str, int]]] = {}

    def record_emit(self, name: str, display: str, line: int) -> None:
        """Note that ``name`` is emitted at ``display:line``."""
        self.emitted.setdefault(name, []).append((display, line))


class Rule:
    """Base class: one stable code, checked per-module then finalized."""

    code: str = ""
    name: str = ""
    summary: str = ""
    scope: str = "all scanned files"

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        """Per-file pass; yield findings for ``module``."""
        return iter(())

    def finalize(self, ctx: ProjectContext) -> Iterator[Finding]:
        """Cross-file pass after every module has been checked."""
        return iter(())

    def finding(self, module_or_path: object, line: int, col: int,
                message: str) -> Finding:
        """Convenience constructor stamping this rule's identity."""
        display = (module_or_path.display
                   if isinstance(module_or_path, ModuleInfo)
                   else str(module_or_path))
        return Finding(code=self.code, rule=self.name, path=display,
                       line=line, col=col, message=message)


class SuppressionHygieneRule(Rule):
    """DCUP008: a suppression directive must parse and carry a reason."""

    code = "DCUP008"
    name = "suppression-needs-reason"
    summary = ("repro-lint suppression comments must be well-formed and "
               "include a '-- reason' clause")

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        for line, col, message in module.suppressions.malformed:
            yield self.finding(module, line, col, message)


# -- shared AST helpers used by the rule modules ------------------------------


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> absolute dotted origin for module-level imports.

    Relative imports map to ``""`` (internal, never a banned target).
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom):
            origin = node.module or ""
            if node.level:
                origin = ""  # relative: inside this package
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = (f"{origin}.{alias.name}"
                                  if origin else "")
    return mapping


def resolve_dotted(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """The absolute dotted name a call target resolves to, if knowable.

    ``datetime.now()`` after ``from datetime import datetime`` resolves
    to ``datetime.datetime.now``; names bound to local variables (an
    ``rng`` parameter, say) resolve to None and are never flagged.
    """
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = imports.get(node.id)
    if origin is None or origin == "":
        return None
    chain.append(origin)
    return ".".join(reversed(chain))


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a name/attribute chain (``self.trace`` ->
    ``trace``); None for anything else."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def guarding_tests(module: ModuleInfo, node: ast.AST) -> List[str]:
    """Unparsed operands ``X`` of every enclosing ``X is not None`` test.

    Only tests whose *body* branch contains ``node`` count — an emit in
    the else branch of its own guard is not guarded.
    """
    guards: List[str] = []
    current: ast.AST = node
    parents = module.parents
    while current in parents:
        parent = parents[current]
        branch: Optional[List[ast.AST]] = None
        if isinstance(parent, ast.If):
            branch = list(parent.body)
        elif isinstance(parent, ast.IfExp):
            branch = [parent.body]
        if branch is not None and any(current is entry for entry in branch):
            for sub in ast.walk(parent.test):
                if (isinstance(sub, ast.Compare)
                        and len(sub.ops) == 1
                        and isinstance(sub.ops[0], ast.IsNot)
                        and isinstance(sub.comparators[0], ast.Constant)
                        and sub.comparators[0].value is None):
                    guards.append(ast.unparse(sub.left))
        current = parent
    return guards


def scoped_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function scopes."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


# -- the walker ---------------------------------------------------------------


def iter_python_files(paths: Sequence[pathlib.Path]) -> List[pathlib.Path]:
    """Every ``.py`` file under ``paths``, sorted and deduplicated."""
    seen: Dict[pathlib.Path, None] = {}
    for raw in paths:
        path = pathlib.Path(raw)
        if not path.exists():
            raise LintError(f"no such path: {path}")
        if path.is_file():
            if path.suffix == ".py":
                seen[path.resolve()] = None
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS:
                continue
            if any(part.endswith(".egg-info") for part in candidate.parts):
                continue
            seen[candidate.resolve()] = None
    return sorted(seen)


def _display(path: pathlib.Path) -> str:
    """Stable display form: cwd-relative when possible, posix slashes."""
    try:
        rel = path.relative_to(pathlib.Path.cwd())
    except ValueError:
        rel = path
    return rel.as_posix()


def load_module(path: pathlib.Path) -> ModuleInfo:
    """Read and parse one file into a :class:`ModuleInfo`."""
    try:
        source = path.read_text()
    except OSError as exc:
        raise LintError(f"{path}: cannot read: {exc}") from None
    return ModuleInfo(path, _display(path), source)


def lint_paths(paths: Sequence[pathlib.Path],
               select: Optional[Iterable[str]] = None,
               rules: Optional[Sequence[Type[Rule]]] = None) -> List[Finding]:
    """Lint every Python file under ``paths`` with the rule pack.

    ``select`` filters the *reported* codes; every rule still executes
    so cross-file checks see the complete scan.  Suppressed findings
    are dropped before selection.  The result is canonically sorted.
    """
    module_infos = [load_module(path) for path in iter_python_files(paths)]
    ctx = ProjectContext()
    active = [cls() for cls in (rules if rules is not None else DEFAULT_RULES)]
    raw: List[Finding] = []
    for module in module_infos:
        for rule in active:
            raw.extend(rule.check(module, ctx))
    for rule in active:
        raw.extend(rule.finalize(ctx))
    by_display = {module.display: module.suppressions
                  for module in module_infos}
    visible = [finding for finding in raw
               if not by_display.get(
                   finding.path, Suppressions()).hides(finding.code,
                                                       finding.line)]
    if select is not None:
        wanted = frozenset(select)
        visible = [finding for finding in visible if finding.code in wanted]
    return sort_findings(visible)


#: ``--select`` range syntax: two codes joined by a dash, inclusive.
_SELECT_RANGE = re.compile(r"^(DCUP\d{3})-(DCUP\d{3})$")


def parse_select(text: str) -> List[str]:
    """Expand a ``--select`` expression into concrete DCUP codes.

    Accepts comma-separated single codes (``DCUP005``) and inclusive
    ranges (``DCUP009-DCUP013``).  Malformed tokens, inverted ranges,
    and empty expressions raise :class:`LintError` — the CLI maps that
    to exit code 2 (usage error), distinct from exit 1 (findings).
    """
    codes: List[str] = []
    for raw in text.split(","):
        token = raw.strip()
        if not token:
            continue
        match = _SELECT_RANGE.match(token)
        if match is not None:
            low = int(match.group(1)[4:])
            high = int(match.group(2)[4:])
            if low > high:
                raise LintError(f"inverted --select range: {token}")
            codes.extend(f"DCUP{number:03d}"
                         for number in range(low, high + 1))
        elif CODE_PATTERN.match(token):
            codes.append(token)
        else:
            raise LintError(
                f"bad --select token {token!r}: expected DCUP### or "
                f"DCUP###-DCUP###")
    if not codes:
        raise LintError("empty --select expression")
    return codes


def rule_catalogue(rules: Optional[Sequence[Type[Rule]]] = None
                   ) -> List[Dict[str, str]]:
    """The rule pack as (code, name, scope, summary) records."""
    entries = [{"code": cls.code, "name": cls.name, "scope": cls.scope,
                "summary": cls.summary}
               for cls in (rules if rules is not None else DEFAULT_RULES)]
    return sorted(entries, key=lambda entry: entry["code"])


# The default pack is assembled at the bottom so the rule modules can
# import the framework above without a cycle.
from .rules_async import (  # noqa: E402
    AsyncBlockingCallRule,
    LoopAffinityRule,
    TaskResourceLeakRule,
    UnawaitedCoroutineRule,
)
from .rules_determinism import UnseededRandomRule, WallClockRule  # noqa: E402
from .rules_enums import EnumDispatchRule  # noqa: E402
from .rules_fsm import LeaseFsmRule  # noqa: E402
from .rules_rounding import ExactRoundingRule  # noqa: E402
from .rules_trace import RegistryCoverageRule, TraceEmitNameRule  # noqa: E402
from .rules_zerocost import ZeroCostRule  # noqa: E402

#: Every shipped rule, in code order.
DEFAULT_RULES: Tuple[Type[Rule], ...] = (
    WallClockRule,
    UnseededRandomRule,
    TraceEmitNameRule,
    RegistryCoverageRule,
    ZeroCostRule,
    ExactRoundingRule,
    EnumDispatchRule,
    SuppressionHygieneRule,
    AsyncBlockingCallRule,
    UnawaitedCoroutineRule,
    LoopAffinityRule,
    TaskResourceLeakRule,
    LeaseFsmRule,
)
