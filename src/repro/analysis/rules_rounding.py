"""Exact-rounding rule: the fast engine's float sums stay blessed.

The fast replay engine's contract (DESIGN.md §7) is *bit-identical*
results against the event-ordered oracle, which only holds because both
sides accumulate ``lease_seconds`` with exactly-rounded, order-
independent summation: ``math.fsum`` over a shared term list, or the
Shewchuk-partials :class:`repro.sim.fastreplay.ExactSum`.  A bare
``sum()`` over floats — or a running ``total += term`` loop — reorders
rounding error and silently breaks the oracle-equivalence property
tests on the right (wrong) inputs.

The columnar engine, the sharded merge layer and the array-backed lease
table (``sim/columnar.py``, ``sim/shard.py``, ``core/leasearray.py``)
inherit the same contract — their sums feed the same bit-identity
property tests — so the rule covers every module listed in
:data:`~repro.analysis.linter.EXACT_ROUNDING_FILES`.

``DCUP006`` flags, inside those modules:

* calls to builtin ``sum(...)`` unless the summand is provably integral
  (a ``len(...)`` call or an integer literal — counting is exact);
* ``+=``/``-=`` on a variable initialised from a float literal in the
  same scope (the classic running-float-total shape).

The blessed spellings — ``math.fsum(terms)``, ``ExactSum().add(...)`` —
are attribute calls and integer arithmetic, which the rule never flags.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from .findings import Finding
from .linter import (
    EXACT_ROUNDING_FILES,
    ModuleInfo,
    ProjectContext,
    Rule,
    scoped_walk,
)


def _integral_summand(call: ast.Call) -> bool:
    """True when the sum's elements are provably integers."""
    if not call.args:
        return False
    arg = call.args[0]
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        element: ast.expr = arg.elt
    elif isinstance(arg, (ast.List, ast.Tuple)) and arg.elts:
        return all(isinstance(e, ast.Constant)
                   and isinstance(e.value, int)
                   and not isinstance(e.value, bool) for e in arg.elts)
    else:
        return False
    if (isinstance(element, ast.Call)
            and isinstance(element.func, ast.Name)
            and element.func.id == "len"):
        return True
    return (isinstance(element, ast.Constant)
            and isinstance(element.value, int)
            and not isinstance(element.value, bool))


class ExactRoundingRule(Rule):
    """DCUP006: no bare float accumulation on oracle-equivalence paths."""

    code = "DCUP006"
    name = "exact-rounding-bare-float-sum"
    summary = ("oracle-equivalence modules (sim/fastreplay.py, "
               "sim/columnar.py, sim/shard.py, core/leasearray.py) must "
               "accumulate floats only through math.fsum/ExactSum, never "
               "bare sum() or running +=")
    scope = ("repro/sim/fastreplay.py, repro/sim/columnar.py, "
             "repro/sim/shard.py, repro/core/leasearray.py")

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        if not module.is_file(EXACT_ROUNDING_FILES):
            return
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(node for node in ast.walk(module.tree)
                      if isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)))
        for scope in scopes:
            float_names: Set[str] = set()
            for node in scoped_walk(scope):
                if (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, float)):
                    float_names.update(
                        target.id for target in node.targets
                        if isinstance(target, ast.Name))
            for node in scoped_walk(scope):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "sum"
                        and not _integral_summand(node)):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "bare sum() over a possibly-float sequence on an "
                        "oracle-equivalence path: use math.fsum or "
                        "ExactSum to keep results exactly rounded")
                elif (isinstance(node, ast.AugAssign)
                        and isinstance(node.op, (ast.Add, ast.Sub))
                        and isinstance(node.target, ast.Name)
                        and node.target.id in float_names):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"running float accumulation "
                        f"'{node.target.id} {'+=' if isinstance(node.op, ast.Add) else '-='} ...' "
                        f"is order-dependent: collect terms and fold them "
                        f"through math.fsum or ExactSum")
