"""Async-safety rules over the await graph (DCUP009–012).

The live transport (PR 7) put an asyncio event loop under the protocol
stack; these rules hold the concurrency contracts that the determinism
rules cannot see:

* ``DCUP009`` — no blocking call inside a coroutine.  One
  ``time.sleep`` or ``subprocess.run`` inside an ``async def`` on the
  transport path stalls *every* timer and socket on the loop, which
  shows up as phantom consistency-window violations in the live audit.
  Re-entering the loop (``run_until_complete`` from a coroutine) is the
  same family: it deadlocks outright.
* ``DCUP010`` — no coroutine dropped on the floor.  Calling a known
  ``async def`` as a bare expression statement builds a coroutine
  object nobody awaits: the body never runs and CPython only tells you
  in a destructor warning.  Awaiting, returning, or passing it to a
  sink (:data:`~repro.analysis.asyncgraph.CORO_SINKS`) all count as
  consumption.
* ``DCUP011`` — loop-affinity for shared mutable registries.  TraceBus
  taps, clock service hooks, and the stream pool are owned by the
  event loop's thread; mutating them at import time, from ``__del__``,
  or from a thread-target/executor callable races the loop.
* ``DCUP012`` — tasks and sockets must not leak.  A
  ``create_task``/``ensure_future`` result that is not retained can be
  garbage-collected mid-flight (asyncio only holds a weak reference);
  a socket whose post-creation setup (``bind``/``listen``/``connect``)
  is not wrapped in a try that closes it on the exception edge leaks
  the file descriptor when the OS says no.

The runtime counterparts of the same codes are produced by
:mod:`repro.analysis.sanitizer` under ``LiveClock(sanitize=True)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from .asyncgraph import await_graph
from .findings import Finding
from .linter import (
    ASYNC_AFFINITY_SCOPE,
    ASYNC_BLOCKING_FILES,
    ASYNC_BLOCKING_SCOPE,
    ASYNC_TASK_SCOPE,
    ModuleInfo,
    ProjectContext,
    Rule,
    import_map,
    resolve_dotted,
    terminal_name,
)

#: Known-blocking call targets, by absolute dotted name.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.gethostbyaddr",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.head", "requests.request",
})

#: Builtins that block on I/O when called as bare names.
_BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Loop re-entry methods: calling these from inside a coroutine on the
#: same loop deadlocks (the loop is already running this frame).
_LOOP_REENTRY = frozenset({"run_until_complete", "run_forever"})

#: Task/future factories whose result must be retained (asyncio keeps
#: only a weak reference to running tasks).
_TASK_FACTORIES = frozenset({"create_task", "ensure_future",
                             "run_coroutine_threadsafe"})

#: Socket methods that raise on the unhappy path after creation.
_SOCKET_RISKY = frozenset({"bind", "listen", "connect", "accept"})

#: Methods that mutate loop-owned shared registries (TraceBus taps,
#: LiveClock service hooks); receivers are not discriminated — any
#: spelling of these mutators is loop-affine in net//sim/.
_GUARDED_MUTATORS = frozenset({"add_tap", "remove_tap", "add_service"})


class AsyncBlockingCallRule(Rule):
    """DCUP009: no blocking call inside a coroutine."""

    code = "DCUP009"
    name = "async-blocking-call"
    summary = ("no blocking call (time.sleep, subprocess, blocking "
               "socket/file I/O, loop re-entry) inside an async def on "
               "the live transport path")
    scope = "repro/net + sim/livetestbed.py"

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        if not (module.in_subsystems(ASYNC_BLOCKING_SCOPE)
                or module.is_file(ASYNC_BLOCKING_FILES)):
            return
        imports = import_map(module.tree)
        graph = await_graph(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not graph.in_coroutine(node):
                continue
            dotted = resolve_dotted(node.func, imports)
            if dotted in _BLOCKING_CALLS:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"blocking call {dotted}() inside a coroutine stalls "
                    f"every timer and socket on the event loop: use the "
                    f"asyncio equivalent (await asyncio.sleep, "
                    f"run_in_executor, asyncio.open_connection)")
            elif (isinstance(node.func, ast.Name)
                  and node.func.id in _BLOCKING_BUILTINS
                  and node.func.id not in imports):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"blocking builtin {node.func.id}() inside a "
                    f"coroutine: move the I/O off the loop "
                    f"(run_in_executor) or out of the coroutine")
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr in _LOOP_REENTRY):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"loop re-entry {node.func.attr}() inside a "
                    f"coroutine deadlocks the already-running loop: "
                    f"await the coroutine instead")


class UnawaitedCoroutineRule(Rule):
    """DCUP010: coroutine results must be consumed, not dropped."""

    code = "DCUP010"
    name = "async-unawaited-coroutine"
    summary = ("a call to a known async def must be awaited, returned, "
               "or passed to a task sink — a bare expression statement "
               "builds a coroutine that never runs")
    scope = "repro/{net,sim,tools}"

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        if not module.in_subsystems(ASYNC_TASK_SCOPE):
            return
        graph = await_graph(module)
        if not graph.async_names:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = terminal_name(call.func)
            if name in graph.async_names:
                yield self.finding(
                    module, call.lineno, call.col_offset,
                    f"call to coroutine function {name!r} is neither "
                    f"awaited nor passed to create_task/gather/spawn: "
                    f"the coroutine object is built and silently "
                    f"discarded, its body never runs")


class LoopAffinityRule(Rule):
    """DCUP011: loop-owned registries mutate only in loop contexts."""

    code = "DCUP011"
    name = "async-loop-affinity"
    summary = ("TraceBus taps and clock service hooks are owned by the "
               "event loop: no add_tap/remove_tap/add_service at module "
               "level, in __del__, or in thread-target callables")
    scope = "repro/{net,sim}"

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        if not module.in_subsystems(ASYNC_AFFINITY_SCOPE):
            return
        graph = await_graph(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _GUARDED_MUTATORS:
                continue
            context = graph.off_loop_context(node)
            if context is None:
                continue
            receiver = ast.unparse(func.value)
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"{receiver}.{func.attr}(...) {context} races the "
                f"owning event loop: mutate loop-owned registries from "
                f"loop callbacks/coroutines (or synchronous setup on "
                f"the owner thread) only")


def _protected_by_closer(module: ModuleInfo, node: ast.AST) -> bool:
    """True when ``node`` sits in a try whose handlers/finally close."""
    current: ast.AST = node
    parents = module.parents
    while current in parents:
        parent = parents[current]
        if isinstance(parent, ast.Try) and any(
                current is stmt for stmt in parent.body):
            cleanup: List[ast.stmt] = list(parent.finalbody)
            for handler in parent.handlers:
                cleanup.extend(handler.body)
            for stmt in cleanup:
                for sub in ast.walk(stmt):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "close"):
                        return True
        current = parent
    return False


class TaskResourceLeakRule(Rule):
    """DCUP012: retain task handles; close sockets on exception edges."""

    code = "DCUP012"
    name = "async-task-resource-leak"
    summary = ("create_task/ensure_future results must be retained "
               "(asyncio holds only a weak reference), and a socket's "
               "post-creation setup must close it on the exception edge")
    scope = "repro/{net,sim,tools}"

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        if not module.in_subsystems(ASYNC_TASK_SCOPE):
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = terminal_name(call.func)
            if name in _TASK_FACTORIES:
                yield self.finding(
                    module, call.lineno, call.col_offset,
                    f"{name}(...) result dropped on the floor: asyncio "
                    f"keeps only a weak reference to running tasks, so "
                    f"an unretained task can be garbage-collected "
                    f"mid-flight — retain the handle (and surface its "
                    f"exception) or use LiveClock.spawn")
        graph = await_graph(module)
        for info in graph.functions:
            for finding in self._socket_leaks(module, imports, info.node):
                yield finding

    def _socket_leaks(self, module: ModuleInfo, imports: Dict[str, str],
                      func: ast.AST) -> Iterator[Finding]:
        sockets: List[Tuple[str, int]] = []
        for node in ast.walk(func):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.value, ast.Call)
                    and resolve_dotted(node.value.func,
                                       imports) == "socket.socket"):
                target = terminal_name(node.targets[0])
                if target is not None:
                    sockets.append((target, node.lineno))
        for target, created_line in sockets:
            exposure = self._first_unprotected(module, func, target,
                                               created_line)
            if exposure is not None:
                attr, line, col = exposure
                yield self.finding(
                    module, line, col,
                    f"socket {target!r} (created at line {created_line}) "
                    f"leaks its descriptor if .{attr}() raises: wrap the "
                    f"post-creation setup in try/except that closes the "
                    f"socket and re-raises")

    def _first_unprotected(self, module: ModuleInfo, func: ast.AST,
                           target: str, created_line: int
                           ) -> Optional[Tuple[str, int, int]]:
        risky: List[Tuple[int, int, str, ast.Call]] = []
        for node in ast.walk(func):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SOCKET_RISKY
                    and terminal_name(node.func.value) == target
                    and node.lineno > created_line):
                risky.append((node.lineno, node.col_offset,
                              node.func.attr, node))
        for line, col, attr, node in sorted(risky, key=lambda r: r[:2]):
            if not _protected_by_closer(module, node):
                return (attr, line, col)
        return None
