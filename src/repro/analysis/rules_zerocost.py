"""Zero-cost instrumentation rule: uninstrumented runs must stay free.

The observability layer's contract (DESIGN.md §8) is that every hook on
a hot path is ``None`` by default and every use is guarded by a plain
``is not None`` check, so no event object, f-string, or dict is ever
built unless a bus is attached.  An unguarded
``self.trace.emit(...)`` either crashes the uninstrumented run
(``None.emit``) or — worse, when the attribute defaults to a live bus —
taxes every benchmark.  ``DCUP005`` statically requires the guard for
every instrument call in the protocol engine and transport
(``core/``, ``net/``) plus the named streaming files
(:data:`~repro.analysis.linter.ZERO_COST_FILES` — the incremental
auditor's optional window histogram and the live telemetry plane):

* ``*.trace.emit(...)`` / ``*bus.emit(...)``  — trace events,
* ``*capture.record(...)``                    — wire capture,
* ``*hist.observe(...)``                      — histograms,
* ``*counter.inc(...)``                       — counters,
* ``*ledger.record(...)``                     — load attribution.

A call is guarded when an enclosing ``if``/conditional-expression test
contains ``<receiver> is not None`` for the exact receiver expression
(``self.trace is not None and ...`` also qualifies).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .findings import Finding
from .linter import (
    ModuleInfo,
    ProjectContext,
    Rule,
    ZERO_COST_FILES,
    ZERO_COST_SCOPE,
    guarding_tests,
    terminal_name,
)


def _instrument_receiver(call: ast.Call) -> Optional[str]:
    """The receiver expression source if this is an instrument call."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    term = terminal_name(func.value)
    if term is None:
        return None
    norm = term.lower().lstrip("_")
    attr = func.attr
    instrumented = (
        (attr == "emit" and (norm in ("trace", "bus")
                             or norm.endswith("trace")
                             or norm.endswith("bus")))
        or (attr == "record" and (norm.endswith("capture")
                                  or norm.endswith("ledger")))
        or (attr == "observe" and (norm.endswith("hist")
                                   or norm.endswith("histogram")))
        or (attr == "inc" and norm.endswith("counter"))
    )
    return ast.unparse(func.value) if instrumented else None


class ZeroCostRule(Rule):
    """DCUP005: instrument calls in core/net need an is-not-None guard."""

    code = "DCUP005"
    name = "zero-cost-unguarded-instrumentation"
    summary = ("every trace/metrics/capture call in core/, net/ and the "
               "streaming telemetry files must sit under an "
               "'if <receiver> is not None' guard")
    scope = "repro/{core,net} + obs/{streaming,load}.py"

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        if not (module.in_subsystems(ZERO_COST_SCOPE)
                or module.is_file(ZERO_COST_FILES)):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            receiver = _instrument_receiver(node)
            if receiver is None:
                continue
            if receiver in guarding_tests(module, node):
                continue
            attr = node.func.attr  # type: ignore[attr-defined]
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"unguarded instrumentation call {receiver}.{attr}(...): "
                f"wrap it in 'if {receiver} is not None:' so "
                f"uninstrumented runs stay zero-cost")
