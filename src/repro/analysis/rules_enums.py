"""Enum-exhaustiveness rule: opcode/rcode dispatch covers every member.

``dnslib/enums.py`` is the protocol's constant vocabulary; DNScup even
extends it (the ``CACHE_UPDATE`` opcode).  When a new member lands, any
``if/elif`` ladder that dispatches over the enum without a default
silently ignores the new value — exactly how "unknown opcode" bugs ship.
``DCUP007`` finds ``if/elif`` chains where every test compares one
subject against :class:`~repro.dnslib.enums.Opcode` or
:class:`~repro.dnslib.enums.Rcode` members and requires that the chain
either covers **all** members or ends in an explicit ``else`` default.

Single-member checks (``if message.opcode == Opcode.QUERY: ...``) are
conditions, not dispatch, and are never flagged; a chain needs at least
two distinct members to qualify.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..dnslib.enums import Opcode, Rcode
from .findings import Finding
from .linter import ModuleInfo, ProjectContext, Rule

#: Enum class name -> its full member-name set.
_ENUMS = {
    "Opcode": frozenset(member.name for member in Opcode),
    "Rcode": frozenset(member.name for member in Rcode),
}


def _member_test(test: ast.expr) -> Optional[Tuple[str, str, str]]:
    """Decode ``subject == Enum.MEMBER`` (either side); None otherwise."""
    if (not isinstance(test, ast.Compare) or len(test.ops) != 1
            or not isinstance(test.ops[0], (ast.Eq, ast.Is))):
        return None
    left, right = test.left, test.comparators[0]
    for subject, member in ((left, right), (right, left)):
        if (isinstance(member, ast.Attribute)
                and isinstance(member.value, ast.Name)
                and member.value.id in _ENUMS
                and member.attr in _ENUMS[member.value.id]):
            return (member.value.id, member.attr, ast.unparse(subject))
    return None


class EnumDispatchRule(Rule):
    """DCUP007: enum if/elif ladders need full coverage or an else."""

    code = "DCUP007"
    name = "enum-exhaustive-dispatch"
    summary = ("if/elif dispatch over Opcode/Rcode must cover every "
               "member or end in an explicit else default")

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.If):
                continue
            parent = module.parents.get(node)
            if (isinstance(parent, ast.If)
                    and len(parent.orelse) == 1
                    and parent.orelse[0] is node):
                continue  # an elif link; only chain heads are inspected
            finding = self._check_chain(module, node)
            if finding is not None:
                yield finding

    def _check_chain(self, module: ModuleInfo,
                     head: ast.If) -> Optional[Finding]:
        enum_name: Optional[str] = None
        subject: Optional[str] = None
        members: List[str] = []
        current: ast.stmt = head
        while isinstance(current, ast.If):
            decoded = _member_test(current.test)
            if decoded is None:
                return None  # not (purely) an enum dispatch
            test_enum, member, test_subject = decoded
            if enum_name is None:
                enum_name, subject = test_enum, test_subject
            elif test_enum != enum_name or test_subject != subject:
                return None  # mixed subjects/enums: not one dispatch
            members.append(member)
            if len(current.orelse) == 1 and isinstance(current.orelse[0],
                                                       ast.If):
                current = current.orelse[0]
                continue
            if current.orelse:
                return None  # explicit else default: exhaustive enough
            break
        distinct = set(members)
        if len(distinct) < 2:
            return None  # a condition, not a dispatch
        missing = sorted(_ENUMS[enum_name or ""] - distinct)
        if not missing:
            return None
        return self.finding(
            module, head.lineno, head.col_offset,
            f"if/elif dispatch on {subject} covers "
            f"{len(distinct)}/{len(_ENUMS[enum_name or ''])} "
            f"{enum_name} members without an else default "
            f"(missing: {', '.join(missing)}): add the members or an "
            f"explicit else branch")
