"""Lease-FSM reachability: the declared machine matches the code.

``DCUP013`` closes the loop between :mod:`repro.core.fsm` — the
normative ``LEASE_STATES`` / ``LEASE_INITIAL`` / ``LEASE_TRANSITIONS``
declaration (PROTOCOL.md §10) — and the dispatch sites that actually
drive the machine: the ``lease.*`` / ``renego.*`` trace emits in
``repro/core``.  Checked per declaring module:

* the table itself must be well-formed (4-string rows, known states,
  unique transition names) and every state reachable from the initial
  state — an unreachable state is dead protocol surface;

and across the scan (mirroring ``DCUP004``'s discipline — coverage is
only claimed when the scan actually contained the evidence):

* every declared transition's event must have at least one dispatch
  site in the scanned ``core/`` tree (checked only when the scan saw
  *some* dispatch site, so linting the declaration file alone makes no
  coverage claims);
* every dispatched ``lease.*`` / ``renego.*`` event that is a registry
  member must be a declared transition — an undeclared dispatch is a
  lifecycle edge the normative table does not admit.  (Names *outside*
  the trace registry are DCUP003's jurisdiction, not duplicated here.)
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..obs.trace import EVENT_NAMES
from .findings import Finding
from .linter import ModuleInfo, ProjectContext, Rule
from .rules_trace import _event_argument, _is_bus_emit, _resolve_event_name

#: Event-name prefixes that belong to the lease lifecycle machine.
_FSM_PREFIXES = ("lease.", "renego.")

#: The module-level names that make up a declaration.
_DECL_NAMES = ("LEASE_STATES", "LEASE_INITIAL", "LEASE_TRANSITIONS")


def _assigned_name(node: ast.stmt) -> Optional[str]:
    if (isinstance(node, ast.Assign) and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)):
        return node.targets[0].id
    return None


def _string_tuple(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """The value of a literal tuple/list of strings, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: List[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return tuple(values)


class _Declaration:
    """One module's parsed LEASE_* table plus source coordinates."""

    def __init__(self) -> None:
        self.states: Optional[Tuple[str, ...]] = None
        self.states_line = 0
        self.initial: Optional[str] = None
        self.initial_line = 0
        #: ``(transition, src, dst, event, line)`` for well-formed rows.
        self.rows: List[Tuple[str, str, str, str, int]] = []
        self.transitions_line = 0
        self.has_transitions = False


class LeaseFsmRule(Rule):
    """DCUP013: declared lease-FSM transitions match dispatch sites."""

    code = "DCUP013"
    name = "lease-fsm-reachability"
    summary = ("the declared lease lifecycle table (LEASE_TRANSITIONS) "
               "must be well-formed and reachable, every declared "
               "transition dispatched, and every core lease/renego "
               "emit declared")
    scope = "repro/core; dispatch coverage is cross-file"

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        if not module.in_subsystems(("core",)):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_bus_emit(node):
                arg = _event_argument(node)
                resolved = (_resolve_event_name(arg)
                            if arg is not None else None)
                if resolved is not None and resolved.startswith(_FSM_PREFIXES):
                    ctx.fsm_dispatch.setdefault(resolved, []).append(
                        (module.display, node.lineno))
        declaration = _Declaration()
        for finding in self._parse(module, declaration):
            yield finding
        if not declaration.has_transitions:
            return
        for finding in self._check_structure(module, declaration):
            yield finding
        ctx.fsm_tables.append(
            (module.display,
             [(name, event, line)
              for name, _src, _dst, event, line in declaration.rows]))

    # -- declaration parsing ---------------------------------------------------

    def _parse(self, module: ModuleInfo,
               declaration: _Declaration) -> Iterator[Finding]:
        for stmt in module.tree.body:
            name = _assigned_name(stmt)
            if name not in _DECL_NAMES:
                continue
            assert isinstance(stmt, ast.Assign)
            value = stmt.value
            if name == "LEASE_STATES":
                declaration.states = _string_tuple(value)
                declaration.states_line = stmt.lineno
                if declaration.states is None:
                    yield self.finding(
                        module, stmt.lineno, stmt.col_offset,
                        "LEASE_STATES must be a literal tuple of state-"
                        "name strings")
            elif name == "LEASE_INITIAL":
                declaration.initial_line = stmt.lineno
                if (isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    declaration.initial = value.value
                else:
                    yield self.finding(
                        module, stmt.lineno, stmt.col_offset,
                        "LEASE_INITIAL must be a literal state-name "
                        "string")
            else:
                declaration.has_transitions = True
                declaration.transitions_line = stmt.lineno
                if not isinstance(value, (ast.Tuple, ast.List)):
                    yield self.finding(
                        module, stmt.lineno, stmt.col_offset,
                        "LEASE_TRANSITIONS must be a literal tuple of "
                        "(transition, src, dst, event) rows")
                    continue
                for element in value.elts:
                    row = _string_tuple(element)
                    if row is None or len(row) != 4:
                        yield self.finding(
                            module, element.lineno, element.col_offset,
                            "malformed LEASE_TRANSITIONS row: expected "
                            "4 literal strings (transition, src, dst, "
                            "event)")
                        continue
                    declaration.rows.append(
                        (row[0], row[1], row[2], row[3], element.lineno))

    # -- per-module structure checks -------------------------------------------

    def _check_structure(self, module: ModuleInfo,
                         declaration: _Declaration) -> Iterator[Finding]:
        states = declaration.states or ()
        seen: Set[str] = set()
        for name, src, dst, _event, line in declaration.rows:
            if name in seen:
                yield self.finding(
                    module, line, 0,
                    f"duplicate transition name {name!r} in "
                    f"LEASE_TRANSITIONS")
            seen.add(name)
            if declaration.states is not None:
                for role, state in (("source", src), ("destination", dst)):
                    if state not in states:
                        yield self.finding(
                            module, line, 0,
                            f"transition {name!r} names unknown {role} "
                            f"state {state!r} (not in LEASE_STATES)")
        if declaration.states is None or declaration.initial is None:
            return
        if declaration.initial not in states:
            yield self.finding(
                module, declaration.initial_line, 0,
                f"LEASE_INITIAL {declaration.initial!r} is not a member "
                f"of LEASE_STATES")
            return
        edges: Dict[str, Set[str]] = {}
        for _name, src, dst, _event, _line in declaration.rows:
            edges.setdefault(src, set()).add(dst)
        reached: Set[str] = set()
        frontier: List[str] = [declaration.initial]
        while frontier:
            state = frontier.pop()
            if state in reached:
                continue
            reached.add(state)
            frontier.extend(edges.get(state, ()))
        for state in states:
            if state not in reached:
                yield self.finding(
                    module, declaration.states_line, 0,
                    f"state {state!r} is unreachable from "
                    f"LEASE_INITIAL {declaration.initial!r}: dead "
                    f"protocol surface or a missing transition")

    # -- cross-file coverage ---------------------------------------------------

    def finalize(self, ctx: ProjectContext) -> Iterator[Finding]:
        if not ctx.fsm_tables:
            return
        declared: Set[str] = set()
        for _display, rows in ctx.fsm_tables:
            for _name, event, _line in rows:
                declared.add(event)
        if ctx.fsm_dispatch:
            for display, rows in ctx.fsm_tables:
                for name, event, line in rows:
                    if event not in ctx.fsm_dispatch:
                        yield self.finding(
                            display, line, 0,
                            f"declared transition {name!r} (event "
                            f"{event!r}) has no dispatch site in the "
                            f"scanned core/ tree: unreachable "
                            f"transition — remove the row or restore "
                            f"its dispatcher")
        for event in sorted(ctx.fsm_dispatch):
            if event in declared or event not in EVENT_NAMES:
                continue
            for display, line in ctx.fsm_dispatch[event]:
                yield self.finding(
                    display, line, 0,
                    f"emit of {event!r} is not a declared lease-FSM "
                    f"transition (PROTOCOL.md §10): add the transition "
                    f"row or stop dispatching the event")
