"""Static analysis: the ``repro-lint`` protocol-invariant rule pack.

PR 3 gave the repo *runtime* auditing — span reconstruction and
invariant checking over exported traces.  This package holds the same
contracts *at rest*: a small AST-based linter whose rules encode the
codebase's real invariants, so the fast paths and observability hooks
cannot silently regress as the tree grows.

* :mod:`repro.analysis.findings` — :class:`Finding` records with stable
  ``DCUP###`` codes and byte-stable JSON/text rendering;
* :mod:`repro.analysis.suppress` — ``repro-lint: disable=...`` comment
  parsing (a reason string is mandatory);
* :mod:`repro.analysis.linter` — the file walker, rule framework, and
  the assembled default rule pack;
* ``rules_*`` modules — one module per invariant family: determinism,
  trace contract, zero-cost instrumentation, exact rounding, enum
  exhaustiveness, async correctness (over the await graph built by
  :mod:`repro.analysis.asyncgraph`), lease-FSM reachability;
* :mod:`repro.analysis.sanitizer` — the TSan-style *runtime*
  counterpart, armed via ``LiveClock(sanitize=True)`` /
  ``repro-live --sanitize``.

The CLI lives in :mod:`repro.tools.lint_tool` (``repro-lint``); the
rule catalogue is documented in DESIGN.md §9.
"""

from .findings import CODE_PATTERN, Finding, render_json, render_text
from .linter import (
    DEFAULT_RULES,
    LintError,
    ModuleInfo,
    ProjectContext,
    Rule,
    iter_python_files,
    lint_paths,
    parse_select,
    rule_catalogue,
)

# After .linter: the await graph is built over the linter's ModuleInfo,
# and the linter's own bottom imports pull in rules_async → asyncgraph.
from .asyncgraph import AwaitGraph, await_graph  # noqa: E402
from .sanitizer import Sanitizer  # noqa: E402
from .suppress import Suppressions, parse_suppressions  # noqa: E402

__all__ = [
    "AwaitGraph", "await_graph",
    "CODE_PATTERN", "Finding", "render_json", "render_text",
    "DEFAULT_RULES", "LintError", "ModuleInfo", "ProjectContext", "Rule",
    "iter_python_files", "lint_paths", "parse_select", "rule_catalogue",
    "Sanitizer",
    "Suppressions", "parse_suppressions",
]
