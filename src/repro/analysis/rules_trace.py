"""Trace-contract rules: the event-name schema holds in both directions.

PROTOCOL.md §9 pins the trace schema as the frozen registry
``repro.obs.trace.EVENT_NAMES``.  Runtime code already validates loaded
traces against it (``repro-obs --strict``); these rules keep the *source
tree* in agreement with the registry so schema drift is caught before a
single run happens:

* ``DCUP003`` — every literal (or registry-constant) event name passed
  to a ``TraceBus.emit`` call must be a registry member;
* ``DCUP004`` — every registry member must be emitted somewhere in the
  scanned tree (a name nobody emits is a dead schema entry, usually a
  renamed event whose emitter kept the old spelling).

``DCUP004`` is a cross-file check: it only fires when the scan included
the file that defines ``EVENT_NAMES``, so linting a single module never
claims the whole contract is unemitted.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..obs import trace as trace_module
from ..obs.trace import EVENT_NAMES, TRACE_META
from .findings import Finding
from .linter import ModuleInfo, ProjectContext, Rule, terminal_name

#: Receiver spellings treated as a TraceBus: ``self.trace.emit(...)``,
#: ``trace.emit(...)``, ``bus.emit(...)``, ``obs.trace.emit(...)``.
_BUS_TERMINALS = ("trace", "bus")


def _is_bus_emit(call: ast.Call) -> bool:
    """True when ``call`` looks like a TraceBus.emit invocation."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "emit":
        return False
    term = terminal_name(func.value)
    if term is None:
        return False
    norm = term.lower().lstrip("_")
    return any(norm == t or norm.endswith(t) for t in _BUS_TERMINALS)


def _event_argument(call: ast.Call) -> Optional[ast.expr]:
    """The expression supplying the event name, if present."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "event":
            return keyword.value
    return None


def _resolve_event_name(arg: ast.expr) -> Optional[str]:
    """The event-name string an emit argument denotes, if knowable.

    Literals resolve to themselves; bare names and attributes resolve
    through the live registry module (``LEASE_GRANT`` ->
    ``"lease.grant"``), which also covers re-exports like
    ``repro.obs.LEASE_GRANT``.  Anything dynamic resolves to None and
    is left to the runtime validator.
    """
    if isinstance(arg, ast.Constant):
        return arg.value if isinstance(arg.value, str) else None
    ident = terminal_name(arg)
    if ident is None:
        return None
    value = getattr(trace_module, ident, None)
    return value if isinstance(value, str) else None


class TraceEmitNameRule(Rule):
    """DCUP003: emitted event names must belong to the registry."""

    code = "DCUP003"
    name = "trace-contract-unknown-event"
    summary = ("every literal event name passed to TraceBus.emit must be "
               "a member of repro.obs.trace.EVENT_NAMES")

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        # Anchor the registry-coverage check (DCUP004) on the defining
        # file so a partial scan skips it; done here because both trace
        # rules share one walk-worthy concern: the schema.
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "EVENT_NAMES"
                    for t in node.targets):
                ctx.registry_sites.append((module.display, node.lineno))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not _is_bus_emit(node):
                continue
            arg = _event_argument(node)
            if arg is None:
                continue
            resolved = _resolve_event_name(arg)
            if resolved is None:
                continue  # dynamic name: the runtime validator's job
            if resolved in EVENT_NAMES or resolved == TRACE_META:
                ctx.record_emit(resolved, module.display, node.lineno)
            else:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"event name {resolved!r} is not in the PROTOCOL.md "
                    f"§9 registry (repro.obs.trace.EVENT_NAMES): add it "
                    f"to the registry or fix the spelling")


class RegistryCoverageRule(Rule):
    """DCUP004: every registry event name must have an emitter."""

    code = "DCUP004"
    name = "trace-contract-unemitted-event"
    summary = ("every member of EVENT_NAMES must be emitted somewhere in "
               "the scanned tree (dead schema entries are drift)")
    scope = "cross-file; runs when the scan includes the registry"

    def finalize(self, ctx: ProjectContext) -> Iterator[Finding]:
        if not ctx.registry_sites:
            return
        display, line = ctx.registry_sites[0]
        for name in sorted(EVENT_NAMES - set(ctx.emitted)):
            yield self.finding(
                display, line, 0,
                f"registry event {name!r} is never emitted in the "
                f"scanned tree: remove the dead entry or restore its "
                f"emitter")
