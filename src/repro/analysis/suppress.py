"""Suppression comments: silencing a finding requires saying why.

Two forms, both parsed from real comment tokens (never from strings or
docstrings):

* line level, on the offending line::

      something_flagged()  # repro-lint: disable=DCUP001 -- sim clock is threaded in by the caller

* file level, anywhere in the file (conventionally at the top)::

      # repro-lint: disable-file=DCUP003,DCUP004 -- fixture tree with a private event registry

The ``-- reason`` clause is mandatory: a suppression without a reason
(or with unparseable codes) is itself a finding (``DCUP008``) and
suppresses nothing — a deliberately higher bar than ``# noqa``, because
every suppression documents a judged false positive of a *protocol*
invariant.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

from .findings import CODE_PATTERN

#: Any comment claiming to be a repro-lint directive.
_DIRECTIVE = re.compile(r"#\s*repro-lint\s*:")

#: A well-formed directive: kind, comma-separated codes, mandatory reason.
_WELL_FORMED = re.compile(
    r"#\s*repro-lint\s*:\s*"
    r"(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"\s+--\s*(?P<reason>\S.*?)\s*$")


@dataclasses.dataclass
class Suppressions:
    """Parsed suppression state for one file."""

    #: Line number -> codes disabled on exactly that line.
    line_codes: Dict[int, Set[str]] = dataclasses.field(default_factory=dict)
    #: Codes disabled for the whole file.
    file_codes: Set[str] = dataclasses.field(default_factory=set)
    #: Malformed directives: (line, col, problem description).
    malformed: List[Tuple[int, int, str]] = dataclasses.field(
        default_factory=list)

    def hides(self, code: str, line: int) -> bool:
        """True when a finding of ``code`` at ``line`` is suppressed."""
        if code in self.file_codes:
            return True
        return code in self.line_codes.get(line, ())


def parse_suppressions(source: str) -> Suppressions:
    """Extract every suppression directive from ``source``'s comments."""
    result = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        # Unparseable files are reported by the walker; nothing to do.
        return result
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not _DIRECTIVE.search(comment):
            continue
        line, col = token.start
        match = _WELL_FORMED.search(comment)
        if match is None:
            result.malformed.append((
                line, col,
                "malformed repro-lint directive: expected "
                "'repro-lint: disable[-file]=CODE[,CODE...] -- reason'"))
            continue
        codes = {c.strip() for c in match.group("codes").split(",")}
        bad = sorted(c for c in codes if not CODE_PATTERN.match(c))
        if bad:
            result.malformed.append((
                line, col,
                f"suppression names invalid code(s) {', '.join(bad)}: "
                f"codes look like DCUP001"))
            continue
        if match.group("kind") == "disable-file":
            result.file_codes.update(codes)
        else:
            result.line_codes.setdefault(line, set()).update(codes)
    return result
