"""Determinism rules: no wall clocks, no ambient randomness.

The protocol engine, transport, replay, and observability layers
(``core/``, ``net/``, ``sim/``, ``obs/``) are driven entirely by the
simulator's virtual clock and by :class:`random.Random` instances
threaded in as arguments with explicit seeds — that is what makes runs
replayable and traces byte-stable.  A single ``time.time()`` or
module-level ``random.random()`` breaks both properties silently, so
these rules hold the door shut:

* ``DCUP001`` — any wall-clock read (``time.time``, ``time.monotonic``,
  ``datetime.now`` and friends);
* ``DCUP002`` — the process-global PRNG (``random.random``,
  ``random.randint``, ...), an *unseeded* ``random.Random()``,
  ``random.SystemRandom``, or NumPy's global random state.

``random.Random(seed)`` instances are fine anywhere — that is exactly
the pattern :class:`repro.net.network.Network` uses.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .linter import (
    DETERMINISM_SCOPE,
    ModuleInfo,
    ProjectContext,
    Rule,
    import_map,
    resolve_dotted,
)
from .findings import Finding

#: Wall-clock reads (call targets by absolute dotted name).
_WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module-level functions of the stdlib's process-global PRNG.
_GLOBAL_RANDOM = frozenset({
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.triangular", "random.betavariate", "random.expovariate",
    "random.gammavariate", "random.gauss", "random.lognormvariate",
    "random.normalvariate", "random.vonmisesvariate", "random.paretovariate",
    "random.weibullvariate", "random.getrandbits", "random.seed",
})

#: NumPy's process-global random state (legacy API).
_NUMPY_GLOBAL = frozenset({
    "numpy.random.rand", "numpy.random.randn", "numpy.random.randint",
    "numpy.random.random", "numpy.random.random_sample",
    "numpy.random.choice", "numpy.random.shuffle",
    "numpy.random.permutation", "numpy.random.uniform",
    "numpy.random.normal", "numpy.random.seed",
})


class WallClockRule(Rule):
    """DCUP001: deterministic subsystems must not read the wall clock."""

    code = "DCUP001"
    name = "determinism-wall-clock"
    summary = ("no wall-clock reads (time.time, datetime.now, ...) in "
               "core/, net/, sim/, obs/ — time comes from the simulator")
    scope = "repro/{core,net,sim,obs}"

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        if not module.in_subsystems(DETERMINISM_SCOPE):
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, imports)
            if dotted in _WALL_CLOCKS:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"wall-clock read {dotted}() in a deterministic "
                    f"subsystem: take the simulator's virtual time "
                    f"(Simulator.now) as an argument instead")


class UnseededRandomRule(Rule):
    """DCUP002: randomness must be a seeded Random threaded explicitly."""

    code = "DCUP002"
    name = "determinism-unseeded-random"
    summary = ("no process-global or unseeded PRNG in core/, net/, sim/, "
               "obs/ — thread random.Random(seed) instances as arguments")
    scope = "repro/{core,net,sim,obs}"

    def check(self, module: ModuleInfo,
              ctx: ProjectContext) -> Iterator[Finding]:
        if not module.in_subsystems(DETERMINISM_SCOPE):
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, imports)
            if dotted is None:
                continue
            if dotted in _GLOBAL_RANDOM or dotted in _NUMPY_GLOBAL:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"{dotted}() uses the process-global PRNG: construct "
                    f"random.Random(seed) and thread it as an argument "
                    f"(see repro.net.network.Network)")
            elif dotted == "random.SystemRandom":
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "random.SystemRandom is nondeterministic by design "
                    "and cannot be replayed")
            elif (dotted in ("random.Random", "numpy.random.default_rng")
                  and not node.args and not node.keywords):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"{dotted}() without a seed falls back to entropy: "
                    f"pass an explicit seed argument")
