"""The client stub resolver — a simulated end host's DNS client.

Models the browser behaviour that matters to the paper's workload: clients
cache each resolved name for a fixed period (15 minutes in Mozilla, the
setting §5.1 adopts), so the query stream a local nameserver sees is the
client request stream *filtered* by this cache.  Figure 4 studies exactly
how that filtering interacts with the Poisson model.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from ..dnslib import (
    Message,
    Name,
    Rcode,
    ResourceRecord,
    RRType,
    WireFormatError,
    as_name,
    make_query,
)
from ..net import Endpoint, Host, RetryPolicy, Socket

#: Mozilla's default DNS cache duration, seconds (paper §5.1).
DEFAULT_CLIENT_CACHE_SECONDS = 15 * 60

LookupCallback = Callable[[List[str], Rcode], None]


@dataclasses.dataclass
class StubStats:
    """Counters exposed for tests, benchmarks and operators."""
    lookups: int = 0
    cache_hits: int = 0
    queries_sent: int = 0
    failures: int = 0
    tcp_fallbacks: int = 0


class StubResolver:
    """A client-side resolver pointing at one local nameserver."""

    def __init__(self, host: Host, nameserver: Endpoint,
                 cache_seconds: float = DEFAULT_CLIENT_CACHE_SECONDS,
                 retry: Optional[RetryPolicy] = None):
        self.host = host
        self.nameserver = nameserver
        self.cache_seconds = cache_seconds
        self.retry = retry or RetryPolicy()
        self.stats = StubStats()
        self.socket: Socket = host.socket()
        # (name, type) -> (addresses, rcode, fetched_at)
        self._cache: Dict[Tuple[Name, RRType], Tuple[List[str], Rcode, float]] = {}

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self.host.simulator.now

    def lookup(self, name, callback: LookupCallback,
               rrtype: RRType = RRType.A) -> None:
        """Resolve ``name`` to addresses, using the client-side cache."""
        owner = as_name(name)
        self.stats.lookups += 1
        key = (owner, RRType(rrtype))
        cached = self._cache.get(key)
        if cached is not None:
            addresses, rcode, fetched_at = cached
            if self.now - fetched_at < self.cache_seconds:
                self.stats.cache_hits += 1
                callback(list(addresses), rcode)
                return
            del self._cache[key]
        query = make_query(owner, rrtype, recursion_desired=True)
        self.stats.queries_sent += 1
        self.socket.request(
            query.to_wire(), self.nameserver, query.id,
            lambda payload, src: self._on_response(key, payload, callback),
            retry=self.retry)

    def _on_response(self, key: Tuple[Name, RRType],
                     payload: Optional[bytes],
                     callback: LookupCallback,
                     via_stream: bool = False) -> None:
        if payload is None:
            self.stats.failures += 1
            callback([], Rcode.SERVFAIL)
            return
        try:
            response = Message.from_wire(payload)
        except (WireFormatError, ValueError):
            self.stats.failures += 1
            callback([], Rcode.SERVFAIL)
            return
        if response.truncated and not via_stream:
            # Answer did not fit in a UDP datagram: retry over stream.
            self.stats.tcp_fallbacks += 1
            retry = make_query(key[0], key[1], recursion_desired=True)
            self.socket.request_stream(
                retry.to_wire(), self.nameserver, retry.id,
                lambda p, s: self._on_response(key, p, callback,
                                               via_stream=True))
            return
        addresses = [record.rdata.address  # type: ignore[attr-defined]
                     for record in response.answer
                     if record.rrtype == RRType.A]
        if self.cache_seconds > 0:
            self._cache[key] = (addresses, response.rcode, self.now)
        callback(addresses, response.rcode)

    def flush_cache(self) -> None:
        """Drop every cached entry."""
        self._cache.clear()

    def cached_addresses(self, name, rrtype: RRType = RRType.A) -> Optional[List[str]]:
        """The addresses currently cached for ``name``, if unexpired."""
        cached = self._cache.get((as_name(name), RRType(rrtype)))
        if cached is None:
            return None
        addresses, _rcode, fetched_at = cached
        if self.now - fetched_at >= self.cache_seconds:
            return None
        return list(addresses)
