"""The resolver cache: TTL-based weak consistency, plus DNScup hooks.

This is the data structure whose staleness the whole paper is about.  A
:class:`ResolverCache` stores positive entries (RRsets with an absolute
expiry derived from the TTL) and negative entries (NXDOMAIN / NODATA with
the SOA-minimum TTL, RFC 2308).  Lookups are by (name, type); expired
entries are treated as absent and reaped lazily plus on demand.

Two features exist purely for DNScup:

* an entry can carry a **lease expiry**; while the lease is valid the
  entry is considered *coherent* (the authoritative server has promised
  to push changes), and :meth:`apply_cache_update` overwrites the data
  in place when a CACHE-UPDATE arrives;
* :meth:`entries_with_valid_lease` enumerates what a cache would need
  refreshed, which the middleware tests use to assert strong consistency.

The cache also keeps the hit/miss/stale counters the evaluation reads.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from ..dnslib import Name, RRClass, RRSet, RRType, as_name

#: Cache keys are (owner name, rrtype).
CacheKey = Tuple[Name, RRType]


@dataclasses.dataclass
class CacheEntry:
    """One cached RRset with TTL and (optionally) lease state."""

    rrset: RRSet
    stored_at: float
    expires_at: float
    #: Absolute time until which the origin server promised notifications.
    lease_until: Optional[float] = None
    #: True for negative entries (the rrset is then an empty placeholder).
    negative: bool = False
    hits: int = 0

    def is_expired(self, now: float) -> bool:
        """True when the TTL has lapsed at time ``now``."""
        return now >= self.expires_at

    def has_lease(self, now: float) -> bool:
        """True while the entry's lease is valid at ``now``."""
        return self.lease_until is not None and now < self.lease_until

    def remaining_ttl(self, now: float) -> int:
        """Seconds of TTL left at ``now`` (never negative)."""
        return max(0, int(self.expires_at - now))


@dataclasses.dataclass
class CacheStats:
    """Counters for the weak-vs-strong consistency comparison."""

    hits: int = 0
    misses: int = 0
    expired: int = 0
    negative_hits: int = 0
    insertions: int = 0
    evictions: int = 0
    cache_updates_applied: int = 0
    #: Lookups answered from an entry whose lease was still valid.
    coherent_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups performed (hits + misses + expiries)."""
        return self.hits + self.misses + self.expired + self.negative_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache."""
        total = self.lookups
        return (self.hits + self.negative_hits) / total if total else 0.0


class ResolverCache:
    """Bounded LRU cache of RRsets keyed by (name, type)."""

    def __init__(self, capacity: int = 100_000,
                 min_ttl: int = 0, max_ttl: int = 7 * 86400):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    # -- insertion ---------------------------------------------------------

    def put(self, rrset: RRSet, now: float,
            lease_until: Optional[float] = None) -> CacheEntry:
        """Cache a positive RRset, clamping the TTL to configured bounds."""
        ttl = min(max(rrset.ttl, self.min_ttl), self.max_ttl)
        entry = CacheEntry(rrset=rrset.copy(), stored_at=now,
                           expires_at=now + ttl, lease_until=lease_until)
        self._insert((rrset.name, rrset.rrtype), entry)
        return entry

    def put_negative(self, name, rrtype: RRType, soa_minimum: int,
                     now: float) -> CacheEntry:
        """Cache an NXDOMAIN/NODATA result for ``soa_minimum`` seconds."""
        owner = as_name(name)
        placeholder = RRSet(owner, rrtype, soa_minimum, [], RRClass.IN)
        entry = CacheEntry(rrset=placeholder, stored_at=now,
                           expires_at=now + soa_minimum, negative=True)
        self._insert((owner, RRType(rrtype)), entry)
        return entry

    def _insert(self, key: CacheKey, entry: CacheEntry) -> None:
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = entry
        self.stats.insertions += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- lookup ----------------------------------------------------------------

    def get(self, name, rrtype: RRType, now: float) -> Optional[CacheEntry]:
        """A live entry, or None.  Updates LRU order and counters.

        An entry whose TTL has lapsed but whose *lease* is still valid is
        served anyway: the origin has promised to push changes, so the data
        is coherent without polling — this is where DNScup absorbs the
        query traffic that pure TTL would send upstream (paper §4.1).
        """
        key = (as_name(name), RRType(rrtype))
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.is_expired(now) and not entry.has_lease(now):
            del self._entries[key]
            self.stats.expired += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        if entry.negative:
            self.stats.negative_hits += 1
        else:
            self.stats.hits += 1
            if entry.has_lease(now):
                self.stats.coherent_hits += 1
        return entry

    def peek(self, name, rrtype: RRType) -> Optional[CacheEntry]:
        """Inspect without touching counters, LRU order, or expiry."""
        return self._entries.get((as_name(name), RRType(rrtype)))

    # -- DNScup integration ---------------------------------------------------------

    def apply_cache_update(self, rrset: RRSet, now: float) -> bool:
        """Overwrite a cached RRset in place from a CACHE-UPDATE message.

        Returns True when an entry existed and was refreshed.  The entry
        keeps its lease (the server that pushed the update still tracks
        us) and restarts its TTL clock.
        """
        key = (rrset.name, rrset.rrtype)
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.rrset = rrset.copy()
        entry.stored_at = now
        entry.expires_at = now + min(max(rrset.ttl, self.min_ttl), self.max_ttl)
        entry.negative = False
        self.stats.cache_updates_applied += 1
        return True

    def set_lease(self, name, rrtype: RRType, lease_until: float) -> bool:
        """Set the lease expiry on an existing entry, if present."""
        entry = self._entries.get((as_name(name), RRType(rrtype)))
        if entry is None:
            return False
        entry.lease_until = lease_until
        return True

    def entries_with_valid_lease(self, now: float) -> List[CacheEntry]:
        """Entries alive by lease — TTL state is irrelevant while the
        origin's notification promise holds."""
        return [e for e in self._entries.values() if e.has_lease(now)]

    # -- maintenance ----------------------------------------------------------------

    def purge_expired(self, now: float) -> int:
        """Eagerly drop expired entries; returns the count removed."""
        dead = [key for key, entry in self._entries.items() if entry.is_expired(now)]
        for key in dead:
            del self._entries[key]
        return len(dead)

    def flush(self) -> None:
        """Drop every cached entry."""
        self._entries.clear()

    def remove(self, name, rrtype: RRType) -> bool:
        """Remove one entry; returns True when something was removed."""
        return self._entries.pop((as_name(name), RRType(rrtype)), None) is not None

    def __iter__(self) -> Iterator[Tuple[CacheKey, CacheEntry]]:
        return iter(list(self._entries.items()))

    def __repr__(self) -> str:
        return f"ResolverCache(size={len(self)}/{self.capacity})"
