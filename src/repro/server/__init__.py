"""Nameserver implementations: authoritative, recursive, stub, cache."""

from .authoritative import AuthoritativeServer, ServerStats
from .cache import CacheEntry, CacheStats, ResolverCache
from .push import PushService, PushServiceStats, PushSubscriber, PushSubscriberStats
from .rates import EwmaRate, WindowedRate, rate_to_rrc, rrc_to_rate
from .resolver import LeaseGrantInfo, RecursiveResolver, ResolverStats
from .stub import DEFAULT_CLIENT_CACHE_SECONDS, StubResolver, StubStats

__all__ = [
    "AuthoritativeServer", "ServerStats",
    "ResolverCache", "CacheEntry", "CacheStats",
    "RecursiveResolver", "ResolverStats", "LeaseGrantInfo",
    "StubResolver", "StubStats", "DEFAULT_CLIENT_CACHE_SECONDS",
    "WindowedRate", "EwmaRate", "rate_to_rrc", "rrc_to_rate",
    "PushService", "PushServiceStats", "PushSubscriber",
    "PushSubscriberStats",
]
