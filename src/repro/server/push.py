"""A DNS-Push-style comparator (RFC 8765 simplified).

DNS Push Notifications are the closest deployed relative of DNScup:
clients *subscribe* to a record over a long-lived connection and the
server pushes every change for as long as the subscription lives.  The
paper predates RFC 8765; we implement a minimal version as a comparison
baseline for the evaluation:

* a cache subscribes once per record of interest (over the reliable
  stream path — real DNS Push runs over TLS/TCP);
* the server keeps per-subscription state *indefinitely* (until an
  explicit unsubscribe or connection loss), pushing on every change;
* periodic keepalives hold the connection state alive.

Contrast with DNScup's dynamic lease: subscriptions give the same
strong consistency but the server's tracking state never decays, and
each subscription costs keepalive traffic forever.  The comparison
bench quantifies exactly that trade-off.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..dnslib import (
    Message,
    Name,
    Opcode,
    Question,
    RRType,
    WireFormatError,
    WireTemplate,
    make_cache_update,
    make_cache_update_ack,
    make_query,
    make_response,
    records_to_rrsets,
)
from ..dnslib.message import next_message_id
from ..net import Endpoint, PeriodicTimer, Socket
from ..zone import Zone, ZoneChange

#: Subscriptions are (subscriber endpoint, owner name, rrtype).
SubscriptionKey = Tuple[Endpoint, Name, RRType]


@dataclasses.dataclass
class PushServiceStats:
    """Counters exposed for tests, benchmarks and operators."""
    subscriptions: int = 0
    unsubscriptions: int = 0
    pushes_sent: int = 0
    keepalives_sent: int = 0
    #: Full wire encodes (one per changed RRset, shared by subscribers).
    wire_encodes: int = 0


class PushService:
    """Server side: subscription registry + change push over streams."""

    def __init__(self, socket: Socket, zones: List[Zone],
                 keepalive_interval: Optional[float] = 600.0,
                 trace=None):
        self.socket = socket
        self.stats = PushServiceStats()
        #: Optional :class:`repro.obs.TraceBus` receiving ``push.*``
        #: events; costs nothing while None.
        self.trace = trace
        self._subscribers: Dict[Tuple[Name, RRType], Set[Endpoint]] = {}
        self._zones = list(zones)
        for zone in self._zones:
            zone.add_change_listener(self._on_zone_change)
        self._keepalive_timer = None
        if keepalive_interval:
            self._keepalive_timer = PeriodicTimer(
                socket.simulator, keepalive_interval, self._send_keepalives)

    # -- subscription management ------------------------------------------------

    def subscribe(self, subscriber: Endpoint, name, rrtype: RRType) -> None:
        """Register ``subscriber`` for pushes on (name, type)."""
        from ..dnslib import as_name
        key = (as_name(name), RRType(rrtype))
        holders = self._subscribers.setdefault(key, set())
        if subscriber not in holders:
            holders.add(subscriber)
            self.stats.subscriptions += 1

    def unsubscribe(self, subscriber: Endpoint, name, rrtype: RRType) -> bool:
        """Remove a subscription; returns True when it existed."""
        from ..dnslib import as_name
        key = (as_name(name), RRType(rrtype))
        holders = self._subscribers.get(key, set())
        if subscriber in holders:
            holders.remove(subscriber)
            self.stats.unsubscriptions += 1
            return True
        return False

    def subscriber_count(self) -> int:
        """Total live subscription state — the storage metric."""
        return sum(len(holders) for holders in self._subscribers.values())

    # -- change fan-out --------------------------------------------------------------

    def _on_zone_change(self, zone: Zone, changes: List[ZoneChange]) -> None:
        for name, rrtype, _old, new in changes:
            if rrtype == RRType.SOA:
                continue
            holders = self._subscribers.get((name, rrtype), set())
            if not holders:
                continue
            records = new.to_records() if new is not None else []
            # Encode once per changed RRset; patch only the per-push ID.
            message = make_cache_update(name, list(records))
            message.question[0].rrtype = rrtype
            self.stats.wire_encodes += 1
            template = WireTemplate(message)
            for subscriber in holders:
                self.stats.pushes_sent += 1
                if self.trace is not None:
                    self.trace.emit(
                        "push.send",
                        subscriber=f"{subscriber[0]}:{subscriber[1]}",
                        name=name.to_text(), rrtype=rrtype.name)
                self.socket.send_stream(
                    template.with_id(next_message_id()), subscriber)

    def _send_keepalives(self) -> None:
        """One keepalive per subscriber connection per interval."""
        connections = {subscriber
                       for holders in self._subscribers.values()
                       for subscriber in holders}
        if connections and self.trace is not None:
            self.trace.emit("push.keepalive", count=len(connections))
        for subscriber in connections:
            ping = make_query("keepalive.push.", RRType.TXT,
                              recursion_desired=False)
            self.stats.keepalives_sent += 1
            self.socket.send_stream(ping.to_wire(), subscriber)


@dataclasses.dataclass
class PushSubscriberStats:
    """Counters exposed for tests, benchmarks and operators."""
    pushes_received: int = 0
    keepalives_received: int = 0


class PushSubscriber:
    """Cache side: receives pushes on a dedicated stream endpoint."""

    def __init__(self, socket: Socket,
                 apply_fn: Callable[[Name, RRType, list], None]):
        self.socket = socket
        self.apply_fn = apply_fn
        self.stats = PushSubscriberStats()
        socket.on_receive_stream(self._on_stream)

    @property
    def endpoint(self) -> Endpoint:
        """The (address, port) this component is bound to."""
        return self.socket.endpoint

    def _on_stream(self, payload: bytes, src: Endpoint, dst: Endpoint) -> None:
        try:
            message = Message.from_wire(payload)
        except (WireFormatError, ValueError):
            return
        if message.opcode == Opcode.CACHE_UPDATE and not message.is_response:
            self.stats.pushes_received += 1
            question = message.question[0]
            rrsets = records_to_rrsets(message.answer)
            self.apply_fn(question.name, question.rrtype, rrsets)
            self.socket.send_stream(
                make_cache_update_ack(message).to_wire(), src)
            return
        self.stats.keepalives_received += 1
