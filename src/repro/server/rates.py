"""Query-rate estimation.

Both ends of DNScup need rates: the local nameserver reports how hot a
record is among its clients (the RRC field), and the authoritative
server's listening module tracks per-cache rates to size leases.  The
paper leaves the estimator open ("a DNS cache may monitor the rates of
cached records in the incoming queries", §5.1.2); we provide a windowed
counter — transparent and cheap — and an EWMA variant for the ablation
that compares estimators.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Generic, Hashable, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


class WindowedRate(Generic[K]):
    """Per-key arrivals-per-second over a sliding time window.

    ``record(key, now)`` logs one arrival; ``rate(key, now)`` returns
    events/second over the last ``window`` seconds.  Old timestamps are
    pruned lazily per key, so memory stays proportional to live traffic.
    """

    def __init__(self, window: float = 3600.0):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._events: Dict[K, Deque[float]] = {}

    def record(self, key: K, now: float) -> None:
        """Log one arrival for ``key`` at time ``now``."""
        queue = self._events.get(key)
        if queue is None:
            queue = deque()
            self._events[key] = queue
        queue.append(now)
        self._prune(queue, now)

    def _prune(self, queue: Deque[float], now: float) -> None:
        horizon = now - self.window
        while queue and queue[0] <= horizon:
            queue.popleft()

    def count(self, key: K, now: float) -> int:
        """Arrivals for ``key`` within the window ending at ``now``."""
        queue = self._events.get(key)
        if queue is None:
            return 0
        self._prune(queue, now)
        if not queue:
            del self._events[key]
            return 0
        return len(queue)

    def rate(self, key: K, now: float) -> float:
        """Events per second over the window."""
        return self.count(key, now) / self.window

    def keys(self) -> Tuple[K, ...]:
        """Keys with live state."""
        return tuple(self._events.keys())

    def forget(self, key: K) -> None:
        """Drop all state for ``key``."""
        self._events.pop(key, None)

    def __len__(self) -> int:
        return len(self._events)


class EwmaRate(Generic[K]):
    """Exponentially-weighted per-key rate estimator.

    Each arrival updates an instantaneous-rate estimate with smoothing
    factor derived from the gap: classic TCP-style EWMA adapted to point
    processes.  Constant memory per key; used by the rate-estimation
    ablation bench.
    """

    def __init__(self, half_life: float = 600.0):
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        self._state: Dict[K, Tuple[float, float]] = {}  # key -> (rate, last_t)

    def record(self, key: K, now: float) -> None:
        """Log one arrival for ``key`` at time ``now``."""
        state = self._state.get(key)
        if state is None:
            # First arrival: seed with one event per half-life.
            self._state[key] = (1.0 / self.half_life, now)
            return
        rate, last_t = state
        gap = max(now - last_t, 1e-9)
        decay = math.exp(-gap * math.log(2.0) / self.half_life)
        instantaneous = 1.0 / gap
        self._state[key] = (decay * rate + (1.0 - decay) * instantaneous, now)

    def rate(self, key: K, now: float) -> float:
        """Estimated arrivals per second for ``key`` at ``now``."""
        state = self._state.get(key)
        if state is None:
            return 0.0
        rate, last_t = state
        gap = max(now - last_t, 0.0)
        return rate * math.exp(-gap * math.log(2.0) / self.half_life)

    def forget(self, key: K) -> None:
        """Drop all state for ``key``."""
        self._state.pop(key, None)

    def __len__(self) -> int:
        return len(self._state)


def rate_to_rrc(rate_per_second: float, scale: float = 1000.0) -> int:
    """Encode a query rate into the 16-bit RRC wire field.

    The RRC carries milliqueries/second by default (``scale=1000``), which
    spans 0.001 q/s to 65 q/s — the range local nameservers exhibit in the
    traces — without losing the low end to quantization.
    """
    return max(0, min(0xFFFF, round(rate_per_second * scale)))


def rrc_to_rate(rrc: int, scale: float = 1000.0) -> float:
    """Decode an RRC field back into queries/second."""
    return rrc / scale
