"""The local DNS nameserver: recursive resolution + cache + DNScup client.

This is the paper's "DNS cache" — the local nameserver whose clients are
tightly coupled with some Internet server.  It answers client stub queries
on port 53, resolves iteratively from the root hints, caches with TTLs
(weak consistency, the baseline), and — when ``dnscup_enabled`` — speaks
the DNScup extensions:

* outgoing iterative queries carry the RRC field with the locally
  observed client query rate for that record;
* a response granting a lease (LLT field) pins the cache entry as
  *coherent* until the lease expires;
* incoming CACHE-UPDATE messages (opcode 6) from authoritative servers
  overwrite the cached RRset in place and are acknowledged (paper
  Figure 3, steps 3–4).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from ..dnslib import (
    MAX_UDP_PAYLOAD,
    Keyring,
    Message,
    Name,
    Opcode,
    Question,
    Rcode,
    ResourceRecord,
    RRType,
    SOA,
    TsigError,
    Verifier,
    WireFormatError,
    make_cache_update_ack,
    make_query,
    make_response,
    records_to_rrsets,
    sign,
    split_signed,
    truncate_response,
)
from ..net import Endpoint, Host, RetryPolicy, Socket
from .cache import ResolverCache
from .rates import WindowedRate, rate_to_rrc

#: Terminal callback: (records, rcode).  Records empty on failure.
ResolveCallback = Callable[[List[ResourceRecord], Rcode], None]

MAX_CNAME_DEPTH = 8
MAX_REFERRALS = 16
MAX_GLUELESS_DEPTH = 3
DEFAULT_NEGATIVE_TTL = 300


@dataclasses.dataclass
class ResolverStats:
    """Counters exposed for tests, benchmarks and operators."""
    client_queries: int = 0
    cache_answers: int = 0
    upstream_queries: int = 0
    resolutions_completed: int = 0
    resolutions_failed: int = 0
    leases_received: int = 0
    cache_updates_received: int = 0
    cache_updates_acked: int = 0
    cache_updates_ignored: int = 0
    #: §5.3 secure mode: signature failures / unsigned-but-required drops.
    tsig_failures: int = 0
    tsig_rejected_unsigned: int = 0
    #: Truncated UDP responses retried over the reliable-stream path.
    tcp_fallbacks: int = 0


@dataclasses.dataclass
class LeaseGrantInfo:
    """What the resolver remembers about one granted lease."""

    origin: Endpoint        # the authoritative server that granted it
    granted_at: float
    llt: float              # granted lease length, seconds
    rate_at_grant: float    # local query rate reported at grant time


class RecursiveResolver:
    """A caching local nameserver with optional DNScup support."""

    def __init__(self, host: Host, root_hints: List[Endpoint],
                 cache: Optional[ResolverCache] = None,
                 dnscup_enabled: bool = False,
                 rrc_window: float = 3600.0,
                 retry: Optional[RetryPolicy] = None,
                 tsig_keyring: Optional[Keyring] = None,
                 tsig_require: bool = False,
                 edns_payload: Optional[int] = None):
        if not root_hints:
            raise ValueError("resolver needs at least one root hint")
        if edns_payload is not None and edns_payload < 512:
            raise ValueError("EDNS payload below the RFC 6891 floor")
        if tsig_require and tsig_keyring is None:
            raise ValueError("tsig_require needs a keyring")
        self.host = host
        self.root_hints = list(root_hints)
        self.cache = cache or ResolverCache()
        self.dnscup_enabled = dnscup_enabled
        self.retry = retry or RetryPolicy()
        #: §5.3 secure mode: verify CACHE-UPDATE signatures against this
        #: keyring; with ``tsig_require`` unsigned pushes are dropped.
        self.tsig_keyring = tsig_keyring
        self.tsig_require = tsig_require
        self._tsig_verifier = (Verifier(tsig_keyring)
                               if tsig_keyring is not None else None)
        self.stats = ResolverStats()
        self.rates: WindowedRate = WindowedRate(window=rrc_window)
        #: (name, type) -> grant bookkeeping for renegotiation (§5.1.2).
        self.lease_grants: Dict[Tuple[Name, RRType], "LeaseGrantInfo"] = {}
        #: Smoothed per-server RTT, BIND-style: fastest server first.
        self.server_rtts: Dict[Endpoint, float] = {}
        #: EDNS0: payload size advertised on upstream queries (None =
        #: classic 512-byte DNS).
        self.edns_payload = edns_payload
        self.service_socket: Socket = host.dns_socket()
        self.service_socket.on_receive(self._handle_datagram)
        self.service_socket.on_receive_stream(self._handle_stream_datagram)
        self.upstream_socket: Socket = host.socket()

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self.host.simulator.now

    # -- client-facing service ------------------------------------------------

    def _handle_datagram(self, payload: bytes, src: Endpoint,
                         dst: Endpoint) -> None:
        signed_with: Optional[Name] = None
        try:
            stripped, tsig_fields = split_signed(payload)
        except TsigError:
            # Magic bytes occurred inside an ordinary message: not TSIG.
            stripped, tsig_fields = payload, None
        if tsig_fields is not None:
            if self._tsig_verifier is None:
                return  # signed message on an unsigned resolver: drop
            try:
                stripped = self._tsig_verifier.verify(payload, self.now)
            except TsigError:
                self.stats.tsig_failures += 1
                return
            signed_with = tsig_fields["key_name"]
        payload = stripped
        try:
            message = Message.from_wire(payload)
        except (WireFormatError, ValueError):
            return
        if message.opcode == Opcode.CACHE_UPDATE and not message.is_response:
            if self.tsig_require and signed_with is None:
                self.stats.tsig_rejected_unsigned += 1
                return  # no ack: the pusher will retry and give up
            self._handle_cache_update(message, src, signed_with)
            return
        if message.is_response or message.opcode != Opcode.QUERY:
            return
        self._serve_client(message, src, stream=False)

    def _handle_stream_datagram(self, payload: bytes, src: Endpoint,
                                dst: Endpoint) -> None:
        """Client queries retried over the stream path after truncation."""
        try:
            message = Message.from_wire(payload)
        except (WireFormatError, ValueError):
            return
        if message.is_response or message.opcode != Opcode.QUERY:
            return
        self._serve_client(message, src, stream=True)

    def _serve_client(self, message: Message, src: Endpoint,
                      stream: bool) -> None:
        if len(message.question) != 1:
            response = make_response(message, Rcode.FORMERR)
            self.service_socket.send(response.to_wire(), src)
            return
        question = message.question[0]

        def deliver(records: List[ResourceRecord], rcode: Rcode) -> None:
            response = make_response(message, rcode)
            response.recursion_available = True
            response.answer.extend(records)
            wire = response.to_wire()
            if stream:
                self.service_socket.send_stream(wire, src)
                return
            if len(wire) > MAX_UDP_PAYLOAD:
                wire = truncate_response(response).to_wire()
            self.service_socket.send(wire, src)

        self.stats.client_queries += 1
        self.resolve(question.name, question.rrtype, deliver)

    # -- public resolution API ------------------------------------------------------

    def resolve(self, name, rrtype: RRType, callback: ResolveCallback) -> None:
        """Resolve ``name``/``rrtype``, from cache or iteratively."""
        question = Question(name, rrtype)
        self.rates.record(question.key()[:2], self.now)
        cached = self._answer_from_cache(question.name, rrtype)
        if cached is not None:
            records, rcode = cached
            self.stats.cache_answers += 1
            callback(records, rcode)
            return
        task = _ResolutionTask(self, question, callback)
        task.start()

    def _answer_from_cache(self, name: Name, rrtype: RRType
                           ) -> Optional[Tuple[List[ResourceRecord], Rcode]]:
        """Follow cached CNAMEs to a cached terminal answer, else None."""
        records: List[ResourceRecord] = []
        qname = name
        for _ in range(MAX_CNAME_DEPTH):
            entry = self.cache.get(qname, rrtype, self.now)
            if entry is not None:
                if entry.negative:
                    return records, Rcode.NXDOMAIN if not records else Rcode.NOERROR
                records.extend(self._ttl_adjusted(entry))
                return records, Rcode.NOERROR
            if rrtype != RRType.CNAME:
                cname_entry = self.cache.get(qname, RRType.CNAME, self.now)
                if cname_entry is not None and not cname_entry.negative:
                    records.extend(self._ttl_adjusted(cname_entry))
                    qname = cname_entry.rrset.rdatas[0].target  # type: ignore
                    continue
            return None
        return None

    def _ttl_adjusted(self, entry) -> List[ResourceRecord]:
        remaining = entry.remaining_ttl(self.now)
        if remaining <= 0 and entry.has_lease(self.now):
            remaining = 1  # coherent-by-lease; keep clients from caching long
        return [ResourceRecord(r.name, r.rrtype, remaining, r.rdata, r.rrclass)
                for r in entry.rrset.to_records()]

    # -- DNScup: CACHE-UPDATE handling -------------------------------------------------

    def _handle_cache_update(self, message: Message, src: Endpoint,
                             signed_with: Optional[Name] = None) -> None:
        self.stats.cache_updates_received += 1
        applied_any = False
        for rrset in records_to_rrsets(message.answer):
            if self.cache.apply_cache_update(rrset, self.now):
                applied_any = True
        if not message.answer and message.question:
            # An empty-answer update is a deletion push: the record named
            # in the question no longer exists — drop the cached copy so
            # the next lookup refetches (and learns the NXDOMAIN).
            question = message.question[0]
            if self.cache.remove(question.name, question.rrtype):
                applied_any = True
        if applied_any:
            self.stats.cache_updates_acked += 1
        else:
            self.stats.cache_updates_ignored += 1
        # Acknowledge regardless: the server needs to stop retransmitting.
        # On a signed exchange the ack is signed with the same key.
        ack_wire = make_cache_update_ack(message).to_wire()
        if signed_with is not None and self.tsig_keyring is not None:
            key = self.tsig_keyring.get(signed_with)
            if key is not None:
                ack_wire = sign(ack_wire, key, self.now)
        self.service_socket.send(ack_wire, src)

    # -- cache insertion used by resolution tasks ----------------------------------------

    def _store_answer(self, question: Question, response: Message,
                      server: Endpoint) -> None:
        llt = response.llt if self.dnscup_enabled else None
        for rrset in records_to_rrsets(response.answer):
            lease_until = None
            if llt and rrset.name == question.name and rrset.rrtype == question.rrtype:
                lease_until = self.now + llt
                key = (rrset.name, rrset.rrtype)
                self.lease_grants[key] = LeaseGrantInfo(
                    origin=server, granted_at=self.now, llt=float(llt),
                    rate_at_grant=self.rates.rate(key, self.now))
                self.stats.leases_received += 1
            self.cache.put(rrset, self.now, lease_until=lease_until)

    def _store_negative(self, question: Question, response: Message) -> None:
        ttl = DEFAULT_NEGATIVE_TTL
        for record in response.authority:
            if record.rrtype == RRType.SOA and isinstance(record.rdata, SOA):
                ttl = min(record.ttl, record.rdata.minimum)
                break
        self.cache.put_negative(question.name, question.rrtype, ttl, self.now)

    def _rrc_for(self, question: Question) -> Optional[int]:
        if not self.dnscup_enabled:
            return None
        rate = self.rates.rate(question.key()[:2], self.now)
        return rate_to_rrc(rate)

    # -- server selection (smoothed RTT, as BIND does) -----------------------------------

    #: Exponential smoothing factor for RTT samples.
    RTT_SMOOTHING = 0.3
    #: Penalty floor applied when a server times out.
    RTT_TIMEOUT_FLOOR = 0.5

    def order_servers(self, servers: List[Endpoint]) -> List[Endpoint]:
        """Fastest-first ordering; unknown servers sort first so they
        get probed (optimistic exploration, like a fresh BIND cache)."""
        return sorted(servers, key=lambda s: self.server_rtts.get(s, -1.0))

    def record_rtt(self, server: Endpoint, rtt: float) -> None:
        """Fold one RTT sample into the server's smoothed estimate."""
        old = self.server_rtts.get(server)
        if old is None or old < 0:
            self.server_rtts[server] = rtt
        else:
            self.server_rtts[server] = \
                (1 - self.RTT_SMOOTHING) * old + self.RTT_SMOOTHING * rtt

    def record_timeout(self, server: Endpoint) -> None:
        """Push a dead-looking server to the back of the ordering."""
        old = self.server_rtts.get(server, self.RTT_TIMEOUT_FLOOR)
        self.server_rtts[server] = max(old, self.RTT_TIMEOUT_FLOOR) * 2


class _ResolutionTask:
    """One iterative resolution, written in continuation style."""

    def __init__(self, resolver: RecursiveResolver, question: Question,
                 callback: ResolveCallback, depth: int = 0):
        self.resolver = resolver
        self.question = question
        self.callback = callback
        self.depth = depth
        self.servers: List[Endpoint] = resolver.order_servers(
            list(resolver.root_hints))
        self.server_index = 0
        self.referrals = 0
        self.collected: List[ResourceRecord] = []

    # -- driving ----------------------------------------------------------------

    def start(self) -> None:
        """Begin the resolution by querying the first server."""
        self._query_next_server()

    def _fail(self, rcode: Rcode = Rcode.SERVFAIL) -> None:
        self.resolver.stats.resolutions_failed += 1
        self.callback(list(self.collected), rcode)

    def _succeed(self, rcode: Rcode = Rcode.NOERROR) -> None:
        self.resolver.stats.resolutions_completed += 1
        self.callback(list(self.collected), rcode)

    def _query_next_server(self) -> None:
        if self.server_index >= len(self.servers):
            self._fail()
            return
        server = self.servers[self.server_index]
        self.server_index += 1
        rrc = self.resolver._rrc_for(self.question)
        query = make_query(self.question.name, self.question.rrtype,
                           recursion_desired=False, rrc=rrc)
        query.edns_payload_size = self.resolver.edns_payload
        self.resolver.stats.upstream_queries += 1
        sent_at = self.resolver.now
        self.resolver.upstream_socket.request(
            query.to_wire(), server, query.id,
            lambda payload, src, s=server, t=sent_at:
            self._on_timed_response(payload, src, s, t),
            retry=self.resolver.retry)

    def _on_timed_response(self, payload: Optional[bytes],
                           src: Optional[Endpoint], server: Endpoint,
                           sent_at: float) -> None:
        if payload is None:
            self.resolver.record_timeout(server)
        else:
            self.resolver.record_rtt(server, self.resolver.now - sent_at)
        self._on_response(payload, src, server)

    # -- response classification ---------------------------------------------------

    def _on_response(self, payload: Optional[bytes], src: Optional[Endpoint],
                     server: Endpoint, via_stream: bool = False) -> None:
        if payload is None:
            self._query_next_server()
            return
        try:
            response = Message.from_wire(payload)
        except (WireFormatError, ValueError):
            self._query_next_server()
            return
        if response.truncated and not via_stream:
            # RFC 1035: the UDP answer did not fit — retry over the
            # reliable-stream (TCP) path against the same server.
            self.resolver.stats.tcp_fallbacks += 1
            retry = make_query(self.question.name, self.question.rrtype,
                               recursion_desired=False,
                               rrc=self.resolver._rrc_for(self.question))
            self.resolver.upstream_socket.request_stream(
                retry.to_wire(), server, retry.id,
                lambda p, s: self._on_response(p, s, server,
                                               via_stream=True))
            return
        if response.rcode == Rcode.NXDOMAIN:
            self.resolver._store_negative(self.question, response)
            self.collected.extend(response.answer)
            self._succeed(Rcode.NXDOMAIN)
            return
        if response.rcode != Rcode.NOERROR:
            self._query_next_server()
            return
        if response.answer:
            self._on_answer(response, server)
            return
        ns_records = [r for r in response.authority if r.rrtype == RRType.NS]
        if ns_records and not response.authoritative:
            self._on_referral(response, ns_records)
            return
        # Authoritative empty answer: NODATA.
        self.resolver._store_negative(self.question, response)
        self._succeed(Rcode.NOERROR)

    def _on_answer(self, response: Message, server: Endpoint) -> None:
        self.resolver._store_answer(self.question, response, server)
        self.collected.extend(response.answer)
        final = any(r.rrtype == self.question.rrtype and r.name == self.question.name
                    for r in response.answer)
        if final or self.question.rrtype == RRType.CNAME:
            self._succeed()
            return
        cnames = [r for r in response.answer
                  if r.rrtype == RRType.CNAME]
        if not cnames:
            self._succeed()
            return
        target = self._chase_cname_target(cnames)
        if target is None:
            # The chain's terminal record arrived in this same answer
            # (the server followed the CNAME for us): we are done.
            self._succeed()
            return
        if self.depth + 1 >= MAX_CNAME_DEPTH:
            self._fail()
            return
        # The answer ended in a CNAME pointing outside this server's zones:
        # restart resolution for the target, accumulating records.
        sub = _ResolutionTask(
            self.resolver,
            Question(target, self.question.rrtype),
            self._on_cname_resolved,
            depth=self.depth + 1)
        sub.start()

    def _chase_cname_target(self, cnames: List[ResourceRecord]) -> Optional[Name]:
        """Follow the CNAME chain in this answer to its last target."""
        mapping = {r.name: r.rdata.target for r in cnames}  # type: ignore[attr-defined]
        target = self.question.name
        for _ in range(len(mapping) + 1):
            if target not in mapping:
                break
            target = mapping[target]
        answered = {(r.name, r.rrtype) for r in self.collected}
        if (target, self.question.rrtype) in answered:
            return None
        return target

    def _on_cname_resolved(self, records: List[ResourceRecord],
                           rcode: Rcode) -> None:
        self.collected.extend(records)
        if rcode == Rcode.NOERROR and records:
            self._succeed()
        else:
            self._fail(rcode if rcode != Rcode.NOERROR else Rcode.SERVFAIL)

    # -- referrals -----------------------------------------------------------------

    def _on_referral(self, response: Message, ns_records: List[ResourceRecord]) -> None:
        self.referrals += 1
        if self.referrals > MAX_REFERRALS:
            self._fail()
            return
        glue: Dict[Name, str] = {}
        for record in response.additional:
            if record.rrtype == RRType.A:
                glue[record.name] = record.rdata.address  # type: ignore[attr-defined]
        addresses = [glue[r.rdata.target] for r in ns_records  # type: ignore[attr-defined]
                     if r.rdata.target in glue]
        if addresses:
            self.servers = self.resolver.order_servers(
                [(addr, 53) for addr in addresses])
            self.server_index = 0
            self._query_next_server()
            return
        # Glueless delegation: resolve the first NS target's address.
        if self.depth + 1 > MAX_GLUELESS_DEPTH:
            self._fail()
            return
        ns_name = ns_records[0].rdata.target  # type: ignore[attr-defined]
        sub = _ResolutionTask(self.resolver, Question(ns_name, RRType.A),
                              self._on_glue_resolved, depth=self.depth + 1)
        sub.start()

    def _on_glue_resolved(self, records: List[ResourceRecord],
                          rcode: Rcode) -> None:
        addresses = [r.rdata.address for r in records  # type: ignore[attr-defined]
                     if r.rrtype == RRType.A]
        if rcode != Rcode.NOERROR or not addresses:
            self._fail()
            return
        self.servers = self.resolver.order_servers(
            [(addr, 53) for addr in addresses])
        self.server_index = 0
        self._query_next_server()
