"""The authoritative nameserver.

Serves one or more zones over the simulated network: answers, referrals,
NXDOMAIN/NODATA with negative-caching SOAs, CNAME following within a
zone, RFC 2136 UPDATE processing (masters only), and NOTIFY fan-out to
slaves after every committed change.

DNScup attaches through two hook points kept deliberately narrow so the
base server stays protocol-pure (the paper's "unchanged named modules",
Figure 6):

* ``query_hooks`` — called with (query, source, response) after a
  response is built and before it is sent; the listening module reads
  the RRC field here and may grant a lease by setting ``response.llt``;
* ``Zone.add_change_listener`` — the detection module subscribes to the
  zones directly.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from ..dnslib import (
    MAX_UDP_PAYLOAD,
    Message,
    Name,
    Opcode,
    Question,
    Rcode,
    ResourceRecord,
    RRType,
    WireFormatError,
    make_notify,
    make_response,
    truncate_response,
)
from ..net import Endpoint, Host, RetryPolicy, Socket
from ..zone import UpdateProcessor, Zone, ZoneMaster, ZoneSlave
from .cache import ResolverCache  # noqa: F401  (re-exported for convenience)

QueryHook = Callable[[Message, Endpoint, Message], None]

#: How many CNAME links a single answer may follow inside one zone.
MAX_CNAME_CHAIN = 8

#: The payload size this server advertises and honours for EDNS0 peers
#: (RFC 6891 deployments commonly use 1232-4096; we pick 4096).
EDNS_SERVER_PAYLOAD = 4096


@dataclasses.dataclass
class ServerStats:
    """Counters exposed for tests, benchmarks and operators."""
    queries: int = 0
    answers: int = 0
    referrals: int = 0
    nxdomains: int = 0
    nodatas: int = 0
    updates: int = 0
    updates_rejected: int = 0
    notifies_sent: int = 0
    malformed: int = 0
    #: UDP responses truncated to the 512-byte limit (TC bit set).
    truncated: int = 0
    #: Queries answered over the reliable-stream (TCP) path.
    stream_queries: int = 0


class AuthoritativeServer:
    """An authoritative DNS server bound to a host's port 53."""

    def __init__(self, host: Host, zones: Optional[List[Zone]] = None,
                 rotate_answers: bool = False):
        self.host = host
        self.socket: Socket = host.dns_socket()
        self.socket.on_receive(self._handle_datagram)
        self.socket.on_receive_stream(self._handle_stream)
        self.stats = ServerStats()
        self.query_hooks: List[QueryHook] = []
        self._zones: Dict[Name, Zone] = {}
        self._masters: Dict[Name, ZoneMaster] = {}
        self._slaves: Dict[Name, List[Tuple[Endpoint, ZoneSlave]]] = {}
        self.allow_updates = True
        #: Round-robin answer rotation (BIND's cyclic rrset-order): each
        #: answer for a multi-address RRset starts at the next address.
        self.rotate_answers = rotate_answers
        self._rotation_counters: Dict[Tuple[Name, RRType], int] = {}
        for zone in zones or []:
            self.add_zone(zone)

    # -- zone management -----------------------------------------------------

    def add_zone(self, zone: Zone, master: bool = True) -> None:
        """Serve ``zone``; masters get transfer and change tracking."""
        if zone.origin in self._zones:
            raise ValueError(f"zone already served: {zone.origin}")
        self._zones[zone.origin] = zone
        if master:
            self._masters[zone.origin] = ZoneMaster(zone)
            zone.add_change_listener(self._on_zone_change)

    def zone_for(self, name: Name) -> Optional[Zone]:
        """The closest enclosing zone this server is authoritative for."""
        best: Optional[Zone] = None
        for origin, zone in self._zones.items():
            if name.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    @property
    def zones(self) -> List[Zone]:
        """Every zone this server is configured with."""
        return list(self._zones.values())

    def master_for(self, origin: Name) -> Optional[ZoneMaster]:
        """The transfer master for ``origin``, when we are one."""
        return self._masters.get(origin)

    # -- replication -------------------------------------------------------------

    def register_slave(self, origin: Name, endpoint: Endpoint,
                       slave: ZoneSlave) -> None:
        """Declare a slave server for NOTIFY fan-out.

        The ``slave`` handle applies transfers out-of-band (AXFR runs over
        TCP in real deployments; we model the data path directly and the
        trigger path — NOTIFY over UDP — on the wire).
        """
        if origin not in self._masters:
            raise ValueError(f"not a master for {origin}")
        self._slaves.setdefault(origin, []).append((endpoint, slave))

    def _on_zone_change(self, zone: Zone, changes) -> None:
        for endpoint, _slave in self._slaves.get(zone.origin, []):
            notify = make_notify(zone.origin)
            self.stats.notifies_sent += 1
            self.socket.request(notify.to_wire(), endpoint, notify.id,
                                self._ignore_response,
                                retry=RetryPolicy(max_attempts=3))

    @staticmethod
    def _ignore_response(payload, src) -> None:
        return None

    # -- datagram dispatch ----------------------------------------------------------

    def _handle_datagram(self, payload: bytes, src: Endpoint,
                         dst: Endpoint) -> None:
        processed = self._process(payload, src)
        if processed is None:
            return
        request, response = processed
        # EDNS0: honour the client's advertised payload size (capped by
        # our own) and advertise ours back; classic clients get 512.
        limit = MAX_UDP_PAYLOAD
        if request.edns_payload_size is not None:
            limit = min(request.edns_payload_size, EDNS_SERVER_PAYLOAD)
            limit = max(limit, MAX_UDP_PAYLOAD)  # RFC 6891 floor
            response.edns_payload_size = EDNS_SERVER_PAYLOAD
        wire = response.to_wire()
        if len(wire) > limit:
            # RFC 1035 §4.2.1: truncate to the header+question and set
            # TC; the client retries over the reliable-stream path.
            wire = truncate_response(response).to_wire()
            self.stats.truncated += 1
        self.socket.send(wire, src)

    def _handle_stream(self, payload: bytes, src: Endpoint,
                       dst: Endpoint) -> None:
        self.stats.stream_queries += 1
        processed = self._process(payload, src)
        if processed is not None:
            self.socket.send_stream(processed[1].to_wire(), src)

    def _process(self, payload: bytes, src: Endpoint
                 ) -> Optional[Tuple[Message, Message]]:
        try:
            message = Message.from_wire(payload)
        except (WireFormatError, ValueError):
            self.stats.malformed += 1
            return None
        if message.is_response:
            return None  # unmatched response: stale retransmission, drop
        if message.opcode == Opcode.QUERY:
            return message, self.handle_query(message, src)
        if message.opcode == Opcode.UPDATE:
            return message, self.handle_update(message, src)
        if message.opcode == Opcode.NOTIFY:
            return message, self.handle_notify(message, src)
        return message, make_response(message, Rcode.NOTIMP)

    # -- QUERY ----------------------------------------------------------------------

    def handle_query(self, query: Message, src: Endpoint) -> Message:
        """Answer one QUERY message (RFC 1034 resolution logic)."""
        self.stats.queries += 1
        if len(query.question) != 1:
            return make_response(query, Rcode.FORMERR)
        question = query.question[0]
        zone = self.zone_for(question.name)
        if zone is None:
            return make_response(query, Rcode.REFUSED)
        response = self._answer_from_zone(zone, query, question)
        for hook in self.query_hooks:
            hook(query, src, response)
        return response

    def _answer_from_zone(self, zone: Zone, query: Message,
                          question: Question) -> Message:
        delegation = zone.find_delegation(question.name)
        if delegation is not None:
            return self._referral(zone, query, delegation)
        response = make_response(query)
        response.authoritative = True
        qname = question.name
        for _ in range(MAX_CNAME_CHAIN):
            rrset = zone.get_rrset(qname, question.rrtype)
            if rrset is None and not zone.has_name(qname):
                rrset = self._wildcard_match(zone, qname, question.rrtype)
            if rrset is not None:
                response.answer.extend(
                    self._rotated_records(qname, question.rrtype, rrset))
                self.stats.answers += 1
                self._add_glue_for_answer(zone, rrset, response)
                return response
            cname = zone.get_rrset(qname, RRType.CNAME)
            if cname is not None and question.rrtype != RRType.CNAME:
                response.answer.extend(cname.to_records())
                target = cname.rdatas[0].target  # type: ignore[attr-defined]
                if not zone.contains_name(target):
                    self.stats.answers += 1
                    return response
                qname = target
                continue
            break
        soa_rrset = zone.get_rrset(zone.origin, RRType.SOA)
        if soa_rrset is not None:
            response.authority.extend(soa_rrset.to_records())
        if zone.has_name(qname):
            self.stats.nodatas += 1
            response.rcode = Rcode.NOERROR
        else:
            self.stats.nxdomains += 1
            response.rcode = Rcode.NXDOMAIN
        return response

    def _wildcard_match(self, zone: Zone, qname: Name, rrtype: RRType):
        """RFC 1034 §4.3.3 wildcard synthesis.

        When ``qname`` does not exist, the closest-encloser's ``*``
        child (if any) answers for it, with records rewritten to the
        query name.  A wildcard never matches a name that exists.
        """
        if not zone.contains_name(qname) or qname == zone.origin:
            return None
        for ancestor in qname.parent().ancestors():
            wildcard = zone.get_rrset(ancestor.child("*"), rrtype)
            if wildcard is not None:
                from ..dnslib import RRSet
                return RRSet(qname, rrtype, wildcard.ttl, wildcard.rdatas,
                             wildcard.rrclass)
            if zone.has_name(ancestor) or ancestor == zone.origin:
                # Closest encloser reached without a wildcard: stop.
                return None
        return None

    def _rotated_records(self, qname: Name, rrtype: RRType, rrset):
        records = rrset.to_records()
        if self.rotate_answers and len(records) > 1:
            key = (qname, rrtype)
            offset = self._rotation_counters.get(key, 0) % len(records)
            self._rotation_counters[key] = offset + 1
            records = records[offset:] + records[:offset]
        return records

    def _referral(self, zone: Zone, query: Message, delegation) -> Message:
        response = make_response(query)
        response.authoritative = False
        response.authority.extend(delegation.to_records())
        for rdata in delegation.rdatas:
            target = rdata.target
            if zone.contains_name(target):
                glue = zone.get_rrset(target, RRType.A)
                if glue is not None:
                    response.additional.extend(glue.to_records())
        self.stats.referrals += 1
        return response

    def _add_glue_for_answer(self, zone: Zone, rrset, response: Message) -> None:
        if rrset.rrtype != RRType.NS:
            return
        for rdata in rrset.rdatas:
            if zone.contains_name(rdata.target):
                glue = zone.get_rrset(rdata.target, RRType.A)
                if glue is not None:
                    response.additional.extend(glue.to_records())

    # -- UPDATE ------------------------------------------------------------------------

    def handle_update(self, message: Message, src: Endpoint) -> Message:
        """Process one RFC 2136 UPDATE message."""
        self.stats.updates += 1
        if not self.allow_updates:
            self.stats.updates_rejected += 1
            return make_response(message, Rcode.REFUSED)
        if len(message.zone) != 1:
            return make_response(message, Rcode.FORMERR)
        origin = message.zone[0].name
        zone = self._zones.get(origin)
        if zone is None or origin not in self._masters:
            self.stats.updates_rejected += 1
            return make_response(message, Rcode.NOTAUTH)
        return UpdateProcessor(zone).process(message)

    # -- NOTIFY ----------------------------------------------------------------------

    def handle_notify(self, message: Message, src: Endpoint) -> Message:
        """Slaves receiving NOTIFY pull a refresh from their master."""
        response = make_response(message)
        origin = message.question[0].name if message.question else None
        if origin is None:
            response.rcode = Rcode.FORMERR
            return response
        refresher = getattr(self, "_notify_refresher", None)
        if refresher is not None:
            refresher(origin)
        return response

    def set_notify_refresher(self, refresher: Callable[[Name], None]) -> None:
        """Install the slave-side refresh action run on NOTIFY arrival."""
        self._notify_refresher = refresher
