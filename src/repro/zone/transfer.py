"""Zone replication: NOTIFY (RFC 1996) and AXFR/IXFR-style transfer.

The DNS Dynamic Update protocol keeps a zone's primary master and its
slaves strongly consistent (paper §2); DNScup extends that consistency to
caches.  We implement the master/slave half here so the testbed
(paper Figure 7: one master, two slaves) replicates realistically:

* the master offers full transfers (AXFR) and incremental diffs (IXFR)
  keyed by the slave's current serial;
* :class:`ChangeLog` retains per-serial diffs so IXFR can replay them;
* NOTIFY is a small opcode-4 message produced by
  :func:`repro.dnslib.make_notify`; slaves respond by checking serials
  and pulling a transfer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dnslib import Name, RRSet, RRType
from .serial import serial_gt
from .zone import Zone, ZoneChange, diff_snapshots


class TransferError(RuntimeError):
    """Raised when a transfer cannot be served (unknown serial, etc.)."""


class ChangeLog:
    """Bounded per-zone history of committed diffs, indexed by serial.

    Entry ``log[s]`` holds the changes that moved the zone *from* serial
    ``s`` to its successor.  IXFR from serial ``s`` replays entries until
    the head.  The log keeps at most ``capacity`` entries; older diffs are
    dropped and transfers from pre-history fall back to AXFR.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self._entries: Dict[int, Tuple[int, List[ZoneChange]]] = {}
        self._order: List[int] = []

    def record(self, from_serial: int, to_serial: int,
               changes: List[ZoneChange]) -> None:
        """Log one arrival for ``key`` at time ``now``."""
        self._entries[from_serial] = (to_serial, list(changes))
        self._order.append(from_serial)
        while len(self._order) > self.capacity:
            dropped = self._order.pop(0)
            self._entries.pop(dropped, None)

    def replay_from(self, serial: int) -> Optional[List[ZoneChange]]:
        """All changes from ``serial`` to the head, or None if unavailable."""
        if serial not in self._entries:
            return None
        changes: List[ZoneChange] = []
        cursor = serial
        seen = set()
        while cursor in self._entries:
            if cursor in seen:
                raise TransferError("serial cycle in change log")
            seen.add(cursor)
            to_serial, delta = self._entries[cursor]
            changes.extend(delta)
            cursor = to_serial
        return changes

    def __len__(self) -> int:
        return len(self._entries)


class ZoneMaster:
    """The transfer-serving side attached to a master's zone."""

    def __init__(self, zone: Zone, log_capacity: int = 1024):
        self.zone = zone
        self.changelog = ChangeLog(log_capacity)
        self._last_serial = zone.serial
        zone.add_change_listener(self._on_change)

    def _on_change(self, zone: Zone, changes: List[ZoneChange]) -> None:
        new_serial = zone.serial
        self.changelog.record(self._last_serial, new_serial, changes)
        self._last_serial = new_serial

    # -- serving -----------------------------------------------------------

    def serve_axfr(self) -> Tuple[int, List[RRSet]]:
        """Full zone contents with the serial they correspond to."""
        return self.zone.serial, [rrset.copy() for rrset in self.zone.iter_rrsets()]

    def serve_ixfr(self, from_serial: int) -> Tuple[int, Optional[List[ZoneChange]]]:
        """Incremental changes since ``from_serial``.

        Returns ``(current_serial, changes)``; ``changes`` is None when the
        log no longer covers ``from_serial`` (caller falls back to AXFR) or
        when the slave is already current (empty list).
        """
        current = self.zone.serial
        if from_serial == current:
            return current, []
        if serial_gt(from_serial, current):
            # The slave claims to be ahead of us; treat as out of sync.
            return current, None
        return current, self.changelog.replay_from(from_serial)


class ZoneSlave:
    """A slave replica that applies AXFR/IXFR payloads to its local copy."""

    def __init__(self, zone: Zone):
        self.zone = zone
        self.transfers_full = 0
        self.transfers_incremental = 0

    @property
    def serial(self) -> int:
        """The zone's current SOA serial."""
        return self.zone.serial

    def needs_refresh(self, master_serial: int) -> bool:
        """True when the master's serial is ahead of ours."""
        return serial_gt(master_serial, self.zone.serial)

    def apply_axfr(self, serial: int, rrsets: List[RRSet]) -> None:
        """Replace the whole local zone with the master's contents."""
        with self.zone.bulk_update(bump_serial=False):
            for name in list(self.zone.names()):
                for rrset in self.zone.rrsets_at(name):
                    if rrset.rrtype == RRType.SOA and name == self.zone.origin:
                        continue
                    self.zone.delete_rrset(name, rrset.rrtype)
            for rrset in rrsets:
                self.zone.put_rrset(rrset)
        self.zone.set_serial(serial)
        self.transfers_full += 1

    def apply_ixfr(self, serial: int, changes: List[ZoneChange]) -> None:
        """Apply an incremental diff in order, then adopt ``serial``."""
        with self.zone.bulk_update(bump_serial=False):
            for name, rrtype, _old, new in changes:
                if new is None:
                    if not (name == self.zone.origin and rrtype == RRType.SOA):
                        self.zone.delete_rrset(name, rrtype)
                else:
                    self.zone.put_rrset(new)
        self.zone.set_serial(serial)
        self.transfers_incremental += 1

    def refresh_from(self, master: ZoneMaster) -> str:
        """One refresh cycle; returns 'current', 'ixfr' or 'axfr'."""
        current, changes = master.serve_ixfr(self.zone.serial)
        if changes == []:
            return "current"
        if changes is None:
            serial, rrsets = master.serve_axfr()
            self.apply_axfr(serial, rrsets)
            return "axfr"
        self.apply_ixfr(current, changes)
        return "ixfr"


def zones_equal(a: Zone, b: Zone, ignore_soa: bool = True) -> bool:
    """Content equality of two zones, optionally ignoring SOA serials."""
    changes = diff_snapshots(a.snapshot(), b.snapshot())
    if ignore_soa:
        changes = [c for c in changes if c[1] != RRType.SOA]
    return not changes
