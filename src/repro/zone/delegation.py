"""Delegation consistency and lame-delegation detection.

The paper (§1) notes DNScup's tracking machinery "can also be used to
maintain state consistency between a DNS nameserver of a parent zone and
the DNS nameservers of its child zones, preventing the lame delegation
problem" [Pappas et al., SIGCOMM'04].  This module provides the checking
side: given a parent zone's NS records for a child cut and the child
zones actually served, classify each delegation.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from ..dnslib import Name, RRType
from .zone import Zone


class DelegationStatus(enum.Enum):
    """Outcome of checking one parent NS record against the child."""

    CONSISTENT = "consistent"
    #: Parent lists a nameserver the child zone does not list at its apex.
    PARENT_ONLY = "parent-only"
    #: Child apex lists a nameserver the parent does not delegate to.
    CHILD_ONLY = "child-only"
    #: Parent delegates to a server that does not serve the child at all.
    LAME = "lame"
    #: Parent has a cut but no child zone is known anywhere.
    ORPHAN = "orphan"


@dataclasses.dataclass(frozen=True)
class DelegationReport:
    """Per-cut findings from :func:`check_delegations`."""

    child: Name
    status: DelegationStatus
    parent_ns: Tuple[Name, ...]
    child_ns: Tuple[Name, ...]
    lame_servers: Tuple[Name, ...]

    @property
    def is_lame(self) -> bool:
        """True when the delegation cannot resolve at all."""
        return self.status in (DelegationStatus.LAME, DelegationStatus.ORPHAN)


def delegation_cuts(parent: Zone) -> List[Name]:
    """Owner names of NS RRsets strictly below the parent apex."""
    cuts = []
    for rrset in parent.iter_rrsets():
        if rrset.rrtype == RRType.NS and rrset.name != parent.origin:
            cuts.append(rrset.name)
    return sorted(cuts)


def check_delegations(parent: Zone,
                      children: Dict[Name, Zone],
                      serving: Optional[Dict[Name, List[Name]]] = None
                      ) -> List[DelegationReport]:
    """Audit every delegation in ``parent``.

    ``children`` maps child origin → child zone (the authoritative data).
    ``serving`` optionally maps nameserver name → list of zone origins that
    server actually answers for; when given, a delegation whose target
    server does not serve the child is flagged LAME even if the NS sets
    agree on paper — the classic misconfiguration.
    """
    reports: List[DelegationReport] = []
    for cut in delegation_cuts(parent):
        parent_rrset = parent.get_rrset(cut, RRType.NS)
        assert parent_rrset is not None
        parent_ns = tuple(sorted(rdata.target for rdata in parent_rrset.rdatas))
        child = children.get(cut)
        if child is None:
            reports.append(DelegationReport(cut, DelegationStatus.ORPHAN,
                                            parent_ns, (), parent_ns))
            continue
        child_rrset = child.get_rrset(child.origin, RRType.NS)
        child_ns = tuple(sorted(rdata.target for rdata in child_rrset.rdatas)) \
            if child_rrset else ()
        lame: List[Name] = []
        if serving is not None:
            for server in parent_ns:
                zones_served = serving.get(server, [])
                if cut not in zones_served:
                    lame.append(server)
        if lame and len(lame) == len(parent_ns):
            status = DelegationStatus.LAME
        elif set(parent_ns) - set(child_ns):
            status = DelegationStatus.PARENT_ONLY
        elif set(child_ns) - set(parent_ns):
            status = DelegationStatus.CHILD_ONLY
        else:
            status = DelegationStatus.CONSISTENT
        reports.append(DelegationReport(cut, status, parent_ns, child_ns,
                                        tuple(lame)))
    return reports


def repair_parent(parent: Zone, child: Zone) -> bool:
    """Make the parent's NS cut match the child apex NS set.

    This is the DNScup-style fix: treat the parent's copy as a cache of the
    child's apex NS RRset and push the authoritative value.  Returns True
    when the parent was changed.
    """
    child_rrset = child.get_rrset(child.origin, RRType.NS)
    if child_rrset is None:
        return False
    existing = parent.get_rrset(child.origin, RRType.NS)
    if existing is not None and existing.same_rdatas(child_rrset):
        return False
    updated = child_rrset.copy()
    parent.put_rrset(updated)
    return True
