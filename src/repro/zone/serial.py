"""RFC 1982 serial-number arithmetic for zone SOA serials.

Zone serials are 32-bit sequence numbers that wrap; "greater than" is
defined only within half the number space.  Slaves use this comparison to
decide whether a NOTIFY/refresh indicates new zone content.
"""

from __future__ import annotations

SERIAL_BITS = 32
_MOD = 1 << SERIAL_BITS
_HALF = 1 << (SERIAL_BITS - 1)


def serial_add(serial: int, increment: int) -> int:
    """Add ``increment`` (< 2^31) to ``serial`` modulo 2^32."""
    if not 0 <= increment < _HALF:
        raise ValueError(f"increment out of range [0, 2^31): {increment}")
    return (serial + increment) % _MOD


def serial_gt(a: int, b: int) -> bool:
    """RFC 1982 ``a > b``.

    Undefined comparisons (distance exactly 2^31) return False both ways,
    mirroring the RFC's "incomparable" case.
    """
    a %= _MOD
    b %= _MOD
    return (a < b and b - a > _HALF) or (a > b and a - b < _HALF)


def serial_lt(a: int, b: int) -> bool:
    """RFC 1982 ``a < b``."""
    return serial_gt(b, a)


def serial_max(a: int, b: int) -> int:
    """The later of two serials under RFC 1982 ordering."""
    return a if serial_gt(a, b) or a == b else b
