"""RFC 2136 dynamic update processing.

DNScup is "an external extension to the DNS Dynamic Update protocol"
(paper §2): internal updates keep a zone's master and slaves consistent,
and DNScup extends the same change event outward to leased caches.  This
module implements the server side of UPDATE: prerequisite checking
(§3.2), update-section screening (§3.4.1) and application (§3.4.2),
against a :class:`~repro.zone.zone.Zone`.

Encoding conventions (RFC 2136 §2):

* prerequisite "RRset exists (value independent)": TTL 0, class ANY, empty rdata
* prerequisite "RRset does not exist": TTL 0, class NONE, empty rdata
* prerequisite "name is in use": TTL 0, class ANY, type ANY
* update "add": class = zone class, real TTL and rdata
* update "delete RRset": TTL 0, class ANY, empty rdata
* update "delete all at name": TTL 0, class ANY, type ANY
* update "delete one RR": TTL 0, class NONE, rdata present

Because our in-memory records always carry rdata objects, "empty rdata"
is modelled by the :class:`EmptyRdata` sentinel below.
"""

from __future__ import annotations

from typing import List, Optional

from ..dnslib import (
    Message,
    Name,
    Opcode,
    Question,
    Rcode,
    ResourceRecord,
    RRClass,
    RRSet,
    RRType,
    Rdata,
    make_response,
)
from ..dnslib.rdata import EmptyRdata
from .zone import Zone, ZoneError


def prereq_rrset_exists(name, rrtype: RRType) -> ResourceRecord:
    """Prerequisite: at least one RR of this type exists at ``name``."""
    return ResourceRecord(name, rrtype, 0, EmptyRdata(rrtype), RRClass.ANY)


def prereq_rrset_exists_value(name, rrtype: RRType, ttl_zero_rdata: Rdata) -> ResourceRecord:
    """Prerequisite: the full RRset matches exactly (value dependent)."""
    return ResourceRecord(name, rrtype, 0, ttl_zero_rdata)


def prereq_rrset_absent(name, rrtype: RRType) -> ResourceRecord:
    """RFC 2136 prerequisite: no RRset of this type exists."""
    return ResourceRecord(name, rrtype, 0, EmptyRdata(rrtype), RRClass.NONE)


def prereq_name_in_use(name) -> ResourceRecord:
    """RFC 2136 prerequisite: some record exists at ``name``."""
    return ResourceRecord(name, RRType.ANY, 0, EmptyRdata(RRType.ANY), RRClass.ANY)


def prereq_name_not_in_use(name) -> ResourceRecord:
    """RFC 2136 prerequisite: no record exists at ``name``."""
    return ResourceRecord(name, RRType.ANY, 0, EmptyRdata(RRType.ANY), RRClass.NONE)


def update_add(record: ResourceRecord) -> ResourceRecord:
    """An "add this record" update entry (already in zone class)."""
    return record


def update_delete_rrset(name, rrtype: RRType) -> ResourceRecord:
    """RFC 2136 update: delete the whole RRset."""
    return ResourceRecord(name, rrtype, 0, EmptyRdata(rrtype), RRClass.ANY)


def update_delete_name(name) -> ResourceRecord:
    """RFC 2136 update: delete every RRset at ``name``."""
    return ResourceRecord(name, RRType.ANY, 0, EmptyRdata(RRType.ANY), RRClass.ANY)


def update_delete_record(name, rrtype: RRType, rdata: Rdata) -> ResourceRecord:
    """RFC 2136 update: delete one specific record."""
    return ResourceRecord(name, rrtype, 0, rdata, RRClass.NONE)


class UpdateProcessor:
    """Applies UPDATE messages to a zone with RFC 2136 semantics."""

    def __init__(self, zone: Zone):
        self.zone = zone

    # -- entry point ---------------------------------------------------------

    def process(self, message: Message) -> Message:
        """Validate and apply ``message``; returns the UPDATE response."""
        if message.opcode != Opcode.UPDATE:
            return make_response(message, Rcode.FORMERR)
        rcode = self._screen_zone_section(message)
        if rcode is Rcode.NOERROR:
            rcode = self._check_prerequisites(message.prerequisite)
        if rcode is Rcode.NOERROR:
            rcode = self._screen_updates(message.update)
        if rcode is Rcode.NOERROR:
            rcode = self._apply_updates(message.update)
        return make_response(message, rcode)

    # -- §3.1: zone section ----------------------------------------------------

    def _screen_zone_section(self, message: Message) -> Rcode:
        if len(message.zone) != 1:
            return Rcode.FORMERR
        zone_entry: Question = message.zone[0]
        if zone_entry.rrtype != RRType.SOA:
            return Rcode.FORMERR
        if zone_entry.name != self.zone.origin:
            return Rcode.NOTAUTH
        return Rcode.NOERROR

    # -- §3.2: prerequisites ------------------------------------------------------

    def _check_prerequisites(self, prereqs: List[ResourceRecord]) -> Rcode:
        value_sets: dict = {}
        for record in prereqs:
            if record.ttl != 0:
                return Rcode.FORMERR
            if not record.name.is_subdomain_of(self.zone.origin):
                return Rcode.NOTZONE
            if record.rrclass == RRClass.ANY:
                if not isinstance(record.rdata, EmptyRdata):
                    return Rcode.FORMERR
                if record.rrtype == RRType.ANY:
                    if not self.zone.has_name(record.name):
                        return Rcode.NXDOMAIN
                elif self.zone.get_rrset(record.name, record.rrtype) is None:
                    return Rcode.NXRRSET
            elif record.rrclass == RRClass.NONE:
                if not isinstance(record.rdata, EmptyRdata):
                    return Rcode.FORMERR
                if record.rrtype == RRType.ANY:
                    if self.zone.has_name(record.name):
                        return Rcode.YXDOMAIN
                elif self.zone.get_rrset(record.name, record.rrtype) is not None:
                    return Rcode.YXRRSET
            elif record.rrclass == self.zone.rrclass:
                value_sets.setdefault((record.name, record.rrtype), []).append(record.rdata)
            else:
                return Rcode.FORMERR
        for (name, rrtype), rdatas in value_sets.items():
            existing = self.zone.get_rrset(name, rrtype)
            if existing is None or frozenset(existing.rdatas) != frozenset(rdatas):
                return Rcode.NXRRSET
        return Rcode.NOERROR

    # -- §3.4.1: update screening ----------------------------------------------------

    def _screen_updates(self, updates: List[ResourceRecord]) -> Rcode:
        for record in updates:
            if not record.name.is_subdomain_of(self.zone.origin):
                return Rcode.NOTZONE
            if record.rrclass == self.zone.rrclass:
                if record.rrtype in (RRType.ANY, RRType.AXFR):
                    return Rcode.FORMERR
            elif record.rrclass == RRClass.ANY:
                if record.ttl != 0 or not isinstance(record.rdata, EmptyRdata):
                    return Rcode.FORMERR
            elif record.rrclass == RRClass.NONE:
                if record.ttl != 0 or record.rrtype in (RRType.ANY, RRType.AXFR):
                    return Rcode.FORMERR
            else:
                return Rcode.FORMERR
        return Rcode.NOERROR

    # -- §3.4.2: application ------------------------------------------------------------

    def _apply_updates(self, updates: List[ResourceRecord]) -> Rcode:
        try:
            with self.zone.bulk_update():
                for record in updates:
                    self._apply_one(record)
        except ZoneError:
            return Rcode.SERVFAIL
        return Rcode.NOERROR

    def _apply_one(self, record: ResourceRecord) -> None:
        zone = self.zone
        if record.rrclass == zone.rrclass:
            existing = zone.get_rrset(record.name, record.rrtype)
            if record.rrtype == RRType.SOA:
                # SOA update replaces if serial is newer; handled by put.
                zone.put_rrset(RRSet(record.name, record.rrtype, record.ttl,
                                     [record.rdata], zone.rrclass))
                return
            if record.rrtype == RRType.CNAME and existing is None \
                    and zone.rrsets_at(record.name):
                return  # RFC 2136 §3.4.2.2: silently skip conflicting CNAME add
            if existing is not None and record.rrtype != RRType.CNAME \
                    and any(r.rrtype == RRType.CNAME for r in zone.rrsets_at(record.name)):
                return
            if existing is None:
                zone.put_rrset(RRSet(record.name, record.rrtype, record.ttl,
                                     [record.rdata], zone.rrclass))
            else:
                merged = existing.copy()
                merged.ttl = record.ttl
                merged.add(record.rdata)
                zone.put_rrset(merged)
        elif record.rrclass == RRClass.ANY:
            if record.rrtype == RRType.ANY:
                if record.name == zone.origin:
                    # Apex: delete everything except SOA and NS (RFC 2136).
                    for rrset in zone.rrsets_at(record.name):
                        if rrset.rrtype not in (RRType.SOA, RRType.NS):
                            zone.delete_rrset(record.name, rrset.rrtype)
                else:
                    zone.delete_name(record.name)
            else:
                if record.name == zone.origin and record.rrtype in (RRType.SOA, RRType.NS):
                    return
                zone.delete_rrset(record.name, record.rrtype)
        elif record.rrclass == RRClass.NONE:
            existing = zone.get_rrset(record.name, record.rrtype)
            if existing is None:
                return
            if record.name == zone.origin and record.rrtype == RRType.SOA:
                return
            remaining = [r for r in existing.rdatas if r != record.rdata]
            if record.name == zone.origin and record.rrtype == RRType.NS and not remaining:
                return  # never delete the last apex NS
            if len(remaining) == len(existing):
                return
            if remaining:
                zone.put_rrset(RRSet(record.name, record.rrtype, existing.ttl,
                                     remaining, zone.rrclass))
            else:
                zone.delete_rrset(record.name, record.rrtype)
