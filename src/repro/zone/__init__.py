"""Zone management: stores, master files, dynamic update, replication."""

from .delegation import (
    DelegationReport,
    DelegationStatus,
    check_delegations,
    delegation_cuts,
    repair_parent,
)
from .masterfile import MasterFileError, dump_zone, load_zone, parse_records, parse_ttl
from .serial import serial_add, serial_gt, serial_lt, serial_max
from .transfer import ChangeLog, TransferError, ZoneMaster, ZoneSlave, zones_equal
from .update import (
    EmptyRdata,
    UpdateProcessor,
    prereq_name_in_use,
    prereq_name_not_in_use,
    prereq_rrset_absent,
    prereq_rrset_exists,
    prereq_rrset_exists_value,
    update_add,
    update_delete_name,
    update_delete_record,
    update_delete_rrset,
)
from .zone import Zone, ZoneChange, ZoneError, diff_snapshots

__all__ = [
    "Zone", "ZoneChange", "ZoneError", "diff_snapshots",
    "MasterFileError", "load_zone", "dump_zone", "parse_records", "parse_ttl",
    "serial_add", "serial_gt", "serial_lt", "serial_max",
    "ChangeLog", "TransferError", "ZoneMaster", "ZoneSlave", "zones_equal",
    "EmptyRdata", "UpdateProcessor",
    "prereq_name_in_use", "prereq_name_not_in_use", "prereq_rrset_absent",
    "prereq_rrset_exists", "prereq_rrset_exists_value",
    "update_add", "update_delete_name", "update_delete_record", "update_delete_rrset",
    "DelegationReport", "DelegationStatus", "check_delegations",
    "delegation_cuts", "repair_parent",
]
