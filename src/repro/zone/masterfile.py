"""Master-file (zone file) parsing and serialization (RFC 1035 §5).

Supports the directives and syntax the reproduction needs: ``$ORIGIN``,
``$TTL``, ``@``, relative names, inherited owner names, parenthesized
multi-line records (for SOA), comments, and the common record types.
"""

from __future__ import annotations

import io
from typing import List, Optional, TextIO, Tuple, Union

from ..dnslib import (
    Name,
    RRClass,
    RRSet,
    RRType,
    SOA,
    ResourceRecord,
    as_name,
    rdata_from_text,
    records_to_rrsets,
)
from .zone import Zone, ZoneError


class MasterFileError(ValueError):
    """Raised on malformed zone file input, with a line number."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


def _tokenize(stream: TextIO) -> List[Tuple[int, List[str]]]:
    """Split a master file into logical lines of tokens.

    Handles ``;`` comments, quoted strings, and ``( ... )`` continuation
    across physical lines.  Leading whitespace is preserved as an implicit
    first token ``""`` so the parser can detect owner-name inheritance.
    """
    logical: List[Tuple[int, List[str]]] = []
    depth = 0
    current: List[str] = []
    start_line = 0
    for lineno, raw in enumerate(stream, start=1):
        tokens, leading_blank = _tokenize_line(raw, lineno)
        if depth == 0:
            if not tokens:
                continue
            start_line = lineno
            current = [""] if leading_blank else []
        current.extend(token for token in tokens if token not in ("(", ")"))
        depth += sum(1 for token in tokens if token == "(")
        depth -= sum(1 for token in tokens if token == ")")
        if depth < 0:
            raise MasterFileError("unbalanced ')'", lineno)
        if depth == 0 and current:
            logical.append((start_line, current))
            current = []
    if depth != 0:
        raise MasterFileError("unterminated '(' group", start_line)
    return logical


def _tokenize_line(raw: str, lineno: int) -> Tuple[List[str], bool]:
    tokens: List[str] = []
    leading_blank = raw[:1] in (" ", "\t")
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch == ";":
            break
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == '"':
            end = raw.find('"', i + 1)
            if end == -1:
                raise MasterFileError("unterminated quoted string", lineno)
            tokens.append(raw[i : end + 1])
            i = end + 1
            continue
        if ch in "()":
            tokens.append(ch)
            i += 1
            continue
        j = i
        while j < n and raw[j] not in " \t\r\n;()\"":
            j += 1
        tokens.append(raw[i:j])
        i = j
    return tokens, leading_blank


def parse_records(text_or_stream: Union[str, TextIO],
                  origin: Optional[Name] = None,
                  default_ttl: Optional[int] = None) -> List[ResourceRecord]:
    """Parse master-file text into a record list."""
    stream = io.StringIO(text_or_stream) if isinstance(text_or_stream, str) else text_or_stream
    records: List[ResourceRecord] = []
    last_owner: Optional[Name] = None
    for lineno, tokens in _tokenize(stream):
        if tokens and tokens[0] == "$ORIGIN":
            if len(tokens) != 2:
                raise MasterFileError("$ORIGIN wants one argument", lineno)
            origin = Name.from_text(tokens[1])
            continue
        if tokens and tokens[0] == "$TTL":
            if len(tokens) != 2:
                raise MasterFileError("$TTL wants one argument", lineno)
            default_ttl = parse_ttl(tokens[1], lineno)
            continue
        record, last_owner = _parse_record(tokens, lineno, origin, default_ttl, last_owner)
        records.append(record)
    return records


def _parse_record(tokens: List[str], lineno: int, origin: Optional[Name],
                  default_ttl: Optional[int], last_owner: Optional[Name]):
    if tokens and tokens[0] == "":
        if last_owner is None:
            raise MasterFileError("no previous owner to inherit", lineno)
        owner = last_owner
        rest = tokens[1:]
    else:
        if origin is None and not tokens[0].endswith(".") and tokens[0] != "@":
            raise MasterFileError("relative owner with no $ORIGIN", lineno)
        owner = _owner_name(tokens[0], origin)
        rest = tokens[1:]
    ttl: Optional[int] = None
    rrclass = RRClass.IN
    # [ttl] [class] or [class] [ttl], both optional.
    while rest:
        token = rest[0]
        if token.upper() in ("IN", "CH", "HS") and len(rest) > 1:
            rrclass = RRClass.from_text(token)
            rest = rest[1:]
            continue
        if _looks_like_ttl(token) and len(rest) > 1 and not _is_type(rest[0]):
            ttl = parse_ttl(token, lineno)
            rest = rest[1:]
            continue
        break
    if not rest:
        raise MasterFileError("missing record type", lineno)
    try:
        rrtype = RRType.from_text(rest[0])
    except ValueError as exc:
        raise MasterFileError(str(exc), lineno) from exc
    fields = rest[1:]
    if ttl is None:
        ttl = default_ttl
    if ttl is None:
        raise MasterFileError("no TTL and no $TTL default", lineno)
    effective_origin = origin if origin is not None else Name.root()
    try:
        rdata = rdata_from_text(rrtype, fields, effective_origin)
    except (ValueError, TypeError) as exc:
        raise MasterFileError(f"bad {rrtype.name} rdata: {exc}", lineno) from exc
    return ResourceRecord(owner, rrtype, ttl, rdata, rrclass), owner


def _owner_name(token: str, origin: Optional[Name]) -> Name:
    if token == "@":
        if origin is None:
            raise ValueError("'@' with no $ORIGIN")
        return origin
    name = Name.from_text(token)
    if token.endswith(".") or origin is None:
        return name
    return name.concatenate(origin)


def _looks_like_ttl(token: str) -> bool:
    return token[:1].isdigit()


def _is_type(token: str) -> bool:
    try:
        RRType.from_text(token)
        return True
    except ValueError:
        return False


_TTL_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}


def parse_ttl(token: str, lineno: int = 0) -> int:
    """Parse ``300``, ``5m``, ``1h30m``, ``2d`` style TTLs."""
    token = token.strip().lower()
    if not token:
        raise MasterFileError("empty TTL", lineno)
    if token.isdigit():
        return int(token)
    total = 0
    number = ""
    for ch in token:
        if ch.isdigit():
            number += ch
        elif ch in _TTL_UNITS and number:
            total += int(number) * _TTL_UNITS[ch]
            number = ""
        else:
            raise MasterFileError(f"bad TTL: {token!r}", lineno)
    if number:
        raise MasterFileError(f"bad TTL (trailing digits): {token!r}", lineno)
    return total


def load_zone(text_or_stream: Union[str, TextIO],
              origin: Optional[Name] = None) -> Zone:
    """Parse a master file into a :class:`Zone`.

    The first SOA record becomes the apex; ``origin`` defaults to the SOA
    owner when omitted.
    """
    records = parse_records(text_or_stream, origin)
    soa_records = [r for r in records if r.rrtype == RRType.SOA]
    if len(soa_records) != 1:
        raise ZoneError(f"zone needs exactly one SOA, found {len(soa_records)}")
    soa_record = soa_records[0]
    zone_origin = origin if origin is not None else soa_record.name
    zone = Zone(zone_origin, soa_record.rdata, soa_record.rrclass,
                soa_ttl=soa_record.ttl)
    # Loading must preserve the file's SOA serial, not invent a new one.
    with zone.bulk_update(bump_serial=False):
        for rrset in records_to_rrsets(records):
            if rrset.rrtype == RRType.SOA:
                continue
            zone.put_rrset(rrset)
    return zone


def dump_zone(zone: Zone) -> str:
    """Serialize ``zone`` back to master-file text (round-trippable)."""
    lines = [f"$ORIGIN {zone.origin.to_text()}"]
    apex_soa = zone.get_rrset(zone.origin, RRType.SOA)
    assert apex_soa is not None
    for record in apex_soa.to_records():
        lines.append(record.to_text())
    for rrset in sorted(zone.iter_rrsets(),
                        key=lambda s: (s.name, int(s.rrtype))):
        if rrset.rrtype == RRType.SOA:
            continue
        for record in rrset.to_records():
            lines.append(record.to_text())
    return "\n".join(lines) + "\n"
