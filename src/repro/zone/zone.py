"""The zone store: authoritative data for one delegated name space unit.

A :class:`Zone` maps (owner name, type) to RRsets and enforces the
invariants an authoritative server relies on:

* exactly one SOA at the apex, whose serial advances on every change;
* CNAME exclusivity (a CNAME owner has no other data, RFC 1034 §3.6.2);
* all owner names fall inside the zone cut.

Mutations go through :meth:`put_rrset` / :meth:`delete_rrset` /
:meth:`delete_name` and automatically bump the serial unless batched in a
:meth:`bulk_update` context (used by RFC 2136 processing, which bumps the
serial once per successful UPDATE message).  Change listeners registered
with :meth:`add_change_listener` receive every committed difference — this
is the hook DNScup's *detection module* (paper Figure 6) attaches to.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..dnslib import Name, RRClass, RRSet, RRType, SOA, as_name
from .serial import serial_add

#: A committed change: (owner, rrtype, old RRset or None, new RRset or None).
ZoneChange = Tuple[Name, RRType, Optional[RRSet], Optional[RRSet]]
ChangeListener = Callable[["Zone", List[ZoneChange]], None]


class ZoneError(ValueError):
    """Raised when a mutation would violate a zone invariant."""


class Zone:
    """Authoritative data for one zone."""

    def __init__(self, origin, soa: SOA, rrclass: RRClass = RRClass.IN,
                 soa_ttl: int = 3600):
        self.origin: Name = as_name(origin)
        self.rrclass = rrclass
        self._rrsets: Dict[Tuple[Name, RRType], RRSet] = {}
        self._listeners: List[ChangeListener] = []
        self._batch: Optional[List[ZoneChange]] = None
        apex_soa = RRSet(self.origin, RRType.SOA, soa_ttl, [soa], rrclass)
        self._rrsets[(self.origin, RRType.SOA)] = apex_soa

    # -- identity ------------------------------------------------------------

    @property
    def soa(self) -> SOA:
        """The apex SOA rdata."""
        rrset = self._rrsets[(self.origin, RRType.SOA)]
        return rrset.rdatas[0]  # type: ignore[return-value]

    @property
    def serial(self) -> int:
        """The zone's current SOA serial."""
        return self.soa.serial

    def contains_name(self, name: Name) -> bool:
        """True when ``name`` lies inside this zone's cut."""
        return name.is_subdomain_of(self.origin)

    # -- read ------------------------------------------------------------------

    def get_rrset(self, name, rrtype: RRType) -> Optional[RRSet]:
        """The RRset at (name, type), or None."""
        return self._rrsets.get((as_name(name), RRType(rrtype)))

    def rrsets_at(self, name) -> List[RRSet]:
        """Every RRset stored at ``name``."""
        key_name = as_name(name)
        return [rrset for (owner, _), rrset in self._rrsets.items() if owner == key_name]

    def has_name(self, name) -> bool:
        """True when ``name`` exists (including empty non-terminals)."""
        key_name = as_name(name)
        if any(owner == key_name for (owner, _) in self._rrsets):
            return True
        # Empty non-terminals exist when any stored name lies beneath them.
        return any(owner.is_subdomain_of(key_name) and owner != key_name
                   for (owner, _) in self._rrsets)

    def iter_rrsets(self) -> Iterator[RRSet]:
        """Iterate over all stored RRsets."""
        return iter(list(self._rrsets.values()))

    def names(self) -> List[Name]:
        """Every owner name with data, in insertion order."""
        seen = []
        for owner, _ in self._rrsets:
            if owner not in seen:
                seen.append(owner)
        return seen

    def find_delegation(self, name: Name) -> Optional[RRSet]:
        """The NS RRset of the deepest zone cut above ``name``, if any.

        The apex NS set is not a delegation; only cuts strictly below the
        origin count.  Used for referral generation and lame-delegation
        checks.
        """
        if not self.contains_name(name):
            return None
        for ancestor in name.ancestors():
            if ancestor == self.origin:
                return None
            rrset = self._rrsets.get((ancestor, RRType.NS))
            if rrset is not None:
                return rrset
        return None

    def __len__(self) -> int:
        return len(self._rrsets)

    # -- change notification -----------------------------------------------------

    def add_change_listener(self, listener: ChangeListener) -> None:
        """Subscribe to committed RRset changes."""
        self._listeners.append(listener)

    def remove_change_listener(self, listener: ChangeListener) -> None:
        """Unsubscribe a change listener."""
        self._listeners.remove(listener)

    def _emit(self, changes: List[ZoneChange]) -> None:
        if not changes:
            return
        if self._batch is not None:
            self._batch.extend(changes)
            return
        self._bump_serial()
        for listener in list(self._listeners):
            listener(self, changes)

    def _bump_serial(self) -> None:
        old = self.soa
        new_soa = SOA(old.mname, old.rname, serial_add(old.serial, 1),
                      old.refresh, old.retry, old.expire, old.minimum)
        rrset = self._rrsets[(self.origin, RRType.SOA)]
        rrset.replace([new_soa])

    @contextlib.contextmanager
    def bulk_update(self, bump_serial: bool = True):
        """Batch mutations into one serial bump and one listener callback.

        Replication paths (slaves applying AXFR/IXFR) pass
        ``bump_serial=False`` and adopt the master's serial explicitly via
        :meth:`set_serial`, so replicas never invent serials of their own.
        """
        if self._batch is not None:
            yield self._batch
            return
        self._batch = []
        try:
            yield self._batch
        finally:
            changes, self._batch = self._batch, None
            changes = _coalesce_changes(changes)
            if changes:
                if bump_serial:
                    self._bump_serial()
                for listener in list(self._listeners):
                    listener(self, changes)

    def set_serial(self, serial: int) -> None:
        """Overwrite the SOA serial without emitting a change event."""
        old = self.soa
        new_soa = SOA(old.mname, old.rname, serial, old.refresh,
                      old.retry, old.expire, old.minimum)
        self._rrsets[(self.origin, RRType.SOA)].replace([new_soa])

    # -- write ---------------------------------------------------------------------

    def put_rrset(self, rrset: RRSet) -> None:
        """Insert or replace the RRset for (rrset.name, rrset.rrtype)."""
        if not self.contains_name(rrset.name):
            raise ZoneError(f"{rrset.name} is outside zone {self.origin}")
        if rrset.rrclass != self.rrclass:
            raise ZoneError(f"class mismatch: {rrset.rrclass} != {self.rrclass}")
        if len(rrset) == 0:
            raise ZoneError("refusing to store an empty RRset")
        self._check_cname_exclusivity(rrset)
        if rrset.rrtype == RRType.SOA:
            if rrset.name != self.origin:
                raise ZoneError("SOA must live at the zone apex")
            if len(rrset) != 1:
                raise ZoneError("a zone has exactly one SOA")
        key = (rrset.name, rrset.rrtype)
        old = self._rrsets.get(key)
        if old is not None and old == rrset:
            return
        stored = rrset.copy()
        self._rrsets[key] = stored
        self._emit([(rrset.name, rrset.rrtype, old, stored.copy())])

    def _check_cname_exclusivity(self, rrset: RRSet) -> None:
        others = [r for r in self.rrsets_at(rrset.name)
                  if r.rrtype != rrset.rrtype]
        if rrset.rrtype == RRType.CNAME and others:
            raise ZoneError(f"CNAME at {rrset.name} conflicts with existing data")
        if rrset.rrtype != RRType.CNAME and any(r.rrtype == RRType.CNAME for r in others):
            raise ZoneError(f"{rrset.name} already holds a CNAME")

    def delete_rrset(self, name, rrtype: RRType) -> bool:
        """Remove one RRset; returns True when something was removed."""
        key = (as_name(name), RRType(rrtype))
        if key == (self.origin, RRType.SOA):
            raise ZoneError("cannot delete the apex SOA")
        old = self._rrsets.pop(key, None)
        if old is None:
            return False
        self._emit([(key[0], key[1], old, None)])
        return True

    def delete_name(self, name) -> int:
        """Remove all RRsets at ``name`` (except an apex SOA); count removed."""
        key_name = as_name(name)
        changes: List[ZoneChange] = []
        for key in [k for k in self._rrsets if k[0] == key_name]:
            if key == (self.origin, RRType.SOA):
                continue
            old = self._rrsets.pop(key)
            changes.append((key[0], key[1], old, None))
        self._emit(changes)
        return len(changes)

    def replace_address(self, name, addresses: List[str], ttl: Optional[int] = None) -> None:
        """Convenience: point ``name``'s A RRset at ``addresses``.

        This is the paper's canonical event — a DN2IP mapping change — and
        the operation examples and benchmarks perform most often.
        """
        from ..dnslib import A  # local import to keep module load cheap
        owner = as_name(name)
        old = self.get_rrset(owner, RRType.A)
        if ttl is None:
            ttl = old.ttl if old is not None else 3600
        self.put_rrset(RRSet(owner, RRType.A, ttl, [A(addr) for addr in addresses],
                             self.rrclass))

    # -- snapshots -------------------------------------------------------------------

    def snapshot(self) -> Dict[Tuple[Name, RRType], RRSet]:
        """An immutable-ish copy of all RRsets, for diffing (IXFR, probes)."""
        return {key: rrset.copy() for key, rrset in self._rrsets.items()}

    def __repr__(self) -> str:
        return f"Zone({self.origin.to_text()!r}, serial={self.serial}, rrsets={len(self)})"


def _coalesce_changes(changes: List[ZoneChange]) -> List[ZoneChange]:
    """Merge per-(name, type) change chains into one net change each.

    A delete followed by an add of the same key inside one batch (the
    RFC 2136 replace idiom) becomes a single replacement event, and
    chains that net out to no change are dropped — one CACHE-UPDATE per
    record, not one per intermediate step.
    """
    merged: Dict[Tuple[Name, RRType], Tuple[Optional[RRSet], Optional[RRSet]]] = {}
    order: List[Tuple[Name, RRType]] = []
    for name, rrtype, old, new in changes:
        key = (name, rrtype)
        if key in merged:
            merged[key] = (merged[key][0], new)
        else:
            merged[key] = (old, new)
            order.append(key)
    result: List[ZoneChange] = []
    for key in order:
        old, new = merged[key]
        if old is None and new is None:
            continue
        if old is not None and new is not None and old == new:
            continue
        result.append((key[0], key[1], old, new))
    return result


def diff_snapshots(old: Dict[Tuple[Name, RRType], RRSet],
                   new: Dict[Tuple[Name, RRType], RRSet]) -> List[ZoneChange]:
    """Compute the RRset-level difference between two snapshots."""
    changes: List[ZoneChange] = []
    for key in old.keys() | new.keys():
        before = old.get(key)
        after = new.get(key)
        if before is None or after is None or before != after:
            changes.append((key[0], key[1], before, after))
    return changes
