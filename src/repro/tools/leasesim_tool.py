"""``repro-leasesim``: trace-driven lease simulation (Figure 5).

Reads a query trace (``repro-trace`` output) plus its domain catalog,
replays it under the fixed-length and dynamic lease schemes, and writes
the two operating-point curves as CSV (and a text summary to stdout).

Three replay engines are available: ``--engine fast`` (default) groups
the trace once into a pair index and evaluates the whole sweep from it;
``--engine columnar`` replays the sweep as vectorized column sweeps over
a CSR trace and honours ``--shards N`` (domain-partitioned replay with
an exact merge — the output is byte-identical at any shard count);
``--engine reference`` replays the full trace once per sweep point — the
oracle both other engines are held bit-identical to.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..core.policy import MAX_LEASE_CDN, MAX_LEASE_DYN, MAX_LEASE_REGULAR
from ..dnslib import Name
from ..report import format_table, read_csv, write_csv
from ..sim import (
    ColumnarTrace,
    PairIndex,
    dynamic_lease_fn,
    fast_dynamic_sweep,
    fast_lease_replay,
    fixed_lease_fn,
    sharded_figure5_sweep,
    interpolate_at_query_rate,
    interpolate_at_storage,
    logspace,
    simulate_lease_trace,
    train_pair_rates,
)
from ..traces import load_trace

_CATEGORY_MAX = {"regular": float(MAX_LEASE_REGULAR),
                 "cdn": float(MAX_LEASE_CDN),
                 "dyn": float(MAX_LEASE_DYN)}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-leasesim",
        description="Fixed vs dynamic lease comparison over a query trace.")
    parser.add_argument("trace", help="trace file from repro-trace")
    parser.add_argument("--catalog", help="domain catalog CSV (for per-"
                        "category max leases); default: 6-day max for all")
    parser.add_argument("--output", help="CSV file for the curves")
    parser.add_argument("--json", dest="json_output", metavar="PATH",
                        help="JSON file for the curves + Figure 5 readings; "
                             "carries the same numbers as the CSV at the "
                             "same precision, in a byte-stable key order")
    parser.add_argument("--fixed-points", type=int, default=10)
    parser.add_argument("--dynamic-points", type=int, default=10)
    parser.add_argument("--training-fraction", type=float, default=1 / 7)
    parser.add_argument("--engine",
                        choices=("reference", "fast", "columnar"),
                        default="fast",
                        help="replay engine: pair-indexed fast engine "
                             "(default), the vectorized columnar engine, "
                             "or the per-point reference oracle")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="domain-partition the replay into N shards "
                             "(columnar engine only); the exact merge "
                             "keeps every output byte-identical to a "
                             "1-shard run")
    return parser


def load_max_lease(catalog_path: Optional[str]):
    """Max-lease lookup built from a catalog CSV (or default)."""
    if catalog_path is None:
        return lambda name: float(MAX_LEASE_REGULAR)
    table: Dict[Name, float] = {}
    rows = read_csv(catalog_path)
    for name_text, category, _ttl in rows[1:]:
        table[Name.from_text(name_text)] = _CATEGORY_MAX.get(
            category, float(MAX_LEASE_REGULAR))

    def max_lease_of(name: Name) -> float:
        return table.get(name, float(MAX_LEASE_REGULAR))

    return max_lease_of


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    events = load_trace(args.trace)
    if not events:
        print("empty trace", file=sys.stderr)
        return 1
    duration = max(event.time for event in events) + 1.0
    rates = train_pair_rates(events, duration * args.training_fraction)
    max_lease_of = load_max_lease(args.catalog)

    fixed_lengths = logspace(10.0, 6 * 86400.0, args.fixed_points)
    ordered = sorted(rates.values())
    quantile_count = max(2, args.dynamic_points - 2)
    quantiles = [i / (quantile_count + 1) for i in range(1, quantile_count + 1)]
    thresholds = [0.0] + [ordered[int(q * (len(ordered) - 1))]
                          for q in quantiles] + [ordered[-1] * 2]

    if args.shards < 1:
        print("need at least one shard", file=sys.stderr)
        return 1
    if args.shards > 1 and args.engine != "columnar":
        print("--shards requires --engine columnar", file=sys.stderr)
        return 1

    results = []
    if args.engine == "columnar":
        trace = ColumnarTrace.from_events(events)
        fixed, dynamic, _polling = sharded_figure5_sweep(
            trace, trace.rate_column(rates),
            trace.max_lease_column(max_lease_of), fixed_lengths, thresholds,
            duration, args.shards)
        results.extend(fixed)
        results.extend(dynamic)
    elif args.engine == "fast":
        index = PairIndex(events)
        for length in fixed_lengths:
            results.append(fast_lease_replay(
                index, rates, max_lease_of, fixed_lease_fn(length), duration,
                scheme="fixed", parameter=length))
        results.extend(fast_dynamic_sweep(index, rates, max_lease_of,
                                          thresholds, duration))
    else:
        for length in fixed_lengths:
            results.append(simulate_lease_trace(
                events, rates, max_lease_of, fixed_lease_fn(length), duration,
                scheme="fixed", parameter=length))
        for threshold in thresholds:
            results.append(simulate_lease_trace(
                events, rates, max_lease_of, dynamic_lease_fn(threshold),
                duration, scheme="dynamic", parameter=threshold))

    rows = [(r.scheme, f"{r.parameter:.6g}", f"{r.storage_percentage:.3f}",
             f"{r.query_rate_percentage:.3f}", r.grants,
             r.upstream_messages) for r in results]
    print(format_table(("scheme", "parameter", "storage%", "query_rate%",
                        "grants", "upstream"), rows,
                       title=f"Lease comparison over {len(events)} queries, "
                             f"{duration / 86400:.1f} days"))
    fixed_points = [r.as_point() for r in results if r.scheme == "fixed"]
    dynamic_points = [r.as_point() for r in results if r.scheme == "dynamic"]
    fixed_at1 = interpolate_at_storage(fixed_points, 1.0)
    dyn_at1 = interpolate_at_storage(dynamic_points, 1.0)
    fixed_at20 = interpolate_at_query_rate(fixed_points, 20.0)
    dyn_at20 = interpolate_at_query_rate(dynamic_points, 20.0)
    print(f"\nFigure 5 readings: at storage 1% query rate "
          f"fixed={fixed_at1:.1f}% dynamic={dyn_at1:.1f}%; "
          f"at query rate 20% storage "
          f"fixed={fixed_at20:.1f}% dynamic={dyn_at20:.1f}%")
    if args.output:
        write_csv(args.output, ("scheme", "parameter", "storage_pct",
                                "query_rate_pct", "grants", "upstream"),
                  rows)
        print(f"curves written to {args.output}")
    if args.json_output:
        # Same numbers as the CSV at the same precision: the floats are
        # round-tripped through the CSV's format strings so the two
        # outputs can never drift apart.  Keys are emitted in insertion
        # order (no sort_keys) so repeated runs are byte-identical.
        document = {
            "queries": len(events),
            "duration_days": duration / 86400.0,
            "engine": args.engine,
            "rows": [
                {"scheme": scheme,
                 "parameter": float(parameter),
                 "storage_pct": float(storage),
                 "query_rate_pct": float(query_rate),
                 "grants": grants,
                 "upstream": upstream}
                for scheme, parameter, storage, query_rate, grants, upstream
                in rows],
            "readings": {
                "query_rate_at_storage_1pct": {
                    "fixed": round(fixed_at1, 1), "dynamic": round(dyn_at1, 1)},
                "storage_at_query_rate_20pct": {
                    "fixed": round(fixed_at20, 1), "dynamic": round(dyn_at20, 1)},
            },
        }
        with open(args.json_output, "w") as stream:
            json.dump(document, stream, indent=2)
            stream.write("\n")
        print(f"curves written to {args.json_output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
