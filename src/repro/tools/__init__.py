"""Command-line tools: trace generation, lease simulation, probing,
observability traces, and the testbed demo.

Installed as console scripts (``repro-trace``, ``repro-leasesim``,
``repro-probe``, ``repro-obs``, ``repro-testbed``); each module also
exposes ``main(argv)`` for programmatic use and testing.
"""

from . import (
    leasesim_tool,
    live_tool,
    obs_tool,
    probe_tool,
    report_tool,
    testbed_tool,
    trace_tool,
)

__all__ = ["trace_tool", "leasesim_tool", "live_tool", "obs_tool",
           "probe_tool", "report_tool", "testbed_tool"]
