"""``repro-trace``: generate synthetic DNS query traces.

Builds a §3.1-style domain population, runs the workload generator, and
writes the nameserver-visible query trace (and optionally the domain
catalog) to files that ``repro-leasesim`` consumes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..report import write_csv
from ..traces import (
    PopulationConfig,
    WorkloadConfig,
    assign_global_zipf,
    generate_population,
    generate_queries,
    write_trace,
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate a synthetic DNS query trace (paper §5.1 style).")
    parser.add_argument("output", help="trace file to write")
    parser.add_argument("--days", type=float, default=1.0,
                        help="trace duration in days (default 1)")
    parser.add_argument("--clients", type=int, default=120)
    parser.add_argument("--nameservers", type=int, default=3)
    parser.add_argument("--rate", type=float, default=0.5,
                        help="aggregate request rate, q/s (default 0.5)")
    parser.add_argument("--client-cache", type=float, default=900.0,
                        help="client-side cache seconds (default 900)")
    parser.add_argument("--regular-per-tld", type=int, default=40)
    parser.add_argument("--cdn", type=int, default=30)
    parser.add_argument("--dyn", type=int, default=30)
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="global Zipf exponent for popularity")
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--catalog", help="also write the domain catalog "
                                          "(name, category, ttl) as CSV")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    population = generate_population(PopulationConfig(
        regular_per_tld=args.regular_per_tld, cdn_count=args.cdn,
        dyn_count=args.dyn, seed=args.seed))
    population = assign_global_zipf(population, exponent=args.zipf,
                                    seed=args.seed + 1)
    config = WorkloadConfig(duration=args.days * 86400.0,
                            clients=args.clients,
                            nameservers=args.nameservers,
                            total_request_rate=args.rate,
                            client_cache_seconds=args.client_cache,
                            seed=args.seed + 2)
    count = write_trace(generate_queries(population, config), args.output)
    print(f"wrote {count} queries over {args.days:g} day(s) "
          f"({len(population)} domains) to {args.output}")
    if args.catalog:
        rows = [(domain.name.to_text(), domain.category, f"{domain.ttl:g}")
                for domain in population]
        write_csv(args.catalog, ("name", "category", "ttl"), rows)
        print(f"wrote catalog to {args.catalog}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
