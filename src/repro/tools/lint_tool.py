"""``repro-lint``: the protocol-invariant linter's command line.

Static counterpart to ``repro-obs audit`` — where the auditor checks an
exported *trace* against the protocol's guarantees, this checks the
*source tree* against the contracts those guarantees rest on
(determinism, the trace-name schema, zero-cost instrumentation, exact
rounding, enum exhaustiveness; DESIGN.md §9 has the catalogue):

* ``check PATH...`` — lint files/directories; exits 1 when findings
  remain after suppressions, 0 on a clean tree, 2 on usage errors
  (unreadable paths, malformed ``--select`` expressions).
  ``--select DCUP001,DCUP005`` narrows the report to given codes and
  accepts inclusive ranges (``--select DCUP009-DCUP013``);
  ``--format json`` emits the byte-stable machine form.
* ``rules`` — print the rule catalogue (code, name, scope, summary).

Suppressions are in-source comments that *must* carry a reason; see
:mod:`repro.analysis.suppress`.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from ..analysis import (
    LintError,
    lint_paths,
    parse_select,
    render_json,
    render_text,
    rule_catalogue,
)
from ..report import format_table


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static protocol-invariant linter for the DNScup "
                    "tree (rule catalogue in DESIGN.md §9).")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="lint files or directories")
    check.add_argument("paths", nargs="+",
                       help="files or directories to lint")
    check.add_argument("--select", default=None,
                       help="comma-separated DCUP codes and inclusive "
                            "ranges to report, e.g. "
                            "DCUP001,DCUP009-DCUP013 (default: all)")
    check.add_argument("--format", choices=("text", "json"),
                       default="text", dest="fmt",
                       help="output format (default: text)")
    check.add_argument("--output",
                       help="write the report there instead of stdout")

    rules = sub.add_parser("rules", help="print the rule catalogue")
    rules.add_argument("--format", choices=("text", "json"),
                       default="text", dest="fmt",
                       help="output format (default: text)")
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w") as stream:
            stream.write(text + "\n")
    else:
        print(text)


def cmd_check(args: argparse.Namespace) -> int:
    try:
        select = parse_select(args.select) if args.select else None
        findings = lint_paths([pathlib.Path(p) for p in args.paths],
                              select=select)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        _emit(render_json(findings), args.output)
    else:
        _emit(render_text(findings), args.output)
    return 1 if findings else 0


def cmd_rules(args: argparse.Namespace) -> int:
    entries = rule_catalogue()
    if args.fmt == "json":
        import json
        print(json.dumps({"rules": entries}, sort_keys=True,
                         separators=(",", ":")))
        return 0
    print(format_table(
        ("code", "name", "scope", "summary"),
        [(e["code"], e["name"], e["scope"], e["summary"])
         for e in entries],
        title=f"repro-lint rule pack ({len(entries)} rules)"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {"check": cmd_check, "rules": cmd_rules}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
