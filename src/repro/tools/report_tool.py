"""``repro-report``: regenerate every figure's data in one run.

Writes one CSV per table/figure plus a REPORT.md summary into a target
directory — the single-command reproduction artifact.  A scaled-down
version of what the benchmark suite asserts; see EXPERIMENTS.md for the
full paper-vs-measured discussion.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..measurement import cv_vs_caching_period, summarize_campaign
from ..measurement.prober import DnsDynamicsProber, oracle_from_specs
from ..report import write_csv
from ..sim import (
    Testbed,
    TestbedConfig,
    figure5_curves,
    interpolate_at_query_rate,
    interpolate_at_storage,
    logspace,
    train_pair_rates,
)
from ..traces import (
    PopulationConfig,
    WorkloadConfig,
    assign_global_zipf,
    figure1_series,
    generate_population,
    generate_queries,
    generate_requests,
    split_by_nameserver,
    synthesize_proxy_log,
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Regenerate every table/figure into CSVs + REPORT.md.")
    parser.add_argument("outdir", help="directory for the report files")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale factor for population/trace sizes "
                             "(default 1.0; smaller = faster)")
    parser.add_argument("--seed", type=int, default=2006)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    os.makedirs(args.outdir, exist_ok=True)
    scale = max(0.1, args.scale)
    lines: List[str] = ["# DNScup reproduction report", ""]

    def emit(text: str = "") -> None:
        lines.append(text)

    population = generate_population(PopulationConfig(
        regular_per_tld=max(5, int(40 * scale)),
        cdn_count=max(5, int(30 * scale)),
        dyn_count=max(5, int(30 * scale)), seed=args.seed))
    population = assign_global_zipf(population, exponent=1.1,
                                    seed=args.seed + 1)
    emit(f"Population: {len(population)} domains (seed {args.seed}).")
    emit()

    # -- Figure 1 ---------------------------------------------------------
    log = synthesize_proxy_log(population, total_requests=int(500_000 * scale),
                               seed=args.seed + 2)
    series = figure1_series(log, bins_per_decade=2)
    rows = [(tld, f"{requests:.1f}", count)
            for tld, points in sorted(series.items())
            for requests, count in points]
    write_csv(os.path.join(args.outdir, "figure1_domain_distribution.csv"),
              ("tld", "requests_bin", "domain_count"), rows)
    emit("## Figure 1 — written to figure1_domain_distribution.csv")
    emit()

    # -- Figure 2 / §3.2 --------------------------------------------------
    prober = DnsDynamicsProber(oracle_from_specs(population),
                               max_probes_per_domain=int(600 * scale))
    results = prober.run_campaign(population)
    summaries = summarize_campaign(results)
    write_csv(os.path.join(args.outdir, "figure2_change_frequency.csv"),
              ("class", "domains", "mean_change_frequency", "changed_share",
               "mean_lifetime_s", "physical_share"),
              [(i, s.domains, f"{s.mean_change_frequency:.6f}",
                f"{s.changed_share:.4f}", f"{s.mean_lifetime:.1f}",
                f"{s.physical_share:.4f}") for i, s in summaries.items()])
    emit("## Figure 2 / §3.2 — written to figure2_change_frequency.csv")
    for index, summary in summaries.items():
        emit(f"- class {index}: mean freq "
             f"{summary.mean_change_frequency:.2%}, "
             f"physical {summary.physical_share:.0%}")
    emit()

    # -- Figure 4 ---------------------------------------------------------
    workload = WorkloadConfig(duration=4 * 3600.0,
                              clients=max(10, int(120 * scale)),
                              nameservers=3,
                              total_request_rate=1.2, seed=args.seed + 3)
    requests = list(generate_requests(population, workload))
    rows = []
    for ns_index, trace in enumerate(
            split_by_nameserver(requests, 3), start=1):
        for period, stats in cv_vs_caching_period(
                trace, (1.0, 10.0, 100.0, 900.0, 10_000.0), min_queries=20):
            rows.append((ns_index, period, f"{stats.mean:.4f}",
                         f"{stats.half_width:.4f}", stats.count))
    write_csv(os.path.join(args.outdir, "figure4_poisson_cv.csv"),
              ("nameserver", "caching_period_s", "mean_cv", "ci95_half",
               "domains"), rows)
    emit("## Figure 4 — written to figure4_poisson_cv.csv")
    emit()

    # -- Figure 5 ---------------------------------------------------------
    week = WorkloadConfig(duration=7 * 86400.0,
                          clients=max(10, int(120 * scale)), nameservers=3,
                          total_request_rate=0.4 * scale,
                          client_cache_seconds=900.0, seed=args.seed + 4)
    events = list(generate_queries(population, week))
    rates = sorted(train_pair_rates(events, week.duration / 7.0).values())
    quantiles = (0.05, 0.2, 0.4, 0.6, 0.75, 0.9, 0.95, 0.98, 0.995)
    thresholds = ([0.0] + [rates[int(q * (len(rates) - 1))]
                           for q in quantiles] + [rates[-1] * 2])
    curves = figure5_curves(events, population, week.duration,
                            fixed_lengths=logspace(10.0, 6 * 86400.0, 10),
                            rate_thresholds=thresholds)
    rows = [(r.scheme, f"{r.parameter:.6g}", f"{r.storage_percentage:.3f}",
             f"{r.query_rate_percentage:.3f}")
            for r in curves.fixed + curves.dynamic]
    write_csv(os.path.join(args.outdir, "figure5_lease_comparison.csv"),
              ("scheme", "parameter", "storage_pct", "query_rate_pct"),
              rows)
    fixed_at_20 = interpolate_at_query_rate(curves.fixed_points(), 20.0)
    dyn_at_20 = interpolate_at_query_rate(curves.dynamic_points(), 20.0)
    fixed_at_1 = interpolate_at_storage(curves.fixed_points(), 1.0)
    dyn_at_1 = interpolate_at_storage(curves.dynamic_points(), 1.0)
    emit("## Figure 5 — written to figure5_lease_comparison.csv")
    emit(f"- storage @ query-rate 20%: fixed {fixed_at_20:.1f}% vs dynamic "
         f"{dyn_at_20:.1f}% (paper: 47% vs 19%)")
    emit(f"- query-rate @ storage 1%: fixed {fixed_at_1:.1f}% vs dynamic "
         f"{dyn_at_1:.1f}% (paper: 88% vs 56%)")
    emit()

    # -- Figure 7 / §5.2 ----------------------------------------------------
    testbed = Testbed(TestbedConfig(network_seed=args.seed + 5))
    answers = testbed.lookup_all(0)
    resolved = sum(1 for a in answers.values() if a)
    for index, domain in enumerate(testbed.domains[:3]):
        testbed.dynamic_update(domain.name, f"172.25.0.{index + 1}")
    testbed.run()
    emit("## Figure 7 / §5.2 — testbed")
    emit(f"- zones {len(testbed.zones)}, resolved {resolved}/"
         f"{len(testbed.domains)}, slaves consistent "
         f"{testbed.slaves_consistent()}, max message "
         f"{testbed.max_message_size()} B (bound 512 B)")
    stats = testbed.dnscup.notification.stats
    emit(f"- CACHE-UPDATEs {stats.notifications_sent}, acks "
         f"{stats.acks_received}")
    emit()

    report_path = os.path.join(args.outdir, "REPORT.md")
    with open(report_path, "w") as stream:
        stream.write("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"\nreport written to {report_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
