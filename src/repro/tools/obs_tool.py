"""``repro-obs``: inspect exported observability traces.

Works on the JSONL event files written by
:meth:`repro.obs.TraceBus.export_jsonl`:

* ``summarize`` — recompute the headline numbers (notification ack RTT,
  consistency windows, lease churn, datagram fates) from the raw events;
  ``--json`` emits the summary dict verbatim for machine consumption;
* ``export`` — flatten the trace to CSV (time, event, details) for
  spreadsheet spelunking;
* ``diff`` — compare two runs' summaries key by key (an A/B harness for
  "did my change alter the protocol's behaviour?").
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..obs import diff_summaries, load_trace_events, summarize_events
from ..report import format_table, write_csv


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Summarize, export, or diff DNScup trace files.")
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="derive headline numbers from a trace")
    summarize.add_argument("trace", help="JSONL trace file")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON instead of tables")
    summarize.add_argument("--output",
                           help="write the summary there instead of stdout")

    export = sub.add_parser("export", help="flatten a trace to CSV")
    export.add_argument("trace", help="JSONL trace file")
    export.add_argument("--output", required=True, help="CSV destination")

    diff = sub.add_parser("diff", help="compare two traces' summaries")
    diff.add_argument("trace_a", help="baseline JSONL trace")
    diff.add_argument("trace_b", help="candidate JSONL trace")
    return parser


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _summary_tables(summary: dict) -> str:
    """Human-oriented rendering of one trace summary."""
    sections: List[str] = []
    span = summary["span"]
    sections.append(format_table(
        ("events", "first", "last"),
        [(span["count"], _format_value(span["first"]),
          _format_value(span["last"]))],
        title="Trace span"))
    sections.append(format_table(
        ("event", "count"),
        sorted(summary["events"].items()),
        title="Event counts"))
    stat_rows = []
    for label, stats in (("ack_rtt", summary["notify"]["ack_rtt"]),
                         ("consistency_window",
                          summary["changes"]["consistency_window"])):
        stat_rows.append((label, stats["count"],
                          _format_value(stats["mean"]),
                          _format_value(stats["min"]),
                          _format_value(stats["max"])))
    sections.append(format_table(
        ("quantity", "count", "mean", "min", "max"), stat_rows,
        title="Derived timings (seconds)"))
    return "\n\n".join(sections)


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w") as stream:
            stream.write(text + "\n")
    else:
        print(text)


def cmd_summarize(args: argparse.Namespace) -> int:
    events = load_trace_events(args.trace)
    summary = summarize_events(events)
    if args.json:
        _emit(json.dumps(summary, sort_keys=True, indent=2), args.output)
    else:
        _emit(_summary_tables(summary), args.output)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    events = load_trace_events(args.trace)
    rows = [(f"{t!r}", name,
             " ".join(f"{key}={fields[key]}" for key in sorted(fields)))
            for t, name, fields in events]
    write_csv(args.output, ("t", "event", "details"), rows)
    print(f"{len(rows)} events written to {args.output}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    summary_a = summarize_events(load_trace_events(args.trace_a))
    summary_b = summarize_events(load_trace_events(args.trace_b))
    rows = [(key, _format_value(left), _format_value(right))
            for key, left, right in diff_summaries(summary_a, summary_b)]
    if not rows:
        print("summaries identical")
        return 0
    print(format_table(("key", args.trace_a, args.trace_b), rows,
                       title=f"{len(rows)} differing keys"))
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {"summarize": cmd_summarize, "export": cmd_export,
               "diff": cmd_diff}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
