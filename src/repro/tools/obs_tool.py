"""``repro-obs``: inspect, audit, and report on exported traces.

Works on the JSONL event files written by
:meth:`repro.obs.TraceBus.export_jsonl` (plus, for the wire
cross-check, captures from :meth:`repro.obs.WireCapture.export_jsonl`):

* ``summarize`` — recompute the headline numbers (notification ack RTT,
  consistency windows, lease churn, datagram fates) from the raw events;
  ``--json`` emits the summary dict verbatim for machine consumption;
* ``export`` — flatten the trace to CSV (time, event, details) for
  spreadsheet spelunking;
* ``diff`` — compare two runs' summaries key by key (an A/B harness for
  "did my change alter the protocol's behaviour?");
* ``spans`` — rebuild causal spans: per-change notification trees and
  per-pair lease lifecycles;
* ``audit`` — run the protocol invariant checker (completeness,
  termination, causality, budgets, staleness, trace/wire agreement);
  exits 1 when any :class:`repro.obs.Violation` is found;
* ``report`` — render the full markdown run report (overview,
  bucket-interpolated percentiles, per-domain timelines, audit);
* ``tail`` — follow a *growing* trace file and audit it incrementally
  (:class:`repro.obs.IncrementalAuditor`): each poll feeds only the
  newly appended complete lines, prints a rolling verdict plus p50/p95
  consistency-window percentiles, and holds memory bounded no matter
  how long the run — the live companion to post-hoc ``audit``;
* ``load`` — replay the trace through a
  :class:`repro.obs.LoadLedger`: per-server message-class totals and
  decayed rates, the hottest (server, domain, class) keys, and any
  renewal-storm episodes the :class:`repro.obs.StormDetector` flags.

Every subcommand warns on stderr about event names outside the
PROTOCOL.md §9 contract; ``--strict`` turns the warning into an error.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence, Set

from ..obs import (
    EVENT_NAMES,
    LATENCY_BUCKETS,
    TRACE_META,
    AuditLimits,
    AuditReport,
    Histogram,
    IncrementalAuditor,
    LoadLedger,
    StormDetector,
    Violation,
    audit_trace,
    build_spans,
    diff_summaries,
    load_capture,
    load_trace_events,
    render_report,
    summarize_events,
)
from ..obs.trace import TraceEvent
from ..report import format_table, write_csv


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Summarize, export, diff, audit, or report on "
                    "DNScup trace files.")
    parser.add_argument("--strict", action="store_true",
                        help="reject trace events whose names are outside "
                             "the PROTOCOL.md §9 contract (default: warn)")
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="derive headline numbers from a trace")
    summarize.add_argument("trace", help="JSONL trace file")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON instead of tables")
    summarize.add_argument("--output",
                           help="write the summary there instead of stdout")

    export = sub.add_parser("export", help="flatten a trace to CSV")
    export.add_argument("trace", help="JSONL trace file")
    export.add_argument("--output", required=True, help="CSV destination")

    diff = sub.add_parser("diff", help="compare two traces' summaries")
    diff.add_argument("trace_a", help="baseline JSONL trace")
    diff.add_argument("trace_b", help="candidate JSONL trace")

    spans = sub.add_parser(
        "spans", help="rebuild causal spans (changes and leases)")
    spans.add_argument("trace", help="JSONL trace file")
    spans.add_argument("--limit", type=int, default=20,
                       help="rows per table (default 20; 0 = all)")

    audit = sub.add_parser(
        "audit", help="check the protocol invariants over a trace")
    audit.add_argument("trace", help="JSONL trace file")
    _audit_arguments(audit)
    audit.add_argument("--json", action="store_true",
                       help="emit the audit report as JSON")
    audit.add_argument("--output",
                       help="write the report there instead of stdout")

    tail = sub.add_parser(
        "tail", help="follow a growing trace and audit it incrementally")
    tail.add_argument("trace", help="JSONL trace file (may still be "
                                    "growing; may not exist yet)")
    _limit_arguments(tail)
    tail.add_argument("--interval", type=float, default=0.2,
                      metavar="SECONDS",
                      help="poll interval while idle (default 0.2)")
    tail.add_argument("--once", action="store_true",
                      help="read to the current end of file, print the "
                           "verdict, and exit (no following)")
    tail.add_argument("--idle-exit", type=float, default=None,
                      metavar="SECONDS",
                      help="exit once the file has not grown for this "
                           "long (default: follow forever)")
    tail.add_argument("--json", action="store_true",
                      help="emit each rolling verdict as a JSON line")

    load = sub.add_parser(
        "load", help="attribute per-server/per-domain load and detect "
                     "renewal storms")
    load.add_argument("trace", help="JSONL trace file")
    load.add_argument("--top", type=int, default=10, metavar="N",
                      help="hottest (server, domain, class) keys to show "
                           "(default 10)")
    load.add_argument("--window", type=float, default=10.0,
                      metavar="SECONDS",
                      help="fast decay window for rates (default 10)")
    load.add_argument("--baseline", type=float, default=600.0,
                      metavar="SECONDS",
                      help="slow decay window for the storm baseline "
                           "(default 600)")
    load.add_argument("--json", action="store_true",
                      help="emit the ledger snapshot as JSON")
    load.add_argument("--output",
                      help="write the output there instead of stdout")

    report = sub.add_parser(
        "report", help="render the full markdown run report")
    report.add_argument("trace", help="JSONL trace file")
    _audit_arguments(report)
    report.add_argument("--title", default="DNScup run report",
                        help="report heading")
    report.add_argument("--output",
                        help="write the markdown there instead of stdout")
    return parser


def _audit_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--capture",
                        help="wire-capture JSONL for the trace/wire "
                             "cross-check")
    _limit_arguments(parser)


def _limit_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--storage-budget", type=int, default=None,
                        help="§4.2.1 storage budget: max live leases")
    parser.add_argument("--renewal-budget", type=float, default=None,
                        help="§4.2.2 communication budget: renewals/second")
    parser.add_argument("--renewal-window", type=float, default=60.0,
                        help="sliding window for the renewal budget, "
                             "seconds (default 60)")
    parser.add_argument("--max-staleness", type=float, default=None,
                        help="bound on per-holder staleness, seconds")


def _load(path: str, strict: bool,
          warned: Optional[Set[str]] = None) -> List[TraceEvent]:
    """Load a trace, enforcing or warning about the name contract.

    In lax mode each unknown event *name* is warned about exactly once
    per invocation, however many records carry it and however many
    traces mention it (``diff`` loads two) — ``warned`` carries the
    already-reported names across calls.
    """
    events = load_trace_events(path, strict=strict)
    if not strict:
        unknown = sorted({name for _t, name, _f in events
                          if name not in EVENT_NAMES
                          and name != TRACE_META})
        if warned is not None:
            unknown = [name for name in unknown if name not in warned]
            warned.update(unknown)
        if unknown:
            print(f"warning: {path}: events outside the PROTOCOL.md §9 "
                  f"contract: {', '.join(unknown)}", file=sys.stderr)
    return events


def _limits(args: argparse.Namespace) -> AuditLimits:
    return AuditLimits(storage_budget=args.storage_budget,
                       renewal_budget=args.renewal_budget,
                       renewal_window=args.renewal_window,
                       max_staleness=args.max_staleness)


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _summary_tables(summary: dict) -> str:
    """Human-oriented rendering of one trace summary."""
    sections: List[str] = []
    span = summary["span"]
    sections.append(format_table(
        ("events", "first", "last"),
        [(span["count"], _format_value(span["first"]),
          _format_value(span["last"]))],
        title="Trace span"))
    bus = summary.get("bus")
    if bus is not None:
        sections.append(format_table(
            ("emitted", "retained", "dropped", "cleared"),
            [(bus.get("emitted", "-"), bus.get("retained", "-"),
              bus.get("dropped", "-"), bus.get("cleared", "-"))],
            title="Trace bus (dropped = ring overflow, "
                  "cleared = explicit clear())"))
    sections.append(format_table(
        ("event", "count"),
        sorted(summary["events"].items()),
        title="Event counts"))
    stat_rows = []
    for label, stats in (("ack_rtt", summary["notify"]["ack_rtt"]),
                         ("consistency_window",
                          summary["changes"]["consistency_window"])):
        stat_rows.append((label, stats["count"],
                          _format_value(stats["mean"]),
                          _format_value(stats["min"]),
                          _format_value(stats["max"])))
    sections.append(format_table(
        ("quantity", "count", "mean", "min", "max"), stat_rows,
        title="Derived timings (seconds)"))
    return "\n\n".join(sections)


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w") as stream:
            stream.write(text + "\n")
    else:
        print(text)


def cmd_summarize(args: argparse.Namespace) -> int:
    events = _load(args.trace, args.strict, args.warned)
    summary = summarize_events(events)
    if args.json:
        _emit(json.dumps(summary, sort_keys=True, indent=2), args.output)
    else:
        _emit(_summary_tables(summary), args.output)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    events = _load(args.trace, args.strict, args.warned)
    rows = [(f"{t!r}", name,
             " ".join(f"{key}={fields[key]}" for key in sorted(fields)))
            for t, name, fields in events]
    write_csv(args.output, ("t", "event", "details"), rows)
    print(f"{len(rows)} events written to {args.output}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    summary_a = summarize_events(_load(args.trace_a, args.strict,
                                       args.warned))
    summary_b = summarize_events(_load(args.trace_b, args.strict,
                                       args.warned))
    rows = [(key, _format_value(left), _format_value(right))
            for key, left, right in diff_summaries(summary_a, summary_b)]
    if not rows:
        print("summaries identical")
        return 0
    print(format_table(("key", args.trace_a, args.trace_b), rows,
                       title=f"{len(rows)} differing keys"))
    return 1


def _clip(rows: Sequence, limit: int) -> Sequence:
    return rows if limit <= 0 else rows[:limit]


def cmd_spans(args: argparse.Namespace) -> int:
    events = _load(args.trace, args.strict, args.warned)
    spans = build_spans(events)
    change_rows = [(span.seq, span.name or "-", span.rrtype or "-",
                    _format_value(span.detected_t),
                    _format_value(span.settled_t),
                    _format_value(span.window()),
                    len(span.acked_legs()), len(span.legs),
                    sum(len(leg.retransmits) for leg in span.legs))
                   for span in spans.changes]
    print(format_table(
        ("seq", "name", "type", "detected", "settled", "window",
         "acked", "holders", "rexmits"),
        _clip(change_rows, args.limit),
        title=f"Change spans ({len(spans.changes)} total, "
              f"{len(spans.untracked)} untracked legs)"))
    print()
    lease_rows = [(span.cache, span.name, span.rrtype,
                   _format_value(span.granted_at),
                   _format_value(span.length), len(span.renewals),
                   span.end_kind or "open")
                  for span in spans.leases]
    print(format_table(
        ("cache", "name", "type", "granted", "length", "renewals", "end"),
        _clip(lease_rows, args.limit),
        title=f"Lease spans ({len(spans.leases)} total, "
              f"{sum(1 for s in spans.leases if s.open)} open)"))
    if spans.orphans:
        print()
        print(format_table(
            ("event index", "reason"), _clip(spans.orphans, args.limit),
            title=f"Orphan events ({len(spans.orphans)})"))
    return 0


def _audit(args: argparse.Namespace) -> AuditReport:
    events = _load(args.trace, args.strict, args.warned)
    capture = load_capture(args.capture) if args.capture else None
    return audit_trace(events, capture=capture, limits=_limits(args))


def cmd_audit(args: argparse.Namespace) -> int:
    report = _audit(args)
    if args.json:
        _emit(json.dumps(report.as_dict(), indent=2), args.output)
    else:
        checked = sum(report.checks.values())
        if report.ok:
            _emit(f"OK: 0 violations across {checked} checks "
                  f"({', '.join(sorted(report.checks)) or 'none run'})",
                  args.output)
        else:
            rows = [(v.kind, v.seq or "-", _format_value(v.t),
                     " ".join(str(i) for i in v.events), v.message)
                    for v in report.violations]
            _emit(format_table(
                ("kind", "seq", "t", "events", "message"), rows,
                title=f"{len(report.violations)} violation(s) across "
                      f"{checked} checks"), args.output)
    return 0 if report.ok else 1


class TraceFollower:
    """Incremental reader of a (possibly still growing) JSONL trace.

    Each :meth:`poll` reads whatever appeared since the last one and
    parses only *complete* lines; a trailing partial line — a writer
    caught mid-record — is buffered until its newline arrives, so a
    torn record is never parsed and nothing is ever re-read.  State is
    one file offset plus at most one pending line, whatever the file
    size: the memory bound ``tail`` advertises.
    """

    def __init__(self, path: str):
        self.path = path
        self._offset = 0
        self._partial = ""

    def poll(self) -> List[TraceEvent]:
        """Complete events appended since the last poll (may be [])."""
        with open(self.path, "r") as stream:
            stream.seek(self._offset)
            chunk = stream.read()
            self._offset = stream.tell()
        if not chunk:
            return []
        lines = (self._partial + chunk).split("\n")
        self._partial = lines.pop()
        events: List[TraceEvent] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            t = float(record.pop("t"))
            name = str(record.pop("event"))
            events.append((t, name, record))
        return events


def _tail_status(auditor: IncrementalAuditor, window_hist: Histogram,
                 fresh: Sequence[Violation], final: bool) -> dict:
    """One rolling-verdict record for ``tail``'s output."""
    report = auditor.report() if final else None
    violations = (len(report.violations) if report is not None
                  else len(auditor.permanent_violations))
    p50 = window_hist.quantile(50.0)
    p95 = window_hist.quantile(95.0)
    status = {
        "events": auditor.events_audited,
        "tracked_spans": auditor.tracked_spans,
        "peak_tracked_spans": auditor.peak_tracked_spans,
        "violations": violations,
        "new_violations": [v.as_dict() for v in fresh],
        "window_p50": p50,
        "window_p95": p95,
    }
    if final:
        assert report is not None
        status["final"] = True
        status["ok"] = report.ok
        status["checks"] = dict(report.checks)
    return status


def _print_tail_status(status: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(status, sort_keys=True), flush=True)
        return
    fmt = lambda v: "-" if v is None else f"{v:.6g}"  # noqa: E731
    label = "FINAL " if status.get("final") else ""
    verdict = ""
    if "ok" in status:
        verdict = " ok" if status["ok"] else " VIOLATIONS"
    print(f"{label}events={status['events']} "
          f"tracked={status['tracked_spans']} "
          f"peak={status['peak_tracked_spans']} "
          f"violations={status['violations']} "
          f"window p50={fmt(status['window_p50'])} "
          f"p95={fmt(status['window_p95'])}{verdict}", flush=True)
    for violation in status["new_violations"]:
        print(f"  VIOLATION {violation['kind']}: {violation['message']}",
              flush=True)


def cmd_tail(args: argparse.Namespace) -> int:
    window_hist = Histogram("notify.consistency_window", LATENCY_BUCKETS)
    auditor = IncrementalAuditor(limits=_limits(args),
                                 window_hist=window_hist)
    follower = TraceFollower(args.trace)
    idle = 0.0
    while True:
        try:
            batch = follower.poll()
        except FileNotFoundError:
            batch = []
        if batch:
            idle = 0.0
            unknown = sorted({name for _t, name, _f in batch
                              if name not in EVENT_NAMES
                              and name != TRACE_META
                              and name not in args.warned})
            if unknown:
                args.warned.update(unknown)
                message = (f"{args.trace}: events outside the "
                           f"PROTOCOL.md §9 contract: "
                           f"{', '.join(unknown)}")
                if args.strict:
                    print(f"error: {message}", file=sys.stderr)
                    return 2
                print(f"warning: {message}", file=sys.stderr)
            fresh: List[Violation] = []
            for event in batch:
                fresh.extend(auditor.feed(event))
            _print_tail_status(
                _tail_status(auditor, window_hist, fresh, final=False),
                args.json)
        else:
            idle += args.interval
        if args.once:
            break
        if args.idle_exit is not None and idle >= args.idle_exit:
            break
        if not batch:
            time.sleep(args.interval)
    report = auditor.report()
    _print_tail_status(_tail_status(auditor, window_hist, [], final=True),
                       args.json)
    return 0 if report.ok else 1


def _load_tables(snapshot: dict, top: List[dict]) -> str:
    """Human-oriented rendering of a load-ledger snapshot."""
    fmt = _format_value
    sections: List[str] = []
    sections.append(format_table(
        ("events", "servers", "keys", "domains", "rate (ev/s)",
         "peak rate"),
        [(snapshot["total"], len(snapshot["servers"]), snapshot["keys"],
          snapshot["domains"], fmt(snapshot["rate"]),
          fmt(snapshot["peak_rate"]))],
        title="Load totals"))
    server_rows = []
    for name, load in snapshot["servers"].items():
        server_rows.append((
            name, load["count"], fmt(load["rate"]), fmt(load["baseline"]),
            fmt(load["peak_rate"]), fmt(load["rate_quantiles"]["p99"]),
            fmt(load["gap"]["p50"]), fmt(load["depth"]["p99"])))
    if server_rows:
        sections.append(format_table(
            ("server", "events", "rate", "baseline", "peak", "rate p99",
             "gap p50", "depth p99"), server_rows,
            title="Per-server load (decayed rates, P² sketch quantiles)"))
    if top:
        sections.append(format_table(
            ("server", "domain", "class", "count", "rate"),
            [(row["server"], row["domain"], row["class"], row["count"],
              fmt(row["rate"])) for row in top],
            title="Hottest keys"))
    storms = snapshot["storms"]
    episode_rows = [
        (episode["server"], fmt(episode["start"]),
         fmt(episode.get("end")), fmt(episode["peak_rate"]),
         fmt(episode["baseline"]), episode["events"])
        for episode in storms["episodes"]]
    sections.append(format_table(
        ("server", "start", "end", "peak rate", "baseline", "events"),
        episode_rows,
        title=f"Storm episodes (active: {storms['active']})"))
    return "\n\n".join(sections)


def cmd_load(args: argparse.Namespace) -> int:
    events = _load(args.trace, args.strict, args.warned)
    ledger = LoadLedger(window=args.window, baseline=args.baseline,
                        detector=StormDetector())
    # Replay in timestamp order (stable for ties) so decayed rates and
    # storm hysteresis see the same sequence the run produced, even if
    # the file interleaves merged traces.
    for event in sorted(events, key=lambda item: item[0]):
        ledger.on_event(event)
    snapshot = ledger.snapshot()
    snapshot["rate"] = ledger.rate()
    snapshot["peak_rate"] = ledger.peak_rate()
    top = ledger.top(args.top)
    if args.json:
        snapshot["top"] = top
        _emit(json.dumps(snapshot, sort_keys=True, indent=2), args.output)
    else:
        _emit(_load_tables(snapshot, top), args.output)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    events = _load(args.trace, args.strict, args.warned)
    capture = load_capture(args.capture) if args.capture else None
    audit = audit_trace(events, capture=capture, limits=_limits(args))
    _emit(render_report(events, capture=capture, title=args.title,
                        audit=audit), args.output)
    return 0 if audit.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    #: Unknown event names already warned about in this invocation.
    args.warned = set()
    handler = {"summarize": cmd_summarize, "export": cmd_export,
               "diff": cmd_diff, "spans": cmd_spans,
               "audit": cmd_audit, "report": cmd_report,
               "tail": cmd_tail, "load": cmd_load}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
