"""``repro-testbed``: run the §5.2 prototype testbed end to end.

Builds the Figure 7 topology, resolves every domain from both caches,
applies dynamic updates, and prints the validation results the paper
reports (consistency, message sizes vs the 512-byte bound).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..dnslib import MAX_UDP_PAYLOAD, Rcode
from ..report import format_table
from ..sim import Testbed, TestbedConfig


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-testbed",
        description="DNScup prototype testbed demo (paper §5.2/Figure 7).")
    parser.add_argument("--zones", type=int, default=40)
    parser.add_argument("--updates", type=int, default=5,
                        help="dynamic updates to apply (default 5)")
    parser.add_argument("--no-dnscup", action="store_true",
                        help="run the weak-consistency (TTL only) baseline")
    parser.add_argument("--loss", type=float, default=0.0,
                        help="LAN packet loss rate (default 0)")
    parser.add_argument("--seed", type=int, default=5)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    testbed = Testbed(TestbedConfig(
        zone_count=args.zones, dnscup_enabled=not args.no_dnscup,
        network_seed=args.seed, loss_rate=args.loss))
    answers0 = testbed.lookup_all(0)
    answers1 = testbed.lookup_all(1)
    resolved = sum(1 for a in answers0.values() if a) \
        + sum(1 for a in answers1.values() if a)
    updates_ok = 0
    for index, domain in enumerate(testbed.domains[:args.updates]):
        rcode = testbed.dynamic_update(domain.name, f"172.20.1.{index + 1}")
        if rcode == Rcode.NOERROR:
            updates_ok += 1
    testbed.run()
    rows = [
        ("zones", len(testbed.zones)),
        ("domains", len(testbed.domains)),
        ("lookups resolved", f"{resolved}/{2 * len(testbed.domains)}"),
        ("dynamic updates accepted", f"{updates_ok}/{args.updates}"),
        ("slaves consistent", testbed.slaves_consistent()),
        ("max message size", f"{testbed.max_message_size()} B "
                             f"(bound {MAX_UDP_PAYLOAD} B)"),
    ]
    if testbed.dnscup is not None:
        stats = testbed.dnscup.notification.stats
        rows += [
            ("leases granted", testbed.dnscup.listening.stats.grants),
            ("CACHE-UPDATEs sent", stats.notifications_sent),
            ("CACHE-UPDATE acks", stats.acks_received),
        ]
    print(format_table(("check", "result"), rows,
                       title="DNScup testbed validation"))
    healthy = (resolved == 2 * len(testbed.domains)
               and updates_ok == args.updates
               and testbed.slaves_consistent()
               and testbed.max_message_size() <= MAX_UDP_PAYLOAD)
    return 0 if healthy else 1


if __name__ == "__main__":
    sys.exit(main())
