"""``repro-live``: run the Figure 7 testbed over real loopback sockets.

Builds a :class:`~repro.sim.livetestbed.LiveTestbed` — the §5.2
topology on a :class:`~repro.net.clock.LiveClock` and real UDP/TCP
sockets on ``127.0.0.1`` — drives the same validation scenario as the
simulated fig7 bench (:func:`~repro.sim.testbed.run_figure7_scenario`),
audits the wall-clock trace against the full protocol invariant set,
and exits 1 on any violation.  ``--export DIR`` writes the trace, wire
capture, and metrics snapshot so the run can be re-audited offline with
``repro-obs``::

    repro-live --export out/
    repro-obs --strict audit out/live_trace.jsonl --capture out/live_capture.jsonl

This is the command the CI ``live-transport`` job gates on: a push that
breaks the live transport (or any protocol invariant over it) fails
here, not in production.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from ..net.telemetry import parse_exposition
from ..obs import audit_trace
from ..sim import TestbedConfig, run_figure7_scenario
from ..sim.livetestbed import LiveTestbed, loopback_available


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description="Run the Figure 7 testbed over real asyncio loopback "
                    "sockets and audit the run.")
    parser.add_argument("--updates", type=int, default=5,
                        help="dynamic updates to apply (default 5)")
    parser.add_argument("--zones", type=int, default=40,
                        help="zones to build (default 40, the paper's count)")
    parser.add_argument("--export", metavar="DIR",
                        help="write live_trace.jsonl, live_capture.jsonl and "
                             "live_metrics.json under DIR")
    parser.add_argument("--json", action="store_true",
                        help="print the run summary as JSON")
    parser.add_argument("--telemetry", action="store_true",
                        help="stream the run: incremental audit on the "
                             "trace tap, periodic registry snapshots, and "
                             "a live /metrics endpoint scraped mid-run; "
                             "fails fast on the first violation")
    parser.add_argument("--telemetry-interval", type=float, default=0.05,
                        metavar="SECONDS",
                        help="snapshot tick interval (default 0.05)")
    parser.add_argument("--sanitize", action="store_true",
                        help="arm the runtime concurrency sanitizer "
                             "(blocking slices, never-awaited coroutines, "
                             "wrong-context mutations, task leaks) and "
                             "fail the run on any report")
    parser.add_argument("--skip-unavailable", action="store_true",
                        help="exit 0 (not 1) when loopback UDP is "
                             "unavailable on this platform")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if not loopback_available():
        print("repro-live: loopback UDP unavailable on this platform",
              file=sys.stderr)
        return 0 if args.skip_unavailable else 1
    testbed = LiveTestbed(TestbedConfig(observability=True,
                                        zone_count=args.zones),
                          sanitize=args.sanitize)
    telemetry_ok = True
    sanitize_ok = True
    try:
        scrape: dict = {}
        if args.telemetry:
            plane = testbed.enable_telemetry(
                interval=args.telemetry_interval)
            _arm_midrun_scrape(testbed, plane, scrape)
        summary = dict(run_figure7_scenario(testbed, updates=args.updates))
        report = testbed.audit()
        obs = testbed.observability
        summary["trace_events"] = obs.trace.emitted
        summary["captured_datagrams"] = len(obs.capture)
        summary["audit_ok"] = report.ok
        summary["violations"] = [v.as_dict() for v in report.violations]
        if args.telemetry:
            summary["telemetry"] = _finish_telemetry(testbed, plane, scrape)
            telemetry_ok = bool(summary["telemetry"]["ok"])
        if args.sanitize:
            sanitizer = testbed.sanitizer
            reports = (sanitizer.report()
                       if sanitizer is not None else [])
            sanitize_ok = not reports
            summary["sanitizer"] = {
                "ok": sanitize_ok,
                "reports": [f.as_dict() for f in reports],
            }
        if args.export:
            os.makedirs(args.export, exist_ok=True)
            obs.trace.export_jsonl(
                os.path.join(args.export, "live_trace.jsonl"))
            obs.capture.export_jsonl(
                os.path.join(args.export, "live_capture.jsonl"))
            obs.registry.export_json(
                os.path.join(args.export, "live_metrics.json"))
    finally:
        testbed.close()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        _print_summary(summary)
    return 0 if report.ok and telemetry_ok and sanitize_ok else 1


def _arm_midrun_scrape(testbed: LiveTestbed, plane, scrape: dict) -> None:
    """Schedule one real HTTP scrape of the endpoint while traffic runs.

    A daemon timer (never holds off quiescence) launches the scrape as
    a loop task; if the run finishes before the timer fires,
    :func:`_finish_telemetry` falls back to a post-run scrape.
    """
    async def _do() -> None:
        try:
            scrape["body"] = await plane.ascrape()
            scrape["midrun"] = True
        except Exception as exc:
            scrape["error"] = exc

    def _launch() -> None:
        # spawn() retains the task, surfaces its exception at the next
        # drain, and holds quiescence until the scrape lands.
        testbed.simulator.spawn(_do())

    testbed.simulator.schedule(0.05, _launch, daemon=True)


def _finish_telemetry(testbed: LiveTestbed, plane, scrape: dict) -> dict:
    """Close out the streaming plane and build its summary block.

    The final incremental verdict must agree with the post-hoc batch
    audit of the same trace — identical violation multiset and check
    counts — and the endpoint must have served a parseable exposition;
    either failure turns ``ok`` False (and the exit code nonzero).
    """
    plane.stop()
    if "body" not in scrape:
        try:
            scrape["body"] = plane.scrape()
            scrape["midrun"] = False
        except Exception as exc:
            scrape.setdefault("error", exc)
    samples = 0
    scrape_error = scrape.get("error")
    if "body" in scrape:
        try:
            samples = len(parse_exposition(scrape["body"]))
        except ValueError as exc:
            scrape_error = exc
    stream = plane.auditor.report()
    batch = audit_trace(list(testbed.observability.trace.events))

    def _key(violation) -> tuple:
        return (violation.kind, violation.message, tuple(violation.events))

    verdict_match = (
        sorted(_key(v) for v in stream.violations)
        == sorted(_key(v) for v in batch.violations)
        and stream.checks == batch.checks)
    host, port = plane.endpoint
    ok = (scrape_error is None and samples > 0 and verdict_match
          and stream.ok == batch.ok)
    return {
        "endpoint": f"{host}:{port}",
        "ticks": plane.ticks,
        "scrape_midrun": bool(scrape.get("midrun", False)),
        "scrape_error": (None if scrape_error is None
                         else str(scrape_error)),
        "scrape_samples": samples,
        "incremental_ok": stream.ok,
        "incremental_events": stream.events_audited,
        "incremental_violations": len(stream.violations),
        "peak_tracked_spans": stream.peak_tracked_spans,
        "verdict_match": verdict_match,
        "ok": ok,
    }


def _print_summary(summary: dict) -> None:
    lines: List[str] = [
        "Figure 7 over live loopback sockets",
        f"  zones / domains        {summary['zones']} / {summary['domains']}",
        f"  dynamic updates        {summary['updates_applied']}",
        f"  CACHE-UPDATEs / acks   {summary.get('notifications_sent', 0)}"
        f" / {summary.get('acks_received', 0)}",
        f"  max datagram (B)       {summary['max_message_size']}",
        f"  trace events           {summary['trace_events']}",
        f"  captured datagrams     {summary['captured_datagrams']}",
        f"  audit                  "
        f"{'ok' if summary['audit_ok'] else 'VIOLATIONS'}",
    ]
    for violation in summary["violations"]:
        lines.append(f"    {violation['kind']}: {violation['message']}")
    sanitizer = summary.get("sanitizer")
    if sanitizer:
        lines.append(
            f"  sanitizer              "
            f"{'clean' if sanitizer['ok'] else 'REPORTS'}")
        for entry in sanitizer["reports"]:
            lines.append(
                f"    {entry['code']} {entry['path']}:{entry['line']} "
                f"{entry['message']}")
    telemetry = summary.get("telemetry")
    if telemetry:
        lines.extend([
            f"  telemetry endpoint     {telemetry['endpoint']} "
            f"({telemetry['ticks']} ticks)",
            f"  scrape                 "
            f"{telemetry['scrape_samples']} samples"
            f"{' (mid-run)' if telemetry['scrape_midrun'] else ''}"
            + (f" ERROR: {telemetry['scrape_error']}"
               if telemetry['scrape_error'] else ""),
            f"  incremental audit      "
            f"{'ok' if telemetry['incremental_ok'] else 'VIOLATIONS'} "
            f"({telemetry['incremental_events']} events, peak "
            f"{telemetry['peak_tracked_spans']} tracked spans, "
            f"verdict {'matches' if telemetry['verdict_match'] else 'DIVERGES from'} batch audit)",
        ])
    print("\n".join(lines))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
