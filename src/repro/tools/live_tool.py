"""``repro-live``: run the Figure 7 testbed over real loopback sockets.

Builds a :class:`~repro.sim.livetestbed.LiveTestbed` — the §5.2
topology on a :class:`~repro.net.clock.LiveClock` and real UDP/TCP
sockets on ``127.0.0.1`` — drives the same validation scenario as the
simulated fig7 bench (:func:`~repro.sim.testbed.run_figure7_scenario`),
audits the wall-clock trace against the full protocol invariant set,
and exits 1 on any violation.  ``--export DIR`` writes the trace, wire
capture, and metrics snapshot so the run can be re-audited offline with
``repro-obs``::

    repro-live --export out/
    repro-obs --strict audit out/live_trace.jsonl --capture out/live_capture.jsonl

This is the command the CI ``live-transport`` job gates on: a push that
breaks the live transport (or any protocol invariant over it) fails
here, not in production.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from ..sim import TestbedConfig, run_figure7_scenario
from ..sim.livetestbed import LiveTestbed, loopback_available


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description="Run the Figure 7 testbed over real asyncio loopback "
                    "sockets and audit the run.")
    parser.add_argument("--updates", type=int, default=5,
                        help="dynamic updates to apply (default 5)")
    parser.add_argument("--zones", type=int, default=40,
                        help="zones to build (default 40, the paper's count)")
    parser.add_argument("--export", metavar="DIR",
                        help="write live_trace.jsonl, live_capture.jsonl and "
                             "live_metrics.json under DIR")
    parser.add_argument("--json", action="store_true",
                        help="print the run summary as JSON")
    parser.add_argument("--skip-unavailable", action="store_true",
                        help="exit 0 (not 1) when loopback UDP is "
                             "unavailable on this platform")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if not loopback_available():
        print("repro-live: loopback UDP unavailable on this platform",
              file=sys.stderr)
        return 0 if args.skip_unavailable else 1
    testbed = LiveTestbed(TestbedConfig(observability=True,
                                        zone_count=args.zones))
    try:
        summary = dict(run_figure7_scenario(testbed, updates=args.updates))
        report = testbed.audit()
        obs = testbed.observability
        summary["trace_events"] = obs.trace.emitted
        summary["captured_datagrams"] = len(obs.capture)
        summary["audit_ok"] = report.ok
        summary["violations"] = [v.as_dict() for v in report.violations]
        if args.export:
            os.makedirs(args.export, exist_ok=True)
            obs.trace.export_jsonl(
                os.path.join(args.export, "live_trace.jsonl"))
            obs.capture.export_jsonl(
                os.path.join(args.export, "live_capture.jsonl"))
            obs.registry.export_json(
                os.path.join(args.export, "live_metrics.json"))
    finally:
        testbed.close()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        _print_summary(summary)
    return 0 if report.ok else 1


def _print_summary(summary: dict) -> None:
    lines: List[str] = [
        "Figure 7 over live loopback sockets",
        f"  zones / domains        {summary['zones']} / {summary['domains']}",
        f"  dynamic updates        {summary['updates_applied']}",
        f"  CACHE-UPDATEs / acks   {summary.get('notifications_sent', 0)}"
        f" / {summary.get('acks_received', 0)}",
        f"  max datagram (B)       {summary['max_message_size']}",
        f"  trace events           {summary['trace_events']}",
        f"  captured datagrams     {summary['captured_datagrams']}",
        f"  audit                  "
        f"{'ok' if summary['audit_ok'] else 'VIOLATIONS'}",
    ]
    for violation in summary["violations"]:
        lines.append(f"    {violation['kind']}: {violation['message']}")
    print("\n".join(lines))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
