"""``repro-probe``: run the §3 DNS-dynamics measurement campaign.

Generates the domain collection, probes every domain per Table 1, and
prints the per-class summary (Figure 2's statistics); optionally writes
the per-domain results as CSV.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from ..measurement import DnsDynamicsProber, oracle_from_specs, summarize_campaign
from ..report import format_table, write_csv
from ..traces import PopulationConfig, generate_population


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for this tool."""
    parser = argparse.ArgumentParser(
        prog="repro-probe",
        description="DNS dynamics measurement campaign (paper §3).")
    parser.add_argument("--regular-per-tld", type=int, default=40)
    parser.add_argument("--cdn", type=int, default=30)
    parser.add_argument("--dyn", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--max-probes", type=int, default=800,
                        help="cap probes per domain (0 = full Table 1 "
                             "durations)")
    parser.add_argument("--output", help="per-domain results CSV")
    return parser


def _human(seconds: float) -> str:
    if math.isinf(seconds):
        return "never"
    for unit, size in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= size:
            return f"{seconds / size:.1f}{unit}"
    return f"{seconds:.0f}s"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    population = generate_population(PopulationConfig(
        regular_per_tld=args.regular_per_tld, cdn_count=args.cdn,
        dyn_count=args.dyn, seed=args.seed))
    cap = None if args.max_probes == 0 else args.max_probes
    prober = DnsDynamicsProber(oracle_from_specs(population),
                               max_probes_per_domain=cap)
    results = prober.run_campaign(population)
    summaries = summarize_campaign(results)
    rows = []
    for index, summary in summaries.items():
        shares = summary.tally.shares()
        rows.append((index, summary.domains,
                     f"{summary.mean_change_frequency:.3%}",
                     f"{summary.changed_share:.1%}",
                     _human(summary.mean_lifetime),
                     f"{summary.physical_share:.0%}",
                     f"{shares['rotation']:.0%}"))
    print(format_table(
        ("class", "domains", "mean freq", "changed", "lifetime",
         "physical", "rotation"),
        rows, title=f"DNS dynamics over {len(population)} domains"))
    if args.output:
        write_csv(args.output,
                  ("name", "class", "probes", "changes", "frequency",
                   "relocation", "growth", "rotation"),
                  [(r.name.to_text(), r.ttl_class.index, r.probes,
                    r.changes, f"{r.change_frequency:.6f}",
                    r.tally.relocation, r.tally.growth, r.tally.rotation)
                   for r in results])
        print(f"per-domain results written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
