"""Causal spans: reconstructing protocol stories from raw trace events.

A flat JSONL trace records *moments*; the protocol's guarantees are
about *stories* — one DN2IP change fanning out to every lease holder and
settling, one lease living from grant through renewals to expiry.  This
module rebuilds those stories:

* :class:`ChangeSpan` — one detected change and its notification tree:
  ``change.detected`` → per-recipient ``notify.send`` (plus
  ``notify.retransmit``) → ``notify.ack`` / ``notify.timeout`` →
  ``change.settled``, correlated by the detection module's ``seq``;
* :class:`LeaseSpan` — one lease lifecycle on a (cache, name, rrtype)
  pair: ``lease.grant`` → ``lease.renew``* → ``lease.expire`` /
  ``lease.revoke`` (or still open at end of trace).

Matching is *positional*: events are consumed in trace order, so an
acknowledgement only ever resolves a send that precedes it.  Events
that tell no coherent story — an ack with no outstanding send, an
expiry with no live lease — land in :attr:`SpanSet.orphans`, which the
auditor (:mod:`repro.obs.audit`) treats as causality violations.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .trace import (
    CHANGE_DETECTED,
    CHANGE_SETTLED,
    LEASE_EXPIRE,
    LEASE_GRANT,
    LEASE_RENEW,
    LEASE_REVOKE,
    NOTIFY_ACK,
    NOTIFY_RETRANSMIT,
    NOTIFY_SEND,
    NOTIFY_TIMEOUT,
    TraceEvent,
)

#: A lease span's identity: (cache endpoint, owner name, rrtype) — the
#: (domain, nameserver) pair of the paper, typed per record.
LeaseKey = Tuple[str, str, str]


@dataclasses.dataclass
class NotificationLeg:
    """One recipient's branch of a change's notification tree."""

    seq: int
    cache: str
    name: Optional[str]
    rrtype: Optional[str]
    msg_id: Optional[int]
    send_index: int
    send_t: float
    #: ``(event index, t, attempt)`` per retry-timer firing.
    retransmits: List[Tuple[int, float, int]] = dataclasses.field(
        default_factory=list)
    ack_index: Optional[int] = None
    ack_t: Optional[float] = None
    rtt: Optional[float] = None
    timeout_index: Optional[int] = None
    timeout_t: Optional[float] = None
    timeout_reason: Optional[str] = None

    @property
    def acked(self) -> bool:
        """True when this leg resolved with an acknowledgement."""
        return self.ack_index is not None

    @property
    def resolved(self) -> bool:
        """True when this leg reached an ack or a timeout."""
        return self.ack_index is not None or self.timeout_index is not None

    @property
    def resolution_index(self) -> Optional[int]:
        """Event index of the ack/timeout, or None while unresolved."""
        return self.ack_index if self.ack_index is not None \
            else self.timeout_index

    @property
    def attempts(self) -> int:
        """Datagram transmissions: the send plus every retransmit."""
        return 1 + len(self.retransmits)


@dataclasses.dataclass
class ChangeSpan:
    """One detected change and every notification it caused."""

    seq: int
    detected_index: Optional[int] = None
    detected_t: Optional[float] = None
    zone: Optional[str] = None
    name: Optional[str] = None
    rrtype: Optional[str] = None
    kind: Optional[str] = None
    legs: List[NotificationLeg] = dataclasses.field(default_factory=list)
    settled_index: Optional[int] = None
    settled_t: Optional[float] = None
    #: The ``window`` field carried by ``change.settled`` (None when no
    #: leg acked — the change fell back to TTL expiry).
    settled_window: Optional[float] = None
    settled_acked: Optional[int] = None
    settled_failed: Optional[int] = None

    @property
    def settled(self) -> bool:
        """True once a ``change.settled`` event was seen for this seq."""
        return self.settled_index is not None

    def acked_legs(self) -> List[NotificationLeg]:
        """The legs that resolved with an acknowledgement."""
        return [leg for leg in self.legs if leg.acked]

    def window(self) -> Optional[float]:
        """The consistency window recomputed from the legs.

        Detection time to the *last* acknowledgement — when every
        reachable lease holder is consistent again.  None when the
        detection event is missing or no leg acked.
        """
        if self.detected_t is None:
            return None
        ack_times = [leg.ack_t for leg in self.legs if leg.ack_t is not None]
        return max(ack_times) - self.detected_t if ack_times else None


@dataclasses.dataclass
class LeaseSpan:
    """One lease lifecycle on a (cache, name, rrtype) pair."""

    cache: str
    name: str
    rrtype: str
    grant_index: int
    granted_at: float
    length: float
    #: ``(event index, t, new length)`` per renewal; each renewal
    #: restarts the term from its own timestamp.
    renewals: List[Tuple[int, float, float]] = dataclasses.field(
        default_factory=list)
    end_index: Optional[int] = None
    end_t: Optional[float] = None
    end_kind: Optional[str] = None  # "expire" | "revoke" | None (open)

    @property
    def key(self) -> LeaseKey:
        """The pair identity this span belongs to."""
        return (self.cache, self.name, self.rrtype)

    @property
    def open(self) -> bool:
        """True while no expire/revoke event has closed this span."""
        return self.end_index is None

    def expiry_as_of(self, index: int) -> float:
        """The promised expiry time, considering events before ``index``.

        The grant starts the term; every renewal with an event index
        below ``index`` restarts it.  This is what the server's lazily
        swept table believed at that point in the trace.
        """
        start, length = self.granted_at, self.length
        for renew_index, t, new_length in self.renewals:
            if renew_index < index:
                start, length = t, new_length
        return start + length

    def covers(self, t: float, index: int) -> bool:
        """True when this lease was live at time ``t``, event ``index``.

        Live means: granted strictly before ``index`` in trace order,
        not yet ended (expire/revoke) before ``index``, and the promised
        term still running (``t < expiry``, matching
        :meth:`repro.core.lease.Lease.is_valid`'s strict bound).
        """
        if self.grant_index >= index:
            return False
        if self.end_index is not None and self.end_index < index:
            return False
        return t < self.expiry_as_of(index)


@dataclasses.dataclass
class SpanSet:
    """Every story one trace tells, plus the events telling none."""

    changes: List[ChangeSpan]
    leases: List[LeaseSpan]
    #: Untracked (seq 0) notification legs — hand-fed changes with no
    #: detection record; matched FIFO per (cache, name, rrtype).
    untracked: List[NotificationLeg]
    #: ``(event index, reason)`` for events that matched no span.
    orphans: List[Tuple[int, str]]

    def change_for(self, seq: int) -> Optional[ChangeSpan]:
        """The change span with correlation id ``seq``, if any."""
        for span in self.changes:
            if span.seq == seq:
                return span
        return None

    def holders_at(self, name: str, rrtype: str, t: float,
                   index: int) -> List[LeaseSpan]:
        """Lease spans live on (name, rrtype) at time ``t``/``index``."""
        return [span for span in self.leases
                if span.name == name and span.rrtype == rrtype
                and span.covers(t, index)]


def _as_seq(fields: Dict[str, object]) -> int:
    value = fields.get("seq")
    return int(value) if value is not None else 0


def build_spans(events: Sequence[TraceEvent]) -> SpanSet:
    """Reconstruct change and lease spans from one event stream.

    ``events`` must be a complete trace in emission order (the order
    :meth:`repro.obs.TraceBus.export_jsonl` preserves); a ring-truncated
    trace reconstructs, but decapitated spans surface as orphans.
    """
    changes: List[ChangeSpan] = []
    by_seq: Dict[int, ChangeSpan] = {}
    leases: List[LeaseSpan] = []
    open_leases: Dict[LeaseKey, LeaseSpan] = {}
    untracked: List[NotificationLeg] = []
    orphans: List[Tuple[int, str]] = []

    def span_for(seq: int) -> ChangeSpan:
        span = by_seq.get(seq)
        if span is None:
            span = by_seq[seq] = ChangeSpan(seq=seq)
            changes.append(span)
        return span

    # Unresolved legs indexed by their matching identity, in send order:
    # tracked legs match on (seq, cache), untracked (seq 0) legs on
    # (cache, name, rrtype).  Resolved legs are discarded lazily from
    # the front, so matching stays the oldest-unresolved-first scan of
    # the naive implementation at amortized O(1) per event — a 10^5-leg
    # fan-out (the renewal-storm bench) would otherwise audit in O(n²).
    pending: Dict[Tuple[object, ...], Deque[NotificationLeg]] = {}

    def leg_key(seq: int, cache: str, name: Optional[str],
                rrtype: Optional[str]) -> Tuple[object, ...]:
        return (seq, cache) if seq else (0, cache, name, rrtype)

    def open_leg(seq: int, cache: str, name: Optional[str],
                 rrtype: Optional[str]) -> Optional[NotificationLeg]:
        """The oldest unresolved leg this event can belong to."""
        queue = pending.get(leg_key(seq, cache, name, rrtype))
        if queue is None:
            return None
        while queue and queue[0].resolved:
            queue.popleft()
        return queue[0] if queue else None

    for index, (t, event, fields) in enumerate(events):
        if event == CHANGE_DETECTED:
            seq = _as_seq(fields)
            if not seq:
                orphans.append((index, "change.detected without seq"))
                continue
            span = span_for(seq)
            if span.detected_index is not None:
                orphans.append((index, f"duplicate change.detected seq={seq}"))
                continue
            span.detected_index = index
            span.detected_t = t
            span.zone = fields.get("zone")
            span.name = fields.get("name")
            span.rrtype = fields.get("rrtype")
            span.kind = fields.get("kind")
        elif event == NOTIFY_SEND:
            seq = _as_seq(fields)
            leg = NotificationLeg(
                seq=seq, cache=str(fields.get("cache")),
                name=fields.get("name"), rrtype=fields.get("rrtype"),
                msg_id=fields.get("id"), send_index=index, send_t=t)
            if seq:
                span_for(seq).legs.append(leg)
            else:
                untracked.append(leg)
            pending.setdefault(
                leg_key(seq, leg.cache, leg.name, leg.rrtype),
                collections.deque()).append(leg)
        elif event == NOTIFY_RETRANSMIT:
            leg = open_leg(_as_seq(fields), str(fields.get("cache")),
                           fields.get("name"), fields.get("rrtype"))
            if leg is None:
                orphans.append((index, "retransmit without outstanding send"))
                continue
            leg.retransmits.append((index, t, int(fields.get("attempt", 0))))
        elif event == NOTIFY_ACK:
            leg = open_leg(_as_seq(fields), str(fields.get("cache")),
                           fields.get("name"), fields.get("rrtype"))
            if leg is None:
                orphans.append((index, "ack without outstanding send"))
                continue
            leg.ack_index = index
            leg.ack_t = t
            rtt = fields.get("rtt")
            leg.rtt = float(rtt) if rtt is not None else None
        elif event == NOTIFY_TIMEOUT:
            leg = open_leg(_as_seq(fields), str(fields.get("cache")),
                           fields.get("name"), fields.get("rrtype"))
            if leg is None:
                orphans.append((index, "timeout without outstanding send"))
                continue
            leg.timeout_index = index
            leg.timeout_t = t
            leg.timeout_reason = fields.get("reason")
        elif event == CHANGE_SETTLED:
            seq = _as_seq(fields)
            if not seq:
                orphans.append((index, "change.settled without seq"))
                continue
            span = span_for(seq)
            if span.settled_index is not None:
                orphans.append((index, f"duplicate change.settled seq={seq}"))
                continue
            span.settled_index = index
            span.settled_t = t
            window = fields.get("window")
            span.settled_window = float(window) if window is not None else None
            acked = fields.get("acked")
            span.settled_acked = int(acked) if acked is not None else None
            failed = fields.get("failed")
            span.settled_failed = int(failed) if failed is not None else None
        elif event in (LEASE_GRANT, LEASE_RENEW):
            key: LeaseKey = (str(fields.get("cache")),
                             str(fields.get("name")),
                             str(fields.get("rrtype")))
            length = float(fields.get("length", 0.0))
            current = open_leases.get(key)
            if event == LEASE_RENEW and current is not None:
                current.renewals.append((index, t, length))
                continue
            # A fresh grant supersedes any span still open on the pair
            # (the table reclaims expired entries before re-granting, so
            # a live trace closes it with lease.expire first).
            if current is not None:
                current.end_index = index
                current.end_t = t
                current.end_kind = "superseded"
            span = LeaseSpan(cache=key[0], name=key[1], rrtype=key[2],
                             grant_index=index, granted_at=t, length=length)
            leases.append(span)
            open_leases[key] = span
        elif event in (LEASE_EXPIRE, LEASE_REVOKE):
            key = (str(fields.get("cache")), str(fields.get("name")),
                   str(fields.get("rrtype")))
            current = open_leases.pop(key, None)
            if current is None:
                orphans.append((index, f"{event} without a live lease"))
                continue
            current.end_index = index
            current.end_t = t
            current.end_kind = ("expire" if event == LEASE_EXPIRE
                                else "revoke")
    return SpanSet(changes=changes, leases=leases, untracked=untracked,
                   orphans=orphans)
