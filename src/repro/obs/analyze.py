"""Deriving the evaluation's headline numbers from a raw event trace.

The paper's quantities — ack round-trip time, consistency window,
lease-churn counts, datagram fates — are all recomputable from the
structured trace alone, with no access to the live components' counters.
:func:`summarize_events` is that recomputation; the observability tests
and benches assert it reproduces the live registry's numbers *exactly*
(same float additions in the same order), which is what makes the trace
a trustworthy substitute for bespoke end-of-run counters.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .trace import (
    CHANGE_DETECTED,
    LEASE_EXPIRE,
    LEASE_GRANT,
    LEASE_RENEW,
    LEASE_REVOKE,
    NET_DELIVER,
    NET_DROP,
    NET_DUPLICATE,
    NET_UNREACHABLE,
    NOTIFY_ACK,
    NOTIFY_RETRANSMIT,
    NOTIFY_SEND,
    NOTIFY_TIMEOUT,
    TRACE_META,
    TraceEvent,
)


def _running_stats(values: Iterable[float]) -> Dict[str, Optional[float]]:
    """count/sum/mean/min/max with the sum taken in iteration order."""
    count = 0
    total = 0.0
    low = math.inf
    high = -math.inf
    for value in values:
        count += 1
        total += value
        if value < low:
            low = value
        if value > high:
            high = value
    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else None,
        "min": low if count else None,
        "max": high if count else None,
    }


def consistency_windows(events: Sequence[TraceEvent]
                        ) -> List[Tuple[int, float]]:
    """Per-change consistency windows recomputed from raw events.

    For each ``change.detected`` carrying a correlation ``seq``, the
    window is the time from detection until the *last* acknowledgement
    for that change — i.e. when every lease holder is consistent again.
    Changes with no acknowledged notification have no window (they fell
    back to TTL expiry, DNScup's graceful degradation).

    Returns ``(seq, window)`` pairs ordered by the moment the change
    *settled* (last ack or timeout), which is the order the live
    :class:`~repro.obs.metrics.Histogram` observed them in — so sums and
    means match the registry bit for bit.
    """
    detected: Dict[int, float] = {}
    last_ack: Dict[int, float] = {}
    settled_at: Dict[int, float] = {}
    for t, name, fields in events:
        seq = fields.get("seq")
        if seq is None:
            continue
        seq = int(seq)
        if name == CHANGE_DETECTED:
            detected[seq] = t
        elif name == NOTIFY_ACK:
            last_ack[seq] = t
            settled_at[seq] = t
        elif name == NOTIFY_TIMEOUT:
            settled_at[seq] = t
    windows = [(seq, last_ack[seq] - detected[seq])
               for seq in detected if seq in last_ack]
    windows.sort(key=lambda item: (settled_at[item[0]], item[0]))
    return windows


def summarize_events(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """The full derived summary of one trace.

    Keys (a stable contract, mirrored by ``repro-obs summarize --json``):

    * ``events`` — event-name -> count;
    * ``span`` — first/last timestamp;
    * ``notify`` — sends/retransmits/acks/timeouts plus ``ack_rtt``
      running stats over the ``rtt`` field of every ack, in trace order;
    * ``changes`` — detected count plus ``consistency_window`` running
      stats from :func:`consistency_windows`;
    * ``lease`` — grant/renew/expire/revoke counts;
    * ``net`` — delivered/dropped/duplicated/unreachable counts;
    * ``bus`` — the exporting bus's own bookkeeping
      (emitted/retained/dropped/cleared) when the trace carries a
      :data:`~repro.obs.trace.TRACE_META` record, else None.  A nonzero
      ``dropped`` flags ring overflow — an incomplete trace; a nonzero
      ``cleared`` records deliberate discards.
    """
    bus: Optional[Dict[str, object]] = None
    if any(name == TRACE_META for _t, name, _f in events):
        bus = next(dict(fields) for _t, name, fields in events
                   if name == TRACE_META)
        events = [ev for ev in events if ev[1] != TRACE_META]
    counts: Dict[str, int] = {}
    for _t, name, _fields in events:
        counts[name] = counts.get(name, 0) + 1

    ack_rtts = [float(fields["rtt"]) for _t, name, fields in events
                if name == NOTIFY_ACK and fields.get("rtt") is not None]
    windows = [window for _seq, window in consistency_windows(events)]

    return {
        "events": dict(sorted(counts.items())),
        "span": {
            "first": events[0][0] if events else None,
            "last": events[-1][0] if events else None,
            "count": len(events),
        },
        "notify": {
            "sends": counts.get(NOTIFY_SEND, 0),
            "retransmits": counts.get(NOTIFY_RETRANSMIT, 0),
            "acks": counts.get(NOTIFY_ACK, 0),
            "timeouts": counts.get(NOTIFY_TIMEOUT, 0),
            "ack_rtt": _running_stats(ack_rtts),
        },
        "changes": {
            "detected": counts.get(CHANGE_DETECTED, 0),
            "settled_with_ack": len(windows),
            "consistency_window": _running_stats(windows),
        },
        "lease": {
            "grants": counts.get(LEASE_GRANT, 0),
            "renewals": counts.get(LEASE_RENEW, 0),
            "expirations": counts.get(LEASE_EXPIRE, 0),
            "revocations": counts.get(LEASE_REVOKE, 0),
        },
        "net": {
            "delivered": counts.get(NET_DELIVER, 0),
            "dropped": counts.get(NET_DROP, 0),
            "duplicated": counts.get(NET_DUPLICATE, 0),
            "unreachable": counts.get(NET_UNREACHABLE, 0),
        },
        "bus": bus,
    }


def flatten_summary(summary: Dict[str, object],
                    prefix: str = "") -> Dict[str, object]:
    """Flatten a nested summary into dotted scalar keys (for diffing)."""
    flat: Dict[str, object] = {}
    for key, value in summary.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_summary(value, prefix=f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def diff_summaries(a: Dict[str, object], b: Dict[str, object]
                   ) -> List[Tuple[str, object, object]]:
    """(key, value in a, value in b) for every key where they differ."""
    flat_a = flatten_summary(a)
    flat_b = flatten_summary(b)
    rows: List[Tuple[str, object, object]] = []
    for key in sorted(set(flat_a) | set(flat_b)):
        left = flat_a.get(key)
        right = flat_b.get(key)
        if left != right:
            rows.append((key, left, right))
    return rows
