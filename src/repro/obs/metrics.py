"""The metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`Registry` per run replaces reading half a dozen scattered
stats dataclasses: every instrumented component either maintains its own
instruments (histograms of ack RTT, consistency window, lease length) or
is mirrored into the registry through *callable gauges* that read the
component's existing counters at snapshot time — the stats dataclasses
stay authoritative for tests, and :meth:`Registry.snapshot` is the one
machine-readable view of everything.

Metric names are a stable contract documented in PROTOCOL.md §9.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import (Callable, Dict, List, Optional, Sequence, TextIO, Tuple,
                    Union)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter decrement: {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value: either set explicitly or read from ``fn``."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        """Pin the gauge to ``value`` (only for gauges without ``fn``)."""
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is callable-backed")
        self._value = value

    @property
    def value(self) -> float:
        """Current reading."""
        return float(self.fn()) if self.fn is not None else self._value


#: Default histogram buckets for round-trip / window measurements, seconds.
LATENCY_BUCKETS = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
                   0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0)

#: Default histogram buckets for lease lengths, seconds (200 s and 6000 s
#: are the paper's CDN/Dyn maxima; 518400 s is the 6-day regular maximum).
LEASE_BUCKETS = (60.0, 200.0, 600.0, 3600.0, 6000.0, 21600.0,
                 86400.0, 259200.0, 518400.0)


def _fold_exact(partials: List[float], value: float) -> None:
    """Fold ``value`` into a Shewchuk non-overlapping partials list.

    After the fold the partials still represent the true sum exactly,
    so ``math.fsum(partials)`` is the correctly rounded total no matter
    how many folds happened or in what grouping — the property that
    makes shard-merged histogram sums byte-identical at any shard
    count.  (Same algorithm as ``repro.sim.fastreplay.ExactSum``;
    re-implemented here because ``obs`` must not import ``sim``.)
    """
    x = value
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class Histogram:
    """Fixed-bucket histogram with exact sum/count/min/max.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket
    catches the overflow.  The mean is exact (running float sum in
    observation order), which is what lets trace-derived recomputations
    match live measurements bit for bit.

    Two populations exist: histograms filled one :meth:`observe` at a
    time keep the running-float ``sum`` above (order-dependent, bit-
    compatible with the trace-side recomputations); histograms filled
    in bulk via :meth:`add_exact` carry Shewchuk partials so
    :meth:`merge` stays exact and grouping-independent.  Merging an
    observe-filled histogram degrades the target to running-float
    addition (the honest answer — the inputs were already rounded).
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max",
                 "_partials")

    def __init__(self, name: str,
                 buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram buckets must strictly increase: "
                             f"{buckets}")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Non-overlapping partials representing ``sum`` exactly while
        #: the histogram has only ever been filled through
        #: :meth:`add_exact`/:meth:`merge`; None once :meth:`observe`
        #: put it on the running-float path.
        self._partials: Optional[List[float]] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        # First bound >= value — same bucket the linear scan over the
        # inclusive upper bounds found, in O(log buckets) on a hot path.
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        self._partials = None
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_exact(self, bucket_counts: Sequence[int],
                  partials: Sequence[float],
                  minimum: Optional[float] = None,
                  maximum: Optional[float] = None) -> None:
        """Bulk-load pre-bucketed observations with an exact sum.

        ``bucket_counts`` must cover every bucket including the +inf
        overflow; ``partials`` is a Shewchuk partials list representing
        the exact sum of the underlying values (e.g. from
        ``repro.sim.columnar.scan_partials``).  The histogram's sum
        stays the *correctly rounded* total as long as every load goes
        through this path, which makes shard-merged snapshots
        byte-identical regardless of shard count.
        """
        if len(bucket_counts) != len(self.counts):
            raise ValueError(
                f"bucket_counts has {len(bucket_counts)} entries, "
                f"histogram {self.name} has {len(self.counts)} buckets")
        added = 0
        for index, amount in enumerate(bucket_counts):
            self.counts[index] += amount
            added += amount
        self.count += added
        if self._partials is not None:
            for part in partials:
                _fold_exact(self._partials, part)
            self.sum = math.fsum(self._partials)
        else:
            self.sum += math.fsum(partials)
        if minimum is not None and minimum < self.min:
            self.min = minimum
        if maximum is not None and maximum > self.max:
            self.max = maximum

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bounds must agree).

        Counts and min/max merge losslessly.  Sums merge exactly —
        independent of merge order and grouping — when both sides are
        still on the exact path (built via :meth:`add_exact`); any
        observe-filled side degrades the result to float addition.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name} into {self.name}: "
                f"bucket bounds differ")
        for index, amount in enumerate(other.counts):
            self.counts[index] += amount
        self.count += other.count
        if self._partials is not None and other._partials is not None:
            for part in other._partials:
                _fold_exact(self._partials, part)
            self.sum = math.fsum(self._partials)
        else:
            self._partials = None
            self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> Optional[float]:
        """Exact mean of all observations, or None when empty."""
        return self.sum / self.count if self.count else None

    def quantile(self, quantile: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate, or None when empty.

        ``quantile`` is in percent (50.0 = median).  The estimate walks
        the cumulative bucket counts to the target rank and
        interpolates linearly within the bucket it lands in, clamped to
        the observed ``[min, max]`` — the first bucket's lower edge is
        the observed minimum and the +inf overflow bucket is pinned to
        the observed maximum, so estimates never stray outside real
        data.  This is the one shared implementation behind
        ``repro.obs.report`` and the ``repro-obs tail`` follower.
        """
        buckets = list(zip((*self.bounds, math.inf), self.counts))
        low = self.min if self.count else None
        high = self.max if self.count else None
        return bucket_quantile(self.count, buckets, low, high, quantile)

    def as_dict(self) -> Dict[str, object]:
        """Snapshot form: summary stats plus per-bucket counts.

        Strictly JSON: the implicit +inf overflow bound serializes as
        ``null``, and so do non-finite summary stats (min/max/sum/mean
        after observing an infinity) — bare ``Infinity`` tokens are not
        JSON and break every strict parser downstream.
        """
        return {
            "count": self.count,
            "sum": _json_number(self.sum),
            "mean": _json_number(self.mean),
            "min": _json_number(self.min) if self.count else None,
            "max": _json_number(self.max) if self.count else None,
            "buckets": [[_json_number(bound), count] for bound, count
                        in zip((*self.bounds, math.inf), self.counts)],
        }


def bucket_quantile(count: int, buckets: Sequence[Tuple[float, int]],
                    low: Optional[float], high: Optional[float],
                    quantile: float) -> Optional[float]:
    """The shared fixed-bucket quantile estimator (percent scale).

    ``buckets`` is ``[(inclusive upper bound, count)]`` ending with the
    +inf overflow bucket; ``low``/``high`` are the observed min/max (or
    None when unknown).  Walks cumulative counts to the target rank,
    interpolates linearly inside the landing bucket, and clamps to the
    observed range: the first bucket's lower edge is the observed
    minimum (0 would bias small latencies) and the overflow bucket is
    pinned to the observed maximum.  None when empty.  Both
    :meth:`Histogram.quantile` and the snapshot-dict path in
    :func:`repro.obs.report.histogram_percentile` delegate here, so
    live and exported histograms estimate bucket-identically.
    """
    if not 0.0 <= quantile <= 100.0:
        raise ValueError(f"quantile out of range: {quantile}")
    if not count:
        return None
    target = quantile / 100.0 * count
    cumulative = 0
    estimate = high
    previous_bound = low if low is not None else 0.0
    for bound, bucket_count in buckets:
        upper = bound
        if math.isinf(upper):
            upper = high if high is not None else previous_bound
        if bucket_count and cumulative + bucket_count >= target:
            lower = min(previous_bound, upper)
            fraction = max(0.0, target - cumulative) / bucket_count
            estimate = lower + (upper - lower) * fraction
            break
        cumulative += bucket_count
        previous_bound = max(previous_bound, bound if not math.isinf(bound)
                             else previous_bound)
    if estimate is None:
        return None
    if low is not None:
        estimate = max(estimate, low)
    if high is not None:
        estimate = min(estimate, high)
    return estimate


def _json_number(value: Optional[float]) -> Optional[float]:
    """``value`` when finite, else None (JSON has no Infinity/NaN)."""
    return value if value is not None and math.isfinite(value) else None


class Registry:
    """A flat namespace of instruments with one consistent snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- creation (idempotent per name) --------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Get or create the gauge ``name``; ``fn`` makes it callable-backed."""
        self._check_free(name, self._gauges)
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, fn=fn)
        elif fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        """Get or create the histogram ``name``."""
        self._check_free(name, self._histograms)
        return self._histograms.setdefault(name, Histogram(name, buckets))

    def _check_free(self, name: str, own: Dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(f"metric name already used with a "
                                 f"different type: {name}")

    # -- merging -------------------------------------------------------------

    def merge(self, other: "Registry") -> "Registry":
        """Fold every instrument of ``other`` into this registry.

        Counters add their integer values; histograms bucket-add (and
        keep exactly rounded sums while both sides are on the
        :meth:`Histogram.add_exact` path); gauges are *last-write-wins*
        — the incoming reading replaces this side's value, so folding
        per-shard registries in shard order leaves each gauge at the
        last shard's reading (a gauge is a point-in-time level, not a
        flow; summing levels across shards double-counts).  A gauge
        that must aggregate across shards belongs in a counter or
        histogram instead.  Instruments missing on this side are
        created.  Merging is the shard-combination primitive: merging
        per-shard registries in any grouping yields byte-identical
        :meth:`export_json` output as long as the histograms were
        bulk-loaded exactly and gauges agree or only the final shard's
        level matters.  Returns ``self`` for chaining.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            target = self.gauge(name)
            if target.fn is not None:
                raise ValueError(
                    f"cannot merge into callable-backed gauge {name}")
            target.set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)
        return self

    # -- reading -------------------------------------------------------------

    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One consistent, JSON-ready view of every instrument.

        Keys at both levels are sorted, so identical runs serialize to
        byte-identical JSON.
        """
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
        }

    def export_json(self, target: Union[str, TextIO]) -> None:
        """Write :meth:`snapshot` as stable, indented, *strict* JSON.

        ``allow_nan=False`` turns any non-finite value that slipped
        past the snapshot (e.g. a callable gauge reading inf) into a
        loud :class:`ValueError` instead of silently emitting the
        non-JSON ``Infinity`` token.  ``sort_keys=True`` makes the
        bytes independent of dict insertion order end to end — two
        registries with the same instrument values export identically
        no matter what order registration or merging happened in.
        """
        own = isinstance(target, str)
        stream: TextIO = open(target, "w") if own else target  # type: ignore[arg-type]
        try:
            json.dump(self.snapshot(), stream, indent=2, allow_nan=False,
                      sort_keys=True)
            stream.write("\n")
        finally:
            if own:
                stream.close()

    def __repr__(self) -> str:
        return (f"Registry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")
