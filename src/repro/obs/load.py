"""The load-attribution plane: who is loading which server, and how hard.

The trace/audit/telemetry stack sees *correctness* — every lease, every
notification, every ack.  This module sees *pressure*: a
:class:`LoadLedger` attributes every query, renewal, CACHE-UPDATE send,
retransmit, and delivered datagram to a ``(server, domain,
message-class)`` key, maintaining

* **exponentially-decayed windowed counters** — each key and each
  server carries a fast window (default 10 s) and each server also a
  slow baseline (default 600 s); a rate is the decayed event mass
  divided by the window, so it tracks the *recent* arrival rate without
  storing any per-event state;
* **fixed-memory streaming quantile sketches** — P² (Jain & Chlamtac
  1985) marker sketches, five floats per tracked quantile, over the
  per-server inter-arrival gaps, the in-flight notification depth, and
  the per-arrival instantaneous rate.  Memory is O(servers + keys) and
  the key space itself is bounded by ``domain_cap`` (overflow domains
  fold into ``~other``), so a million-holder storm costs the same
  memory as a quiet afternoon;
* a :class:`StormDetector` that compares each server's fast window
  against its decayed baseline and opens a :class:`StormEpisode` when
  the burst ratio and an absolute rate floor are both exceeded —
  episode start/end records are exactly the admission-control signal
  ROADMAP item 3 needs, and are mirrored onto the trace bus as
  ``load.storm.start`` / ``load.storm.end`` events.

Wiring is **zero-cost when off**, like every other instrument in this
repo: the protocol modules hold ``load_ledger = None`` and guard every
``load_ledger.record(...)`` with a plain ``is not None`` check (enforced
statically by ``repro-lint`` rule DCUP005).  There are two feeds:

* **direct hooks** — ``core/{lease,notification,renegotiation}`` and
  ``net/{network,simulator}`` call :meth:`LoadLedger.record` (or a
  per-server :class:`LoadRecorder` facet) with precise attribution;
  :class:`repro.core.middleware.DNScup` wires them when its
  :class:`~repro.obs.wiring.Observability` bundle carries a ledger;
* **a trace tap** — :meth:`LoadLedger.on_event` maps protocol trace
  events to attributions, for feeding a ledger from an exported JSONL
  trace (``repro-obs load``) or live as a second
  :meth:`~repro.obs.trace.TraceBus.add_tap` subscriber next to the
  telemetry plane.

Metric and event names are part of the PROTOCOL.md §9.5 contract.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from typing import Dict, List, Optional, Set, Tuple

from .metrics import Registry
from .trace import (LEASE_GRANT, LEASE_RENEW, LOAD_STORM_END,
                    LOAD_STORM_START, NET_DELIVER, NOTIFY_RETRANSMIT,
                    NOTIFY_SEND, RENEGO_SEND, TraceBus, TraceEvent)

__all__ = [
    "CLASS_DELIVER", "CLASS_NOTIFY", "CLASS_QUERY", "CLASS_RENEWAL",
    "CLASS_RETRANSMIT", "CLASS_TICK", "DecayedRate", "LoadKey",
    "LoadLedger", "LoadRecorder", "OVERFLOW_DOMAIN", "P2Quantile",
    "QuantileSketch", "StormDetector", "StormEpisode",
]

# -- message classes (the third attribution axis) -----------------------------

#: A lease-granting query reaching the authoritative server.
CLASS_QUERY = "query"
#: A lease renewal (renewed grant or cache-side renegotiation send).
CLASS_RENEWAL = "renewal"
#: A NOTIFY / CACHE-UPDATE first transmission.
CLASS_NOTIFY = "notify"
#: A NOTIFY / CACHE-UPDATE retransmission.
CLASS_RETRANSMIT = "retransmit"
#: A datagram delivered by the transport (per destination endpoint).
CLASS_DELIVER = "deliver"
#: A fired simulator event (event-loop pressure; no domain).
CLASS_TICK = "tick"

#: Domains beyond ``domain_cap`` fold into this key (fixed memory).
OVERFLOW_DOMAIN = "~other"

#: Placeholder domain for classes that have none (transport, ticks).
NO_DOMAIN = "-"

#: One attribution key: (server, domain, message class).
LoadKey = Tuple[str, str, str]

#: The quantiles every sketch tracks, percent scale.
SKETCH_QUANTILES = (50.0, 95.0, 99.0)


class DecayedRate:
    """An exponentially-decayed event counter over window ``tau``.

    Each :meth:`add` first decays the accumulated mass by
    ``exp(-dt / tau)`` and then adds the new event, so the mass is the
    exponentially-weighted count of recent events and ``mass / tau`` is
    an unbiased estimate of the current arrival rate (events/s) for a
    stationary stream.  O(1) state, O(1) update, no event storage.
    """

    __slots__ = ("tau", "mass", "last")

    def __init__(self, tau: float) -> None:
        if tau <= 0.0:
            raise ValueError(f"decay window must be positive: {tau}")
        self.tau = tau
        self.mass = 0.0
        self.last = -math.inf

    def _decay(self, t: float) -> None:
        if self.last == -math.inf:
            self.last = t
            return
        dt = t - self.last
        if dt > 0.0:
            self.mass *= math.exp(-dt / self.tau)
            self.last = t

    def add(self, t: float, amount: float = 1.0) -> float:
        """Decay to ``t``, add ``amount``, return the current rate."""
        self._decay(t)
        self.mass += amount
        return self.mass / self.tau

    def rate(self, t: float) -> float:
        """The decayed arrival rate (events/s) as of ``t``."""
        self._decay(t)
        return self.mass / self.tau


class P2Quantile:
    """The P² streaming quantile estimator (Jain & Chlamtac 1985).

    Five markers — heights, actual positions, desired positions —
    estimate one quantile of an unbounded stream in O(1) memory and
    O(1) per observation, adjusting the middle markers with a piecewise
    parabolic (hence P²) interpolation.  Until five observations have
    arrived the estimate is the linear interpolation of the sorted
    buffer.  Deterministic: same observation sequence, same estimate.
    """

    __slots__ = ("p", "heights", "positions", "desired", "count")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {p}")
        self.p = p
        self.heights: List[float] = []
        self.positions: List[float] = [1.0, 2.0, 3.0, 4.0, 5.0]
        self.desired: List[float] = [
            1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold one observation into the sketch."""
        self.count += 1
        if self.count <= 5:
            bisect.insort(self.heights, value)
            return
        heights, positions, desired = self.heights, self.positions, self.desired
        # Locate the cell, extending the extreme markers when needed.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        increments = (0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0)
        for index in range(5):
            desired[index] += increments[index]
        # Adjust the three interior markers toward their desired ranks.
        for index in range(1, 4):
            drift = desired[index] - positions[index]
            ahead = positions[index + 1] - positions[index]
            behind = positions[index - 1] - positions[index]
            if (drift >= 1.0 and ahead > 1.0) or (drift <= -1.0
                                                  and behind < -1.0):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step
        self.heights = heights

    def _parabolic(self, index: int, step: float) -> float:
        h, n = self.heights, self.positions
        return h[index] + step / (n[index + 1] - n[index - 1]) * (
            (n[index] - n[index - 1] + step)
            * (h[index + 1] - h[index]) / (n[index + 1] - n[index])
            + (n[index + 1] - n[index] - step)
            * (h[index] - h[index - 1]) / (n[index] - n[index - 1]))

    def _linear(self, index: int, step: float) -> float:
        h, n = self.heights, self.positions
        other = index + int(step)
        return h[index] + step * (h[other] - h[index]) / (n[other] - n[index])

    def value(self) -> Optional[float]:
        """The current estimate, or None before any observation."""
        if not self.count:
            return None
        if self.count <= 5:
            rank = self.p * (len(self.heights) - 1)
            low = int(math.floor(rank))
            high = min(low + 1, len(self.heights) - 1)
            return (self.heights[low]
                    + (rank - low) * (self.heights[high] - self.heights[low]))
        return self.heights[2]


class QuantileSketch:
    """A bundle of :class:`P2Quantile` markers plus count/min/max.

    Fixed memory: five floats per tracked quantile, regardless of how
    many observations stream through.
    """

    __slots__ = ("count", "min", "max", "_markers")

    def __init__(self,
                 quantiles: Tuple[float, ...] = SKETCH_QUANTILES) -> None:
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._markers: Dict[float, P2Quantile] = {
            q: P2Quantile(q / 100.0) for q in quantiles}

    def observe(self, value: float) -> None:
        """Fold one observation into every marker set."""
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for marker in self._markers.values():
            marker.observe(value)

    def quantile(self, quantile: float) -> Optional[float]:
        """The estimate for a tracked quantile (percent scale)."""
        return self._markers[quantile].value()

    def as_dict(self) -> Dict[str, Optional[float]]:
        """``{"count": ..., "min": ..., "max": ..., "p50": ...}``."""
        summary: Dict[str, Optional[float]] = {
            "count": float(self.count),
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        for q in sorted(self._markers):
            summary[f"p{q:g}"] = self._markers[q].value()
        return summary


@dataclasses.dataclass
class StormEpisode:
    """One renewal-synchronization episode on one server.

    ``end`` is None while the episode is still open; ``peak_rate`` is
    the highest fast-window rate seen inside it and ``baseline`` the
    slow-window rate at the moment it opened — the burst the admission
    controller (ROADMAP item 3) will be asked to shave.
    """

    server: str
    start: float
    baseline: float
    end: Optional[float] = None
    peak_rate: float = 0.0
    events: int = 0

    @property
    def active(self) -> bool:
        return self.end is None

    def as_dict(self) -> Dict[str, object]:
        return {
            "server": self.server,
            "start": self.start,
            "end": self.end,
            "baseline": self.baseline,
            "peak_rate": self.peak_rate,
            "events": self.events,
        }


class StormDetector:
    """Flags renewal-synchronization storms against a decayed baseline.

    A server enters a storm when its fast-window rate exceeds both
    ``burst_ratio`` times its slow baseline *and* the absolute
    ``min_rate`` floor (a quiet server doubling from 0.1/s to 0.2/s is
    not a storm); it leaves when the fast rate falls back under
    ``exit_ratio`` times the baseline.  The hysteresis gap between the
    two ratios keeps one burst from chattering open/closed.  Episode
    boundaries are mirrored onto the optional trace bus as
    ``load.storm.start`` / ``load.storm.end`` (guarded — the detector
    is itself zero-cost-when-off instrumentation).
    """

    def __init__(self, burst_ratio: float = 8.0, exit_ratio: float = 2.0,
                 min_rate: float = 50.0, min_baseline: float = 1.0,
                 trace: Optional[TraceBus] = None) -> None:
        if exit_ratio > burst_ratio:
            raise ValueError(f"exit ratio {exit_ratio} above entry ratio "
                             f"{burst_ratio}: detector would never close")
        self.burst_ratio = burst_ratio
        self.exit_ratio = exit_ratio
        self.min_rate = min_rate
        self.min_baseline = min_baseline
        self.trace = trace
        #: Every episode ever opened, in open order (closed ones keep
        #: their position); the admission-control consumption record.
        self.episodes: List[StormEpisode] = []
        self._active: Dict[str, StormEpisode] = {}

    def observe(self, server: str, t: float, fast_rate: float,
                slow_rate: float) -> None:
        """Fold one arrival's rates; open/close episodes as crossed."""
        baseline = max(slow_rate, self.min_baseline)
        episode = self._active.get(server)
        if episode is None:
            if fast_rate >= self.burst_ratio * baseline \
                    and fast_rate >= self.min_rate:
                episode = StormEpisode(server=server, start=t,
                                       baseline=baseline,
                                       peak_rate=fast_rate, events=1)
                self._active[server] = episode
                self.episodes.append(episode)
                if self.trace is not None:
                    self.trace.emit(LOAD_STORM_START, t=t, server=server,
                                    rate=fast_rate, baseline=baseline)
            return
        episode.events += 1
        if fast_rate > episode.peak_rate:
            episode.peak_rate = fast_rate
        if fast_rate <= self.exit_ratio * baseline:
            episode.end = t
            del self._active[server]
            if self.trace is not None:
                self.trace.emit(LOAD_STORM_END, t=t, server=server,
                                rate=fast_rate, peak=episode.peak_rate,
                                events=episode.events,
                                duration=t - episode.start)

    def close_open(self, t: float) -> None:
        """End every still-open episode at ``t`` (end-of-run flush)."""
        for server in sorted(self._active):
            episode = self._active.pop(server)
            episode.end = t
            if self.trace is not None:
                self.trace.emit(LOAD_STORM_END, t=t, server=server,
                                rate=0.0, peak=episode.peak_rate,
                                events=episode.events,
                                duration=t - episode.start)

    @property
    def active_count(self) -> int:
        return len(self._active)


class _KeyLoad:
    """Per-(server, domain, class) decayed counter + totals."""

    __slots__ = ("count", "rate", "last")

    def __init__(self, tau: float) -> None:
        self.count = 0
        self.rate = DecayedRate(tau)
        self.last = -math.inf

    def record(self, t: float) -> None:
        self.count += 1
        self.rate.add(t)
        self.last = t


class _ServerLoad:
    """Per-server aggregate: windows, sketches, class tallies."""

    __slots__ = ("count", "classes", "fast", "slow", "last", "gap_sketch",
                 "depth_sketch", "rate_sketch", "peak_rate")

    def __init__(self, window: float, baseline: float) -> None:
        self.count = 0
        self.classes: Dict[str, int] = {}
        self.fast = DecayedRate(window)
        self.slow = DecayedRate(baseline)
        self.last = -math.inf
        self.gap_sketch = QuantileSketch()
        self.depth_sketch = QuantileSketch()
        self.rate_sketch = QuantileSketch()
        self.peak_rate = 0.0

    def record(self, message_class: str, t: float,
               depth: Optional[float]) -> Tuple[float, float]:
        """Fold one arrival; returns (fast rate, slow rate) at ``t``."""
        self.count += 1
        self.classes[message_class] = self.classes.get(message_class, 0) + 1
        if self.last != -math.inf and t >= self.last:
            self.gap_sketch.observe(t - self.last)
        self.last = t
        fast = self.fast.add(t)
        slow = self.slow.add(t)
        self.rate_sketch.observe(fast)
        if fast > self.peak_rate:
            self.peak_rate = fast
        if depth is not None:
            self.depth_sketch.observe(depth)
        return fast, slow


class LoadRecorder:
    """A ledger facet bound to one server's identity.

    The protocol modules owned by a single server (lease table,
    notification module) hold one of these as their ``load_ledger``
    hook so the hot path does not re-pass the server string per event.
    """

    __slots__ = ("sink", "server")

    def __init__(self, ledger: "LoadLedger", server: str) -> None:
        #: The backing ledger.  (Named ``sink`` rather than ``ledger``
        #: so DCUP005 does not read this unconditional internal
        #: delegation as an unguarded hook call — the guard lives at
        #: the *callers* of this facet, which do hold ``load_ledger``.)
        self.sink = ledger
        self.server = server

    def record(self, domain: str, message_class: str, t: float,
               depth: Optional[float] = None) -> None:
        self.sink.record(self.server, domain, message_class, t, depth)


#: Trace event name -> message class, for the tap/offline feed.
_TAP_CLASSES: Dict[str, str] = {
    LEASE_GRANT: CLASS_QUERY,
    LEASE_RENEW: CLASS_RENEWAL,
    RENEGO_SEND: CLASS_RENEWAL,
    NOTIFY_SEND: CLASS_NOTIFY,
    NOTIFY_RETRANSMIT: CLASS_RETRANSMIT,
    NET_DELIVER: CLASS_DELIVER,
}


class LoadLedger:
    """Attributes protocol load to (server, domain, message-class) keys.

    One ledger per run.  Feed it through the direct module hooks (see
    the module docstring), through :meth:`on_event` as a trace tap, or
    both on disjoint planes; memory stays O(servers + capped domains ×
    classes) no matter how many events stream through.
    """

    def __init__(self, window: float = 10.0, baseline: float = 600.0,
                 detector: Optional[StormDetector] = None,
                 trace: Optional[TraceBus] = None,
                 domain_cap: int = 4096,
                 default_server: str = "server") -> None:
        if baseline <= window:
            raise ValueError(f"baseline window {baseline} must exceed the "
                             f"fast window {window}")
        self.window = window
        self.baseline = baseline
        self.detector = (detector if detector is not None
                         else StormDetector(trace=trace))
        self.trace = trace
        self.domain_cap = domain_cap
        self.default_server = default_server
        self.total = 0
        self.last = 0.0
        self.keys: Dict[LoadKey, _KeyLoad] = {}
        self.servers: Dict[str, _ServerLoad] = {}
        self._domains: Set[str] = set()

    # -- the hot path --------------------------------------------------------

    def record(self, server: str, domain: str, message_class: str, t: float,
               depth: Optional[float] = None) -> None:
        """Attribute one message; O(1), fixed memory.

        ``depth`` is an optional concurrent-work sample (e.g. the
        notification module's in-flight count) folded into the server's
        depth sketch.
        """
        domain = self._fold_domain(domain)
        key = (server, domain, message_class)
        key_load = self.keys.get(key)
        if key_load is None:
            key_load = self.keys[key] = _KeyLoad(self.window)
        key_load.record(t)
        server_load = self.servers.get(server)
        if server_load is None:
            server_load = self.servers[server] = _ServerLoad(
                self.window, self.baseline)
        fast, slow = server_load.record(message_class, t, depth)
        self.detector.observe(server, t, fast, slow)
        self.total += 1
        if t > self.last:
            self.last = t

    def recorder(self, server: str) -> LoadRecorder:
        """A facet bound to ``server``, for that server's module hooks."""
        return LoadRecorder(self, server)

    def _fold_domain(self, domain: str) -> str:
        if domain in self._domains:
            return domain
        if len(self._domains) >= self.domain_cap:
            return OVERFLOW_DOMAIN
        self._domains.add(domain)
        return domain

    # -- the trace-tap feed --------------------------------------------------

    def on_event(self, record: TraceEvent) -> None:
        """Attribute one trace event (install via ``trace.add_tap``).

        Protocol events map to classes per :data:`_TAP_CLASSES`;
        everything else is ignored.  ``net.deliver`` attributes to the
        destination endpoint, every other event to ``default_server``
        (trace records carry no emitting-server identity).
        """
        t, name, fields = record
        message_class = _TAP_CLASSES.get(name)
        if message_class is None:
            return
        if name == NET_DELIVER:
            server = str(fields.get("dst", self.default_server))
            domain = NO_DOMAIN
        else:
            server = self.default_server
            domain = str(fields.get("name", NO_DOMAIN))
        self.record(server, domain, message_class, t)

    # -- reading -------------------------------------------------------------

    def rate(self, t: Optional[float] = None) -> float:
        """Total decayed arrival rate across servers (events/s)."""
        at = self.last if t is None else t
        return sum(server.fast.rate(at) for server in self.servers.values())

    def peak_rate(self) -> float:
        """The highest fast-window rate any server ever hit."""
        if not self.servers:
            return 0.0
        return max(server.peak_rate for server in self.servers.values())

    def server_quantile(self, server: str, quantile: float,
                        sketch: str = "rate") -> Optional[float]:
        """A server sketch quantile: ``rate``, ``gap``, or ``depth``."""
        load = self.servers.get(server)
        if load is None:
            return None
        sketches = {"rate": load.rate_sketch, "gap": load.gap_sketch,
                    "depth": load.depth_sketch}
        return sketches[sketch].quantile(quantile)

    def top(self, n: int = 10) -> List[Dict[str, object]]:
        """The ``n`` hottest keys by total count (ties: key order)."""
        ranked = sorted(self.keys.items(),
                        key=lambda item: (-item[1].count, item[0]))
        return [{"server": server, "domain": domain, "class": message_class,
                 "count": load.count, "rate": load.rate.rate(self.last),
                 "last": load.last}
                for (server, domain, message_class), load in ranked[:n]]

    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready view: totals, per-server loads, episodes."""
        servers: Dict[str, object] = {}
        for name in sorted(self.servers):
            load = self.servers[name]
            servers[name] = {
                "count": load.count,
                "classes": dict(sorted(load.classes.items())),
                "rate": load.fast.rate(self.last),
                "baseline": load.slow.rate(self.last),
                "peak_rate": load.peak_rate,
                "gap": load.gap_sketch.as_dict(),
                "depth": load.depth_sketch.as_dict(),
                "rate_quantiles": load.rate_sketch.as_dict(),
            }
        return {
            "total": self.total,
            "last": self.last,
            "window": self.window,
            "baseline_window": self.baseline,
            "servers": servers,
            "keys": len(self.keys),
            "domains": len(self._domains),
            "storms": {
                "active": self.detector.active_count,
                "episodes": [episode.as_dict()
                             for episode in self.detector.episodes],
            },
        }

    # -- telemetry exposure --------------------------------------------------

    def bind_registry(self, registry: Registry) -> None:
        """Register the rolling ``load.*`` gauges (PROTOCOL §9.5).

        Callable-backed gauges read the ledger at snapshot time, so the
        telemetry plane's periodic exposition shows live load with zero
        extra work on the record path.  Empty sketches read 0.0 (the
        registry's strict JSON export refuses non-finite values).
        """
        def quantile_reader(sketch_name: str, quantile: float
                            ) -> float:
            best = 0.0
            for server in self.servers.values():
                sketches = {"rate": server.rate_sketch,
                            "gap": server.gap_sketch,
                            "depth": server.depth_sketch}
                value = sketches[sketch_name].quantile(quantile)
                if value is not None and value > best:
                    best = value
            return best

        registry.gauge("load.events", fn=lambda: float(self.total))
        registry.gauge("load.keys", fn=lambda: float(len(self.keys)))
        registry.gauge("load.servers", fn=lambda: float(len(self.servers)))
        registry.gauge("load.rate", fn=self.rate)
        registry.gauge("load.peak_rate", fn=self.peak_rate)
        registry.gauge("load.rate_p99",
                       fn=lambda: quantile_reader("rate", 99.0))
        registry.gauge("load.gap_p50",
                       fn=lambda: quantile_reader("gap", 50.0))
        registry.gauge("load.gap_p99",
                       fn=lambda: quantile_reader("gap", 99.0))
        registry.gauge("load.depth_p99",
                       fn=lambda: quantile_reader("depth", 99.0))
        registry.gauge("load.storm.active",
                       fn=lambda: float(self.detector.active_count))
        registry.gauge("load.storm.episodes",
                       fn=lambda: float(len(self.detector.episodes)))
