"""Assembling the observability layer onto a running simulation.

:class:`Observability` bundles the three instruments — trace bus,
metrics registry, optional wire capture — and knows how to attach them
to the substrate objects (:class:`~repro.net.simulator.Simulator`,
:class:`~repro.net.network.Network`).  Protocol components (the DNScup
middleware, the push comparator, the renegotiation agent) accept the
bundle at construction instead, so attachment stays a construction-time
decision and the disabled path stays allocation-free.

Gauges registered through :meth:`Observability.bind` *sum* every bound
reader under one name, so several DNScup middlewares (one per
authoritative server, as in the protocol scenarios) aggregate naturally
into a single registry — mirroring how ``dnscup_summary()`` sums
per-server counters today.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

from .capture import WireCapture
from .load import LoadLedger, StormDetector
from .metrics import Registry
from .trace import TraceBus


@dataclasses.dataclass
class Observability:
    """One run's trace bus + metrics registry (+ optional wire capture).

    ``load`` is the optional load-attribution ledger
    (:mod:`repro.obs.load`): None by default, created by
    :meth:`enable_load`, and wired into the protocol modules'
    ``load_ledger`` hooks by the DNScup middleware when present.
    """

    trace: TraceBus
    registry: Registry
    capture: Optional[WireCapture] = None
    load: Optional[LoadLedger] = None
    _bound: Dict[str, List[Callable[[], float]]] = dataclasses.field(
        default_factory=dict, repr=False)

    @classmethod
    def for_simulator(cls, simulator: Any, capture: bool = False,
                      trace_capacity: int = 1 << 20) -> "Observability":
        """Build a bundle clocked by ``simulator`` and instrument it."""
        obs = cls(trace=TraceBus(simulator, capacity=trace_capacity),
                  registry=Registry(),
                  capture=WireCapture() if capture else None)
        obs.observe_simulator(simulator)
        return obs

    def enable_load(self, window: float = 10.0, baseline: float = 600.0,
                    detector: Optional[StormDetector] = None,
                    domain_cap: int = 4096) -> LoadLedger:
        """Create (or return) the bundle's :class:`LoadLedger`.

        The ledger shares the bundle's trace bus (storm episodes show
        up as ``load.storm.*`` events) and registers its ``load.*``
        gauges in the registry, so any telemetry exposition of this
        bundle carries the rolling load series automatically.
        """
        if self.load is None:
            if detector is not None and detector.trace is None:
                detector.trace = self.trace
            self.load = LoadLedger(window=window, baseline=baseline,
                                   detector=detector, trace=self.trace,
                                   domain_cap=domain_cap)
            self.load.bind_registry(self.registry)
        return self.load

    # -- aggregating gauges ---------------------------------------------------

    def bind(self, name: str, reader: Callable[[], float]) -> None:
        """Register ``reader`` under gauge ``name``; repeated binds sum.

        A single bind reads through directly; a second bind under the
        same name turns the gauge into the sum of all bound readers.
        """
        readers = self._bound.setdefault(name, [])
        readers.append(reader)
        self.registry.gauge(
            name, fn=lambda readers=readers: sum(r() for r in readers))

    # -- substrate attachment -------------------------------------------------

    def observe_simulator(self, simulator: Any) -> None:
        """Mirror the event loop's vitals and count fired events."""
        self.bind("sim.now", lambda: simulator.now)
        self.bind("sim.pending", lambda: simulator.pending)
        self.bind("sim.events_processed",
                  lambda: simulator.events_processed)
        events = self.registry.counter("sim.events_observed")
        simulator.observer = lambda _time: events.inc()

    def observe_network(self, network: Any) -> None:
        """Attach trace + capture to ``network`` and mirror its counters."""
        network.trace = self.trace
        network.capture = self.capture
        stats = network.stats
        self.bind("net.datagrams_sent", lambda: stats.datagrams_sent)
        self.bind("net.datagrams_delivered",
                  lambda: stats.datagrams_delivered)
        self.bind("net.datagrams_lost", lambda: stats.datagrams_lost)
        self.bind("net.datagrams_duplicated",
                  lambda: stats.datagrams_duplicated)
        self.bind("net.datagrams_unreachable",
                  lambda: stats.datagrams_unreachable)
        self.bind("net.bytes_sent", lambda: stats.bytes_sent)
        self.bind("net.bytes_delivered", lambda: stats.bytes_delivered)
        self.bind("net.max_datagram", lambda: stats.max_datagram)
        self.bind("net.stream_messages", lambda: stats.stream_messages)
        self.bind("net.stream_bytes", lambda: stats.stream_bytes)
