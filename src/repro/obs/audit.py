"""The protocol invariant checker: every run audits its own trace.

DNScup's headline claims are *guarantees*: after a DN2IP change every
leased cache is consistent again within one notification round trip,
live leases never exceed the storage budget, and renewals never exceed
the message budget of the §4 optimizers.  :func:`audit_trace` checks
those guarantees machine-readably over one exported trace (plus,
optionally, the wire capture), emitting a structured
:class:`Violation` per breach:

* **completeness** — every cache holding a live lease on the changed
  record when the change was detected received a ``notify.send``;
* **termination** — every send resolves to an ack or a timeout, and
  does so before the change settles;
* **causality** — no effect precedes its cause (ack/timeout/retransmit
  after the send, time monotone along each leg) and each ack's ``rtt``
  field equals its ack−send timestamp difference exactly;
* **budget.storage / budget.renewal** — replayed lease-table occupancy
  never exceeds the storage-constrained budget; the renewal rate never
  exceeds the communication-constrained budget;
* **staleness** — the ``change.settled`` window equals the recomputed
  last-ack window, no ack lands after settlement, and (when a bound is
  configured) no acked holder stayed stale longer than it;
* **wire** — each ``notify.send`` matches captured CACHE-UPDATE
  datagrams by message ID, with enough transmissions for its attempts
  and a delivered datagram behind every acknowledgement.

The auditor assumes a complete trace (``TraceBus.dropped == 0``):
ring-truncated traces decapitate spans and surface false causality
orphans, which is the honest answer for an unauditable record.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .capture import FATE_DELIVERED
from .spans import NotificationLeg, SpanSet, build_spans
from .trace import LEASE_EXPIRE, LEASE_GRANT, LEASE_RENEW, LEASE_REVOKE, TraceEvent

#: Violation kinds (a stable contract, PROTOCOL.md §9).
COMPLETENESS = "completeness"
TERMINATION = "termination"
CAUSALITY = "causality"
BUDGET_STORAGE = "budget.storage"
BUDGET_RENEWAL = "budget.renewal"
STALENESS = "staleness"
WIRE = "wire"

VIOLATION_KINDS = frozenset({
    COMPLETENESS, TERMINATION, CAUSALITY,
    BUDGET_STORAGE, BUDGET_RENEWAL, STALENESS, WIRE,
})

#: Slack for comparing a float carried in one event against the same
#: quantity recomputed from two timestamps.  The live emitters record
#: the identical float objects, so exact runs audit at zero slack; the
#: epsilon only forgives decimal re-serialization by foreign tools.
FLOAT_SLACK = 1e-9


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the offending trace events."""

    kind: str
    message: str
    seq: int = 0
    t: Optional[float] = None
    #: Indices into the audited event list of the evidence.
    events: Tuple[int, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form with stable key order."""
        return {"kind": self.kind, "seq": self.seq, "t": self.t,
                "events": list(self.events), "message": self.message}


@dataclasses.dataclass
class AuditLimits:
    """The budgets and bounds the run promised to honour."""

    #: Storage-constrained budget (§4.2.1): maximum live leases the
    #: table may carry — the middleware's ``lease_capacity``.
    storage_budget: Optional[int] = None
    #: Communication-constrained budget (§4.2.2): maximum sustained
    #: renewal rate, renewals/second over :attr:`renewal_window`.
    renewal_budget: Optional[float] = None
    renewal_window: float = 60.0
    #: Bound on per-holder staleness: seconds between change detection
    #: and that holder's acknowledgement (the consistency window each
    #: acked cache experienced).  None skips the bound.
    max_staleness: Optional[float] = None


@dataclasses.dataclass
class AuditReport:
    """The auditor's verdict over one trace."""

    violations: List[Violation]
    #: Facts examined per check family (for "0 violations across N
    #: checks" reporting; a family absent from the dict did not run).
    checks: Dict[str, int]
    spans: SpanSet
    events_audited: int
    capture_audited: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def counts(self) -> Dict[str, int]:
        """Violation kind -> occurrences, sorted by kind."""
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.kind] = tally.get(violation.kind, 0) + 1
        return dict(sorted(tally.items()))

    def kinds(self) -> frozenset:
        """The set of violated kinds."""
        return frozenset(v.kind for v in self.violations)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form mirroring ``repro-obs audit --json``."""
        return {
            "ok": self.ok,
            "events_audited": self.events_audited,
            "capture_audited": self.capture_audited,
            "checks": dict(sorted(self.checks.items())),
            "violation_counts": self.counts(),
            "violations": [v.as_dict() for v in self.violations],
        }


# -- violation constructors ---------------------------------------------------
#
# Both auditors — batch :func:`audit_trace` below and the streaming
# :class:`repro.obs.streaming.IncrementalAuditor` — build their
# violations through these constructors, so the two paths emit
# bit-identical messages and evidence tuples by construction.


def orphan_violation(index: int, reason: str) -> Violation:
    return Violation(kind=CAUSALITY, message=f"orphan event: {reason}",
                     events=(index,))


def unnotified_holder_violation(seq: int, detected_t: Optional[float],
                                detected_index: int, grant_index: int,
                                cache: str, name: object,
                                rrtype: object) -> Violation:
    return Violation(
        kind=COMPLETENESS, seq=seq, t=detected_t,
        events=(detected_index, grant_index),
        message=(f"lease holder {cache} on {name}/{rrtype} never "
                 f"notified for seq={seq}"))


def unresolved_leg_violation(seq: int, cache: str, send_t: float,
                             send_index: int) -> Violation:
    return Violation(
        kind=TERMINATION, seq=seq, t=send_t, events=(send_index,),
        message=(f"notify.send to {cache} never resolved "
                 f"to ack or timeout (seq={seq})"))


def resolved_after_settled_violation(seq: int, cache: str,
                                     settled_t: Optional[float],
                                     resolution_index: int,
                                     settled_index: int) -> Violation:
    return Violation(
        kind=TERMINATION, seq=seq, t=settled_t,
        events=(resolution_index, settled_index),
        message=(f"leg to {cache} resolved after "
                 f"change.settled (seq={seq})"))


def never_settled_violation(seq: int, detected_t: Optional[float],
                            leg_count: int,
                            send_indices: Tuple[int, ...]) -> Violation:
    return Violation(
        kind=TERMINATION, seq=seq, t=detected_t, events=send_indices,
        message=(f"change seq={seq} fanned out to "
                 f"{leg_count} holders but never settled"))


def retransmit_early_violation(seq: int, cache: str, t: float,
                               send_index: int, index: int) -> Violation:
    return Violation(
        kind=CAUSALITY, seq=seq, t=t, events=(send_index, index),
        message=f"retransmit before its send (seq={seq} cache={cache})")


def retransmit_attempt_violation(seq: int, cache: str, t: float,
                                 send_index: int, index: int,
                                 attempt: int) -> Violation:
    return Violation(
        kind=CAUSALITY, seq=seq, t=t, events=(send_index, index),
        message=(f"retransmit with attempt={attempt} < 2 "
                 f"(seq={seq} cache={cache})"))


def ack_before_send_violation(seq: int, cache: str, ack_t: float,
                              send_index: int, ack_index: int) -> Violation:
    return Violation(
        kind=CAUSALITY, seq=seq, t=ack_t, events=(send_index, ack_index),
        message=f"ack timestamped before its send (seq={seq} cache={cache})")


def ack_missing_rtt_violation(seq: int, cache: str, ack_t: float,
                              ack_index: int) -> Violation:
    return Violation(
        kind=CAUSALITY, seq=seq, t=ack_t, events=(ack_index,),
        message=f"ack carries no rtt field (seq={seq} cache={cache})")


def rtt_mismatch_violation(seq: int, cache: str, send_t: float,
                           ack_t: float, send_index: int, ack_index: int,
                           rtt: float) -> Violation:
    return Violation(
        kind=CAUSALITY, seq=seq, t=ack_t, events=(send_index, ack_index),
        message=(f"rtt={rtt!r} but ack-send timestamps give "
                 f"{ack_t - send_t!r} (seq={seq} cache={cache})"))


def stale_holder_violation(seq: int, cache: str, ack_t: float,
                           send_index: int, ack_index: int,
                           staleness: float, bound: float) -> Violation:
    return Violation(
        kind=STALENESS, seq=seq, t=ack_t, events=(send_index, ack_index),
        message=(f"holder stale {staleness:.6g}s > bound "
                 f"{bound:.6g}s (seq={seq} cache={cache})"))


def timeout_before_send_violation(seq: int, cache: str, timeout_t: float,
                                  send_index: int,
                                  timeout_index: int) -> Violation:
    return Violation(
        kind=CAUSALITY, seq=seq, t=timeout_t,
        events=(send_index, timeout_index),
        message=(f"timeout timestamped before its send "
                 f"(seq={seq} cache={cache})"))


def settled_acked_violation(seq: int, settled_t: Optional[float],
                            settled_index: int, claimed: int,
                            actual: int) -> Violation:
    return Violation(
        kind=TERMINATION, seq=seq, t=settled_t, events=(settled_index,),
        message=(f"change.settled claims acked={claimed} "
                 f"but the trace shows {actual} (seq={seq})"))


def settled_failed_violation(seq: int, settled_t: Optional[float],
                             settled_index: int, claimed: int,
                             actual: int) -> Violation:
    return Violation(
        kind=TERMINATION, seq=seq, t=settled_t, events=(settled_index,),
        message=(f"change.settled claims failed={claimed} "
                 f"but the trace shows {actual} (seq={seq})"))


def settled_window_violation(seq: int, settled_t: Optional[float],
                             settled_index: int,
                             recorded: Optional[float],
                             window: Optional[float]) -> Violation:
    return Violation(
        kind=STALENESS, seq=seq, t=settled_t, events=(settled_index,),
        message=(f"settled window={recorded!r} but last-ack "
                 f"recomputation gives {window!r} (seq={seq})"))


def untracked_unresolved_violation(cache: str, send_t: float,
                                   send_index: int) -> Violation:
    return Violation(
        kind=TERMINATION, t=send_t, events=(send_index,),
        message=(f"untracked notify.send to {cache} never "
                 f"resolved to ack or timeout"))


def storage_budget_violation(t: float, index: int, active: int,
                             budget: int) -> Violation:
    return Violation(
        kind=BUDGET_STORAGE, t=t, events=(index,),
        message=(f"lease occupancy {active} exceeds the "
                 f"storage budget {budget}"))


def renewal_budget_violation(t: float, index: int, in_window: int,
                             window: float, budget: float) -> Violation:
    return Violation(
        kind=BUDGET_RENEWAL, t=t, events=(index,),
        message=(f"{in_window} renewals in {window:.6g}s exceeds the "
                 f"communication budget of {budget:.6g}/s"))


def audit_trace(events: Sequence[TraceEvent],
                capture: Optional[Sequence[Dict[str, object]]] = None,
                limits: Optional[AuditLimits] = None) -> AuditReport:
    """Run every invariant check over one trace (see module docstring).

    ``capture`` is the wire-capture record list
    (:attr:`repro.obs.WireCapture.records` or
    :func:`repro.obs.load_capture` output); None skips the trace/wire
    cross-check.  ``limits`` supplies the budgets; None checks only the
    budget-free invariants.
    """
    limits = limits or AuditLimits()
    spans = build_spans(events)
    violations: List[Violation] = []
    checks: Dict[str, int] = {}

    def check(kind: str, amount: int = 1) -> None:
        checks[kind] = checks.get(kind, 0) + amount

    _audit_orphans(spans, violations)
    _audit_changes(spans, limits, violations, check)
    _audit_untracked(spans.untracked, violations, check)
    _audit_budgets(events, limits, violations, check)
    if capture is not None:
        _audit_wire(spans, capture, violations, check)
    violations.sort(key=lambda v: (v.events[0] if v.events else len(events),
                                   v.kind))
    return AuditReport(
        violations=violations, checks=checks, spans=spans,
        events_audited=len(events),
        capture_audited=len(capture) if capture is not None else None)


def audit_observability(obs: Any, limits: Optional[AuditLimits] = None
                        ) -> AuditReport:
    """Audit a live :class:`repro.obs.Observability` bundle in place."""
    if obs.trace.dropped:
        raise ValueError(
            f"trace incomplete: {obs.trace.dropped} events fell off the "
            f"ring — raise trace_capacity to audit this run")
    capture = obs.capture.records if obs.capture is not None else None
    return audit_trace(list(obs.trace.events), capture=capture,
                       limits=limits)


# -- span-level checks --------------------------------------------------------


def _audit_orphans(spans: SpanSet, violations: List[Violation]) -> None:
    for index, reason in spans.orphans:
        violations.append(orphan_violation(index, reason))


def _audit_leg(leg: NotificationLeg, detected_t: Optional[float],
               limits: AuditLimits, violations: List[Violation],
               check) -> None:
    """Per-leg causality (+ optional staleness bound)."""
    check(CAUSALITY)
    for index, t, attempt in leg.retransmits:
        if t < leg.send_t:
            violations.append(retransmit_early_violation(
                leg.seq, leg.cache, t, leg.send_index, index))
        if attempt < 2:
            violations.append(retransmit_attempt_violation(
                leg.seq, leg.cache, t, leg.send_index, index, attempt))
    if leg.ack_index is not None:
        assert leg.ack_t is not None
        if leg.ack_t < leg.send_t:
            violations.append(ack_before_send_violation(
                leg.seq, leg.cache, leg.ack_t, leg.send_index,
                leg.ack_index))
        if leg.rtt is None:
            violations.append(ack_missing_rtt_violation(
                leg.seq, leg.cache, leg.ack_t, leg.ack_index))
        elif abs((leg.ack_t - leg.send_t) - leg.rtt) > FLOAT_SLACK:
            violations.append(rtt_mismatch_violation(
                leg.seq, leg.cache, leg.send_t, leg.ack_t,
                leg.send_index, leg.ack_index, leg.rtt))
        if limits.max_staleness is not None and detected_t is not None:
            check(STALENESS)
            staleness = leg.ack_t - detected_t
            if staleness > limits.max_staleness + FLOAT_SLACK:
                violations.append(stale_holder_violation(
                    leg.seq, leg.cache, leg.ack_t, leg.send_index,
                    leg.ack_index, staleness, limits.max_staleness))
    if leg.timeout_index is not None and leg.timeout_t is not None \
            and leg.timeout_t < leg.send_t:
        violations.append(timeout_before_send_violation(
            leg.seq, leg.cache, leg.timeout_t, leg.send_index,
            leg.timeout_index))


def _audit_changes(spans: SpanSet, limits: AuditLimits,
                   violations: List[Violation], check) -> None:
    for span in spans.changes:
        # Completeness: every live holder at change time was notified.
        if span.detected_index is not None and span.name is not None:
            notified = {leg.cache for leg in span.legs}
            holders = spans.holders_at(span.name, span.rrtype or "",
                                       span.detected_t or 0.0,
                                       span.detected_index)
            check(COMPLETENESS, max(len(holders), 1))
            for holder in holders:
                if holder.cache not in notified:
                    violations.append(unnotified_holder_violation(
                        span.seq, span.detected_t, span.detected_index,
                        holder.grant_index, holder.cache, span.name,
                        span.rrtype))
        # Termination: every leg resolves, and before the settle event.
        for leg in span.legs:
            check(TERMINATION)
            if not leg.resolved:
                violations.append(unresolved_leg_violation(
                    span.seq, leg.cache, leg.send_t, leg.send_index))
            elif span.settled_index is not None \
                    and leg.resolution_index > span.settled_index:
                violations.append(resolved_after_settled_violation(
                    span.seq, leg.cache, span.settled_t,
                    leg.resolution_index, span.settled_index))
            _audit_leg(leg, span.detected_t, limits, violations, check)
        if span.legs and span.settled_index is None:
            check(TERMINATION)
            violations.append(never_settled_violation(
                span.seq, span.detected_t, len(span.legs),
                tuple(leg.send_index for leg in span.legs)))
        if span.settled_index is not None:
            _audit_settlement(span, violations, check)


def _audit_settlement(span, violations: List[Violation], check) -> None:
    """The settle event's bookkeeping matches the reconstructed tree."""
    check(STALENESS)
    acked = len(span.acked_legs())
    failed = sum(1 for leg in span.legs
                 if leg.resolved and not leg.acked)
    if span.settled_acked is not None and span.settled_acked != acked:
        violations.append(settled_acked_violation(
            span.seq, span.settled_t, span.settled_index,
            span.settled_acked, acked))
    if span.settled_failed is not None and span.settled_failed != failed:
        violations.append(settled_failed_violation(
            span.seq, span.settled_t, span.settled_index,
            span.settled_failed, failed))
    window = span.window()
    recorded = span.settled_window
    if (window is None) != (recorded is None) or (
            window is not None and recorded is not None
            and abs(window - recorded) > FLOAT_SLACK):
        violations.append(settled_window_violation(
            span.seq, span.settled_t, span.settled_index,
            recorded, window))


def _audit_untracked(untracked: Sequence[NotificationLeg],
                     violations: List[Violation], check) -> None:
    """Untracked (seq 0) legs still owe termination and causality."""
    for leg in untracked:
        check(TERMINATION)
        if not leg.resolved:
            violations.append(untracked_unresolved_violation(
                leg.cache, leg.send_t, leg.send_index))
        _audit_leg(leg, None, AuditLimits(), violations, check)


# -- budget checks ------------------------------------------------------------


def _audit_budgets(events: Sequence[TraceEvent], limits: AuditLimits,
                   violations: List[Violation], check) -> None:
    if limits.storage_budget is None and limits.renewal_budget is None:
        return
    active = 0
    renew_times: List[float] = []  # used as a sliding-window deque
    window_start = 0
    for index, (t, event, _fields) in enumerate(events):
        if event == LEASE_GRANT:
            active += 1
            if limits.storage_budget is not None:
                check(BUDGET_STORAGE)
                if active > limits.storage_budget:
                    violations.append(storage_budget_violation(
                        t, index, active, limits.storage_budget))
        elif event in (LEASE_EXPIRE, LEASE_REVOKE):
            active = max(0, active - 1)
        elif event == LEASE_RENEW and limits.renewal_budget is not None:
            check(BUDGET_RENEWAL)
            renew_times.append(t)
            while renew_times[window_start] <= t - limits.renewal_window:
                window_start += 1
            in_window = len(renew_times) - window_start
            allowed = limits.renewal_budget * limits.renewal_window
            if in_window > allowed + FLOAT_SLACK:
                violations.append(renewal_budget_violation(
                    t, index, in_window, limits.renewal_window,
                    limits.renewal_budget))


# -- trace/wire cross-check ---------------------------------------------------


def _audit_wire(spans: SpanSet, capture: Sequence[Dict[str, object]],
                violations: List[Violation], check) -> None:
    """Each notify.send must leave matching datagrams in the capture."""
    by_id: Dict[Tuple[object, str], List[Dict[str, object]]] = {}
    for record in capture:
        if record.get("opcode") != "CACHE-UPDATE" or record.get("qr"):
            continue
        key = (record.get("id"), str(record.get("dst")))
        by_id.setdefault(key, []).append(record)
    legs = [leg for span in spans.changes for leg in span.legs]
    legs.extend(spans.untracked)
    for leg in legs:
        if leg.msg_id is None:
            continue
        check(WIRE)
        datagrams = by_id.get((leg.msg_id, leg.cache), [])
        where = f"id={leg.msg_id} cache={leg.cache} seq={leg.seq}"
        if not datagrams:
            violations.append(Violation(
                kind=WIRE, seq=leg.seq, t=leg.send_t,
                events=(leg.send_index,),
                message=f"notify.send matches no captured datagram "
                        f"({where})"))
            continue
        if len(datagrams) < leg.attempts:
            violations.append(Violation(
                kind=WIRE, seq=leg.seq, t=leg.send_t,
                events=(leg.send_index,),
                message=(f"{leg.attempts} attempts but only "
                         f"{len(datagrams)} captured datagrams ({where})")))
        if leg.acked and not any(d.get("fate") == FATE_DELIVERED
                                 for d in datagrams):
            violations.append(Violation(
                kind=WIRE, seq=leg.seq, t=leg.ack_t,
                events=(leg.send_index, leg.ack_index or leg.send_index),
                message=(f"acknowledged but no captured datagram was "
                         f"delivered ({where})")))
