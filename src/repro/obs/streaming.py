"""Streaming protocol audit: one event at a time, bounded memory.

:func:`repro.obs.audit.audit_trace` is a batch auditor — it wants the
whole trace in memory before it says anything.  That shape cannot
watch a long-lived live run (PR 7) or follow a growing JSONL export:
by the time the verdict arrives the run is over.
:class:`IncrementalAuditor` runs the same invariant checks online:

* feed it trace events in emission order (:meth:`feed` /
  :meth:`feed_many`);
* violations that can never be repaired by later events (orphans,
  causality breaches, budget breaches, post-settlement bookkeeping)
  become **permanent** the moment their evidence arrives and are
  returned from :meth:`feed` — the live telemetry plane fails fast on
  them;
* obligations that a later event may still discharge (an unresolved
  ``notify.send``, an unnotified lease holder, an unsettled change)
  are held as **pending** state and materialize as violations only
  when :meth:`report` is asked for a verdict, exactly as the batch
  auditor would flag them on the same prefix.

Memory stays bounded by the *in-flight* protocol state, not the trace
length: once a change span settles and every leg has resolved, the
span is retired — its heavy per-leg state is dropped and only a small
per-seq residue (settle index, counters) survives to classify late
duplicates the same way the batch auditor does.  The peak number of
tracked spans (unretired changes + live leases + unresolved untracked
legs) is exposed as :attr:`IncrementalAuditor.peak_tracked_spans` and
asserted against documented bounds in the benches.

Equivalence contract (property-tested in
``tests/test_obs_streaming.py`` and asserted bit-for-bit in
``benchmarks/bench_streaming_audit.py``): on every prefix of a
*prefix-complete* trace, :meth:`report` yields the same
:class:`~repro.obs.audit.Violation` multiset, check counts, and event
totals as ``audit_trace`` over that prefix.  Prefix-complete means no
``notify.send`` for a seq arrives after that seq's ``change.settled``
has been observed with every earlier leg already resolved — true of
every trace the instrumentation emits, because the notification
module settles a change only once all its legs resolved and a new
change to the same record gets a fresh seq.

Both auditors build violations through the shared constructors in
:mod:`repro.obs.audit`, so messages and evidence tuples agree by
construction, not by parallel maintenance.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from .audit import (
    AuditLimits,
    BUDGET_RENEWAL,
    BUDGET_STORAGE,
    CAUSALITY,
    COMPLETENESS,
    FLOAT_SLACK,
    STALENESS,
    TERMINATION,
    Violation,
    ack_before_send_violation,
    ack_missing_rtt_violation,
    never_settled_violation,
    orphan_violation,
    renewal_budget_violation,
    resolved_after_settled_violation,
    retransmit_attempt_violation,
    retransmit_early_violation,
    rtt_mismatch_violation,
    settled_acked_violation,
    settled_failed_violation,
    settled_window_violation,
    stale_holder_violation,
    storage_budget_violation,
    timeout_before_send_violation,
    unnotified_holder_violation,
    unresolved_leg_violation,
    untracked_unresolved_violation,
)
from .metrics import Histogram
from .spans import _as_seq
from .trace import (
    CHANGE_DETECTED,
    CHANGE_SETTLED,
    LEASE_EXPIRE,
    LEASE_GRANT,
    LEASE_RENEW,
    LEASE_REVOKE,
    NOTIFY_ACK,
    NOTIFY_RETRANSMIT,
    NOTIFY_SEND,
    NOTIFY_TIMEOUT,
    TraceEvent,
)

_LeaseKey = Tuple[str, str, str]


@dataclasses.dataclass
class _Leg:
    """One in-flight notification leg (forgotten once resolved)."""

    seq: int
    cache: str
    name: object
    rrtype: object
    send_index: int
    send_t: float


@dataclasses.dataclass
class _Lease:
    """The live lease on one (cache, name, rrtype) pair."""

    cache: str
    grant_index: int
    start: float
    length: float


@dataclasses.dataclass
class _Change:
    """Running state for one change seq.

    While *tracked* the span carries its in-flight legs and unnotified
    holders; :meth:`IncrementalAuditor._maybe_retire` slims it down to
    the per-seq residue (settle/ detect indices + counters) once the
    change settled and every leg resolved.
    """

    seq: int
    detected_index: Optional[int] = None
    detected_t: Optional[float] = None
    name: object = None
    rrtype: object = None
    #: Unresolved legs in send order (resolved legs are dropped).
    unresolved: List[_Leg] = dataclasses.field(default_factory=list)
    #: send_index of every leg, resolved or not (for the never-settled
    #: evidence tuple); emptied at retirement.
    send_indices: List[int] = dataclasses.field(default_factory=list)
    #: Caches notified before the detect event (None once detected).
    pre_detect_caches: Optional[Set[str]] = \
        dataclasses.field(default_factory=set)
    #: holder cache -> grant_index still owed a notify.send
    #: (None before the detect event and after retirement).
    pending_holders: Optional[Dict[str, int]] = None
    #: ``(send_index, ack_index, ack_t, cache)`` for acks that landed
    #: before the detect event — their staleness check needs
    #: ``detected_t`` and runs retroactively when the detect arrives.
    pre_detect_acks: List[Tuple[int, int, float, str]] = \
        dataclasses.field(default_factory=list)
    acked: int = 0
    failed: int = 0
    ack_max: Optional[float] = None
    settled_index: Optional[int] = None
    settled_t: Optional[float] = None
    settled_window: Optional[float] = None
    settled_acked: Optional[int] = None
    settled_failed: Optional[int] = None
    retired: bool = False


@dataclasses.dataclass
class StreamReport:
    """The incremental auditor's verdict over the events fed so far.

    :meth:`as_dict` mirrors :meth:`repro.obs.audit.AuditReport.as_dict`
    key-for-key (``capture_audited`` is always None — the streaming
    plane audits the trace only), so the two verdicts compare directly.
    """

    violations: List[Violation]
    checks: Dict[str, int]
    events_audited: int
    #: Currently tracked spans and the high-water mark (the documented
    #: memory bound: unretired changes + live leases + unresolved
    #: untracked legs).
    tracked_spans: int
    peak_tracked_spans: int

    @property
    def ok(self) -> bool:
        """True when no invariant is violated on the prefix seen."""
        return not self.violations

    def counts(self) -> Dict[str, int]:
        """Violation kind -> occurrences, sorted by kind."""
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.kind] = tally.get(violation.kind, 0) + 1
        return dict(sorted(tally.items()))

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form comparable to the batch auditor's."""
        return {
            "ok": self.ok,
            "events_audited": self.events_audited,
            "capture_audited": None,
            "checks": dict(sorted(self.checks.items())),
            "violation_counts": self.counts(),
            "violations": [v.as_dict() for v in self.violations],
        }


class IncrementalAuditor:
    """Single-pass, bounded-memory equivalent of ``audit_trace``.

    ``window_hist`` (optional) receives one observation per settled
    change — its recomputed consistency window — at retirement time;
    the tail follower uses it for rolling p50/p95 percentiles.
    """

    def __init__(self, limits: Optional[AuditLimits] = None,
                 window_hist: Optional[Histogram] = None) -> None:
        self.limits = limits or AuditLimits()
        self.window_hist = window_hist
        self._permanent: List[Violation] = []
        self._checks: Dict[str, int] = {}
        self._pending_checks: Dict[str, int] = {}
        self._events = 0
        self._changes: Dict[int, _Change] = {}
        self._open_changes = 0
        self._leases: Dict[_LeaseKey, _Lease] = {}
        self._untracked: List[_Leg] = []
        # Budget replay state (mirrors _audit_budgets exactly, with the
        # renewal sliding window as a real deque instead of a list that
        # only ever grows).
        self._budget_active = 0
        self._renew_times: Deque[float] = collections.deque()
        self.peak_tracked_spans = 0

    # -- public surface ------------------------------------------------------

    @property
    def events_audited(self) -> int:
        """Events consumed so far."""
        return self._events

    @property
    def tracked_spans(self) -> int:
        """Live state the auditor is holding: unretired changes plus
        live leases plus unresolved untracked legs."""
        return (self._open_changes + len(self._leases)
                + len(self._untracked))

    @property
    def permanent_violations(self) -> Tuple[Violation, ...]:
        """Violations no later event can repair (fail-fast signal)."""
        return tuple(self._permanent)

    def feed(self, event: TraceEvent) -> List[Violation]:
        """Consume one trace event; return newly-permanent violations."""
        before = len(self._permanent)
        t, name, fields = event
        index = self._events
        self._events += 1
        if name == NOTIFY_SEND:
            self._on_send(index, t, fields)
        elif name == NOTIFY_ACK:
            self._on_ack(index, t, fields)
        elif name == NOTIFY_RETRANSMIT:
            self._on_retransmit(index, t, fields)
        elif name == NOTIFY_TIMEOUT:
            self._on_timeout(index, t, fields)
        elif name == CHANGE_DETECTED:
            self._on_detected(index, t, fields)
        elif name == CHANGE_SETTLED:
            self._on_settled(index, t, fields)
        elif name in (LEASE_GRANT, LEASE_RENEW):
            self._on_lease_start(name, index, t, fields)
        elif name in (LEASE_EXPIRE, LEASE_REVOKE):
            self._on_lease_end(name, index, fields)
        tracked = self.tracked_spans
        if tracked > self.peak_tracked_spans:
            self.peak_tracked_spans = tracked
        return self._permanent[before:]

    def feed_many(self, events: Iterable[TraceEvent]) -> List[Violation]:
        """Consume events in order; return newly-permanent violations."""
        before = len(self._permanent)
        for event in events:
            self.feed(event)
        return self._permanent[before:]

    def pending_violations(self) -> List[Violation]:
        """Obligations still open on the prefix seen so far.

        These are exactly the violations the batch auditor would emit
        for the same prefix on top of the permanent ones: unresolved
        legs, unnotified holders, unsettled fan-outs, and bookkeeping
        checks for spans that settled while legs were still in flight.
        Non-destructive — feeding more events may discharge them.
        """
        pending: List[Violation] = []
        self._pending_checks = {}
        for change in self._changes.values():
            for leg in change.unresolved:
                pending.append(unresolved_leg_violation(
                    change.seq, leg.cache, leg.send_t, leg.send_index))
            if change.retired:
                continue
            if change.pending_holders:
                detected_index = change.detected_index
                assert detected_index is not None
                for cache, grant_index in change.pending_holders.items():
                    pending.append(unnotified_holder_violation(
                        change.seq, change.detected_t,
                        detected_index, grant_index, cache,
                        change.name, change.rrtype))
            if change.send_indices and change.settled_index is None:
                self._pending_check(TERMINATION)
                pending.append(never_settled_violation(
                    change.seq, change.detected_t,
                    len(change.send_indices),
                    tuple(change.send_indices)))
            if change.settled_index is not None:
                # Settled while legs were still unresolved: the batch
                # auditor cross-checks the bookkeeping against the
                # counts visible so far; redo that here without
                # retiring, so a later resolution updates the verdict.
                pending.extend(self._settlement_violations(change))
        for leg in self._untracked:
            pending.append(untracked_unresolved_violation(
                leg.cache, leg.send_t, leg.send_index))
        return pending

    def report(self) -> StreamReport:
        """Full verdict over the prefix consumed so far."""
        violations = list(self._permanent)
        violations.extend(self.pending_violations())
        total = self._events
        violations.sort(key=lambda v: (v.events[0] if v.events else total,
                                       v.kind))
        checks = dict(self._checks)
        for kind, amount in self._pending_checks.items():
            checks[kind] = checks.get(kind, 0) + amount
        return StreamReport(
            violations=violations, checks=checks, events_audited=total,
            tracked_spans=self.tracked_spans,
            peak_tracked_spans=self.peak_tracked_spans)

    # -- bookkeeping ---------------------------------------------------------

    def _check(self, kind: str, amount: int = 1) -> None:
        self._checks[kind] = self._checks.get(kind, 0) + amount

    def _pending_check(self, kind: str, amount: int = 1) -> None:
        self._pending_checks[kind] = \
            self._pending_checks.get(kind, 0) + amount

    def _orphan(self, index: int, reason: str) -> None:
        self._permanent.append(orphan_violation(index, reason))

    def _change_for(self, seq: int) -> _Change:
        change = self._changes.get(seq)
        if change is None:
            change = self._changes[seq] = _Change(seq=seq)
            self._open_changes += 1
        return change

    def _open_leg(self, seq: int, cache: str, name: object,
                  rrtype: object) -> Optional[_Leg]:
        """The oldest unresolved leg this event can belong to."""
        if seq:
            change = self._changes.get(seq)
            candidates = change.unresolved if change is not None else []
        else:
            candidates = self._untracked
        for leg in candidates:
            if leg.cache != cache:
                continue
            if seq == 0 and (leg.name != name or leg.rrtype != rrtype):
                continue
            return leg
        return None

    # -- change-span events --------------------------------------------------

    def _on_detected(self, index: int, t: float,
                     fields: Dict[str, object]) -> None:
        seq = _as_seq(fields)
        if not seq:
            self._orphan(index, "change.detected without seq")
            return
        change = self._change_for(seq)
        if change.detected_index is not None:
            self._orphan(index, f"duplicate change.detected seq={seq}")
            return
        change.detected_index = index
        change.detected_t = t
        change.name = fields.get("name")
        change.rrtype = fields.get("rrtype")
        if change.name is not None:
            # Completeness: snapshot the live holders right now — this
            # is all the batch auditor's holders_at() can ever see for
            # this detect index, so the snapshot is final.
            rrtype = change.rrtype or ""
            holders = sorted(
                (lease.grant_index, lease.cache)
                for key, lease in self._leases.items()
                if key[1] == change.name and key[2] == rrtype
                and lease.grant_index < index
                and t < lease.start + lease.length)
            self._check(COMPLETENESS, max(len(holders), 1))
            seen = change.pre_detect_caches or set()
            change.pending_holders = {
                cache: grant_index for grant_index, cache in holders
                if cache not in seen}
        else:
            change.pending_holders = {}
        change.pre_detect_caches = None
        if self.limits.max_staleness is not None:
            for send_index, ack_index, ack_t, cache in \
                    change.pre_detect_acks:
                self._check(STALENESS)
                staleness = ack_t - t
                if staleness > self.limits.max_staleness + FLOAT_SLACK:
                    self._permanent.append(stale_holder_violation(
                        seq, cache, ack_t, send_index, ack_index,
                        staleness, self.limits.max_staleness))
        change.pre_detect_acks = []

    def _on_send(self, index: int, t: float,
                 fields: Dict[str, object]) -> None:
        seq = _as_seq(fields)
        leg = _Leg(seq=seq, cache=str(fields.get("cache")),
                   name=fields.get("name"), rrtype=fields.get("rrtype"),
                   send_index=index, send_t=t)
        self._check(TERMINATION)
        self._check(CAUSALITY)
        if not seq:
            self._untracked.append(leg)
            return
        change = self._change_for(seq)
        change.unresolved.append(leg)
        if not change.retired:
            change.send_indices.append(index)
        if change.pre_detect_caches is not None:
            change.pre_detect_caches.add(leg.cache)
        elif change.pending_holders:
            change.pending_holders.pop(leg.cache, None)

    def _on_retransmit(self, index: int, t: float,
                       fields: Dict[str, object]) -> None:
        seq = _as_seq(fields)
        leg = self._open_leg(seq, str(fields.get("cache")),
                             fields.get("name"), fields.get("rrtype"))
        if leg is None:
            self._orphan(index, "retransmit without outstanding send")
            return
        attempt = int(fields.get("attempt", 0))
        if t < leg.send_t:
            self._permanent.append(retransmit_early_violation(
                leg.seq, leg.cache, t, leg.send_index, index))
        if attempt < 2:
            self._permanent.append(retransmit_attempt_violation(
                leg.seq, leg.cache, t, leg.send_index, index, attempt))

    def _on_ack(self, index: int, t: float,
                fields: Dict[str, object]) -> None:
        seq = _as_seq(fields)
        leg = self._open_leg(seq, str(fields.get("cache")),
                             fields.get("name"), fields.get("rrtype"))
        if leg is None:
            self._orphan(index, "ack without outstanding send")
            return
        raw_rtt = fields.get("rtt")
        rtt = float(raw_rtt) if raw_rtt is not None else None
        if t < leg.send_t:
            self._permanent.append(ack_before_send_violation(
                leg.seq, leg.cache, t, leg.send_index, index))
        if rtt is None:
            self._permanent.append(ack_missing_rtt_violation(
                leg.seq, leg.cache, t, index))
        elif abs((t - leg.send_t) - rtt) > FLOAT_SLACK:
            self._permanent.append(rtt_mismatch_violation(
                leg.seq, leg.cache, leg.send_t, t, leg.send_index,
                index, rtt))
        if not leg.seq:
            # Untracked legs audit causality with default limits: no
            # staleness bound applies (matching _audit_untracked).
            self._untracked.remove(leg)
            return
        change = self._changes[leg.seq]
        change.unresolved.remove(leg)
        change.acked += 1
        if change.ack_max is None or t > change.ack_max:
            change.ack_max = t
        if self.limits.max_staleness is not None:
            if change.detected_t is not None:
                self._check(STALENESS)
                staleness = t - change.detected_t
                if staleness > self.limits.max_staleness + FLOAT_SLACK:
                    self._permanent.append(stale_holder_violation(
                        leg.seq, leg.cache, t, leg.send_index, index,
                        staleness, self.limits.max_staleness))
            elif not change.retired:
                change.pre_detect_acks.append(
                    (leg.send_index, index, t, leg.cache))
        if change.settled_index is not None:
            self._permanent.append(resolved_after_settled_violation(
                leg.seq, leg.cache, change.settled_t, index,
                change.settled_index))
        self._maybe_retire(change)

    def _on_timeout(self, index: int, t: float,
                    fields: Dict[str, object]) -> None:
        seq = _as_seq(fields)
        leg = self._open_leg(seq, str(fields.get("cache")),
                             fields.get("name"), fields.get("rrtype"))
        if leg is None:
            self._orphan(index, "timeout without outstanding send")
            return
        if t < leg.send_t:
            self._permanent.append(timeout_before_send_violation(
                leg.seq, leg.cache, t, leg.send_index, index))
        if not leg.seq:
            self._untracked.remove(leg)
            return
        change = self._changes[leg.seq]
        change.unresolved.remove(leg)
        change.failed += 1
        if change.settled_index is not None:
            self._permanent.append(resolved_after_settled_violation(
                leg.seq, leg.cache, change.settled_t, index,
                change.settled_index))
        self._maybe_retire(change)

    def _on_settled(self, index: int, t: float,
                    fields: Dict[str, object]) -> None:
        seq = _as_seq(fields)
        if not seq:
            self._orphan(index, "change.settled without seq")
            return
        change = self._change_for(seq)
        if change.settled_index is not None:
            self._orphan(index, f"duplicate change.settled seq={seq}")
            return
        change.settled_index = index
        change.settled_t = t
        window = fields.get("window")
        change.settled_window = \
            float(window) if window is not None else None
        acked = fields.get("acked")
        change.settled_acked = \
            int(acked) if acked is not None else None
        failed = fields.get("failed")
        change.settled_failed = \
            int(failed) if failed is not None else None
        self._maybe_retire(change)

    def _settlement_violations(self, change: _Change,
                               pending: bool = True) -> List[Violation]:
        """The settle event's bookkeeping vs the counts seen so far."""
        settled_index = change.settled_index
        assert settled_index is not None
        if pending:
            self._pending_check(STALENESS)
        else:
            self._check(STALENESS)
        out: List[Violation] = []
        if change.settled_acked is not None \
                and change.settled_acked != change.acked:
            out.append(settled_acked_violation(
                change.seq, change.settled_t, settled_index,
                change.settled_acked, change.acked))
        if change.settled_failed is not None \
                and change.settled_failed != change.failed:
            out.append(settled_failed_violation(
                change.seq, change.settled_t, settled_index,
                change.settled_failed, change.failed))
        window: Optional[float] = None
        if change.detected_t is not None and change.ack_max is not None:
            window = change.ack_max - change.detected_t
        recorded = change.settled_window
        if (window is None) != (recorded is None) or (
                window is not None and recorded is not None
                and abs(window - recorded) > FLOAT_SLACK):
            out.append(settled_window_violation(
                change.seq, change.settled_t, settled_index,
                recorded, window))
        return out

    def _maybe_retire(self, change: _Change) -> None:
        """Fold a settled, fully-resolved span into permanent state."""
        if change.retired or change.settled_index is None \
                or change.unresolved:
            return
        self._permanent.extend(
            self._settlement_violations(change, pending=False))
        if change.pending_holders:
            detected_index = change.detected_index
            assert detected_index is not None
            for cache, grant_index in change.pending_holders.items():
                self._permanent.append(unnotified_holder_violation(
                    change.seq, change.detected_t, detected_index,
                    grant_index, cache, change.name, change.rrtype))
        window_hist = self.window_hist
        if window_hist is not None:
            if change.detected_t is not None \
                    and change.ack_max is not None:
                window_hist.observe(change.ack_max - change.detected_t)
        change.retired = True
        change.pending_holders = None
        change.pre_detect_caches = None
        change.send_indices = []
        change.pre_detect_acks = []
        self._open_changes -= 1

    # -- lease + budget events -----------------------------------------------

    def _on_lease_start(self, event: str, index: int, t: float,
                        fields: Dict[str, object]) -> None:
        key: _LeaseKey = (str(fields.get("cache")),
                          str(fields.get("name")),
                          str(fields.get("rrtype")))
        length = float(fields.get("length", 0.0))
        current = self._leases.get(key)
        if event == LEASE_RENEW:
            if current is not None:
                # A renewal restarts the term from its own timestamp.
                current.start = t
                current.length = length
            else:
                # Renew without a live lease opens a fresh span, same
                # as build_spans' grant fallthrough.
                self._leases[key] = _Lease(
                    cache=key[0], grant_index=index, start=t,
                    length=length)
            if self.limits.renewal_budget is not None:
                self._check(BUDGET_RENEWAL)
                window = self.limits.renewal_window
                times = self._renew_times
                times.append(t)
                while times[0] <= t - window:
                    times.popleft()
                in_window = len(times)
                allowed = self.limits.renewal_budget * window
                if in_window > allowed + FLOAT_SLACK:
                    self._permanent.append(renewal_budget_violation(
                        t, index, in_window, window,
                        self.limits.renewal_budget))
            return
        # LEASE_GRANT: supersedes any span still open on the pair.
        self._leases[key] = _Lease(cache=key[0], grant_index=index,
                                   start=t, length=length)
        self._budget_active += 1
        if self.limits.storage_budget is not None:
            self._check(BUDGET_STORAGE)
            if self._budget_active > self.limits.storage_budget:
                self._permanent.append(storage_budget_violation(
                    t, index, self._budget_active,
                    self.limits.storage_budget))

    def _on_lease_end(self, event: str, index: int,
                      fields: Dict[str, object]) -> None:
        key: _LeaseKey = (str(fields.get("cache")),
                          str(fields.get("name")),
                          str(fields.get("rrtype")))
        if self._leases.pop(key, None) is None:
            self._orphan(index, f"{event} without a live lease")
        self._budget_active = max(0, self._budget_active - 1)


__all__ = ["IncrementalAuditor", "StreamReport"]
