"""Wire capture: a pcap-like JSONL record of every simulated datagram.

Attached to a :class:`~repro.net.network.Network`, the capture records
one line per datagram *fate* — delivered, dropped, unreachable — plus
reliable-stream messages, each carrying the virtual timestamp, source
and destination endpoints, payload size, and the DNS header fields
(message ID, opcode, QR) sniffed straight from the first bytes of the
payload.  That is exactly what debugging a retransmission storm or a
flash-crowd run needs: ``repro-obs export`` turns the capture into a
spreadsheet, and duplicate/retransmit patterns are visible as repeated
message IDs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple, Union

#: DNS opcode number -> mnemonic, for readable captures.  6 is DNScup's
#: CACHE-UPDATE (PROTOCOL.md §4); 5 is RFC 2136 UPDATE; 4 is NOTIFY.
_OPCODE_NAMES = {0: "QUERY", 1: "IQUERY", 2: "STATUS", 4: "NOTIFY",
                 5: "UPDATE", 6: "CACHE-UPDATE"}

#: Datagram fates recorded by the capture.
FATE_DELIVERED = "delivered"
FATE_DROPPED = "dropped"
FATE_UNREACHABLE = "unreachable"


def sniff_header(payload: bytes) -> Tuple[Optional[int], str, Optional[bool]]:
    """(message id, opcode mnemonic, QR bit) from a DNS payload prefix.

    Tolerates truncated/garbage payloads — fields degrade to ``None`` /
    ``"?"`` rather than raising, since a capture must never break the
    traffic it observes.
    """
    if len(payload) < 2:
        return None, "?", None
    msg_id = int.from_bytes(payload[:2], "big")
    if len(payload) < 3:
        return msg_id, "?", None
    flags = payload[2]
    opcode = (flags >> 3) & 0xF
    return msg_id, _OPCODE_NAMES.get(opcode, str(opcode)), bool(flags & 0x80)


class WireCapture:
    """An in-memory capture buffer with JSONL export.

    Records are plain dicts with a fixed key order (``t``, ``proto``,
    ``src``, ``dst``, ``size``, ``id``, ``opcode``, ``qr``, ``fate``,
    then extras), so exports are byte-stable across identical runs.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.records: List[Dict[str, object]] = []
        self.capacity = capacity
        #: Records discarded once ``capacity`` was reached.
        self.dropped = 0

    def record(self, t: float, proto: str, src: object, dst: object,
               payload: bytes, fate: str, **extra: object) -> None:
        """Append one datagram-fate record."""
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        msg_id, opcode, qr = sniff_header(payload)
        entry: Dict[str, object] = {
            "t": t, "proto": proto,
            "src": f"{src[0]}:{src[1]}", "dst": f"{dst[0]}:{dst[1]}",
            "size": len(payload), "id": msg_id, "opcode": opcode,
            "qr": qr, "fate": fate,
        }
        for key in sorted(extra):
            entry[key] = extra[key]
        self.records.append(entry)

    def __len__(self) -> int:
        return len(self.records)

    def fates(self) -> Dict[str, int]:
        """Fate -> occurrences, sorted by fate name."""
        tally: Dict[str, int] = {}
        for entry in self.records:
            fate = str(entry["fate"])
            tally[fate] = tally.get(fate, 0) + 1
        return dict(sorted(tally.items()))

    def export_jsonl(self, target: Union[str, TextIO]) -> int:
        """Write the capture as JSON lines; returns lines written."""
        own = isinstance(target, str)
        stream: TextIO = open(target, "w") if own else target  # type: ignore[arg-type]
        try:
            for entry in self.records:
                stream.write(json.dumps(entry, separators=(",", ":")) + "\n")
            return len(self.records)
        finally:
            if own:
                stream.close()


def load_capture(source: Union[str, TextIO]) -> List[Dict[str, object]]:
    """Read a capture JSONL back into record dicts."""
    own = isinstance(source, str)
    stream: TextIO = open(source) if own else source  # type: ignore[arg-type]
    try:
        return [json.loads(line) for line in stream if line.strip()]
    finally:
        if own:
            stream.close()
