"""Run reports: percentiles, per-domain timelines, markdown audits.

The trace is the full account of a run; this module turns it into the
things an operator actually reads:

* :func:`histogram_percentile` — bucket-interpolated quantiles
  (p50/p95/p99) from a :class:`repro.obs.Histogram` or its snapshot
  dict, the standard fixed-bucket estimator;
* :func:`domain_timelines` — per-domain change timelines (detected,
  settled, window, acks) reconstructed from the spans;
* :func:`render_report` — a markdown audit report combining all of it
  with the invariant checker's verdict, the artifact ``repro-obs
  report`` writes for every benchmarked run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .analyze import summarize_events
from .audit import AuditLimits, AuditReport, audit_trace
from .metrics import Histogram, LATENCY_BUCKETS, bucket_quantile
from .spans import ChangeSpan, SpanSet, build_spans
from .trace import TraceEvent

#: The quantiles every report tabulates.
REPORT_QUANTILES = (50.0, 95.0, 99.0)

#: Either a live Histogram or the ``as_dict`` / snapshot form.
HistogramLike = Union[Histogram, Dict[str, object]]


def _histogram_parts(hist: HistogramLike
                     ) -> Tuple[int, List[Tuple[float, int]],
                                Optional[float], Optional[float]]:
    """(count, [(upper bound, count)], min, max) from either form."""
    if isinstance(hist, Histogram):
        count = hist.count
        buckets = list(zip((*hist.bounds, math.inf), hist.counts))
        low = hist.min if count else None
        high = hist.max if count else None
    else:
        count = int(hist["count"])  # type: ignore[arg-type]
        buckets = [(math.inf if bound is None else float(bound), int(n))
                   for bound, n in hist["buckets"]]  # type: ignore[union-attr]
        low = hist.get("min")  # type: ignore[union-attr]
        high = hist.get("max")  # type: ignore[union-attr]
    return count, buckets, low, high


def histogram_percentile(hist: HistogramLike, quantile: float
                         ) -> Optional[float]:
    """The ``quantile``-th percentile, linearly interpolated per bucket.

    The estimator is the standard fixed-bucket one, shared with every
    other call site through :func:`repro.obs.metrics.bucket_quantile`
    (live histograms short-circuit to :meth:`Histogram.quantile`): walk
    the cumulative counts to the bucket containing the target rank,
    then interpolate linearly inside it.  The first bucket's lower edge
    is the observed minimum (0 would bias small latencies), and the
    overflow bucket is clamped to the observed maximum — so estimates
    never leave the observed range.  None when the histogram is empty.
    """
    if isinstance(hist, Histogram):
        return hist.quantile(quantile)
    count, buckets, low, high = _histogram_parts(hist)
    return bucket_quantile(count, buckets, low, high, quantile)


def percentiles(hist: HistogramLike,
                quantiles: Sequence[float] = REPORT_QUANTILES
                ) -> Dict[str, Optional[float]]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for ``quantiles``."""
    return {f"p{quantile:g}": histogram_percentile(hist, quantile)
            for quantile in quantiles}


# -- per-domain timelines -----------------------------------------------------


def domain_timelines(spans: SpanSet) -> Dict[str, List[ChangeSpan]]:
    """Change spans grouped by owner name, each group in seq order."""
    timelines: Dict[str, List[ChangeSpan]] = {}
    for span in spans.changes:
        timelines.setdefault(span.name or "?", []).append(span)
    for changes in timelines.values():
        changes.sort(key=lambda span: span.seq)
    return dict(sorted(timelines.items()))


# -- markdown rendering -------------------------------------------------------


def _fmt(value: object) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _md_table(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


def _derived_histograms(events: Sequence[TraceEvent],
                        spans: SpanSet) -> Dict[str, Histogram]:
    """Latency histograms rebuilt from the trace alone."""
    rtt_hist = Histogram("notify.ack_rtt", LATENCY_BUCKETS)
    window_hist = Histogram("notify.consistency_window", LATENCY_BUCKETS)
    staleness_hist = Histogram("notify.holder_staleness", LATENCY_BUCKETS)
    for span in spans.changes:
        window = span.window()
        if window is not None:
            window_hist.observe(window)
        for leg in span.legs:
            if leg.rtt is not None:
                rtt_hist.observe(leg.rtt)
            if leg.ack_t is not None and span.detected_t is not None:
                staleness_hist.observe(leg.ack_t - span.detected_t)
    for leg in spans.untracked:
        if leg.rtt is not None:
            rtt_hist.observe(leg.rtt)
    return {hist.name: hist
            for hist in (rtt_hist, window_hist, staleness_hist)}


def render_report(events: Sequence[TraceEvent],
                  capture: Optional[Sequence[Dict[str, object]]] = None,
                  limits: Optional[AuditLimits] = None,
                  title: str = "DNScup run report",
                  max_domains: int = 40,
                  audit: Optional[AuditReport] = None) -> str:
    """One markdown document telling a run's whole story.

    Sections: run overview, notification percentiles (bucket-
    interpolated p50/p95/p99), per-domain change timelines (capped at
    ``max_domains`` groups), and the invariant audit — either the
    supplied ``audit`` or one freshly run over ``events``/``capture``.
    """
    if audit is None:
        audit = audit_trace(events, capture=capture,
                            limits=limits or AuditLimits())
    spans = audit.spans
    summary = summarize_events(events)
    sections: List[str] = [f"# {title}", ""]

    span_info = summary["span"]
    notify = summary["notify"]
    lease = summary["lease"]
    sections.append("## Run overview")
    sections.append("")
    sections.append(_md_table(
        ("quantity", "value"),
        [("trace events", span_info["count"]),
         ("virtual time span (s)",
          None if span_info["first"] is None
          else span_info["last"] - span_info["first"]),
         ("changes detected", summary["changes"]["detected"]),
         ("changes settled with ack",
          summary["changes"]["settled_with_ack"]),
         ("CACHE-UPDATEs sent", notify["sends"]),
         ("retransmissions", notify["retransmits"]),
         ("acks / timeouts", f"{notify['acks']} / {notify['timeouts']}"),
         ("lease grants / renewals",
          f"{lease['grants']} / {lease['renewals']}"),
         ("captured datagrams",
          len(capture) if capture is not None else None)]))
    sections.append("")

    sections.append("## Notification percentiles (bucket-interpolated)")
    sections.append("")
    hists = _derived_histograms(events, spans)
    rows = []
    for name, hist in hists.items():
        stats = percentiles(hist)
        rows.append((name, hist.count, _fmt(hist.mean), _fmt(stats["p50"]),
                     _fmt(stats["p95"]), _fmt(stats["p99"]),
                     _fmt(hist.max if hist.count else None)))
    sections.append(_md_table(
        ("quantity (s)", "count", "mean", "p50", "p95", "p99", "max"),
        rows))
    sections.append("")

    sections.append("## Per-domain timelines")
    sections.append("")
    timelines = domain_timelines(spans)
    if not timelines:
        sections.append("No tracked changes in this trace.")
    else:
        rows = []
        for name, changes in list(timelines.items())[:max_domains]:
            for span in changes:
                rows.append((name, span.seq, _fmt(span.detected_t),
                             _fmt(span.settled_t), _fmt(span.window()),
                             len(span.acked_legs()), len(span.legs)))
        sections.append(_md_table(
            ("domain", "seq", "detected (s)", "settled (s)", "window (s)",
             "acked", "holders"), rows))
        if len(timelines) > max_domains:
            sections.append("")
            sections.append(f"*…{len(timelines) - max_domains} further "
                            f"domains elided.*")
    sections.append("")

    sections.append("## Invariant audit")
    sections.append("")
    checked = sum(audit.checks.values())
    if audit.ok:
        sections.append(f"**0 violations** across {checked} checks "
                        f"({', '.join(sorted(audit.checks)) or 'none run'}).")
    else:
        sections.append(f"**{len(audit.violations)} violation(s)** across "
                        f"{checked} checks:")
        sections.append("")
        sections.append(_md_table(
            ("kind", "seq", "t (s)", "events", "message"),
            [(v.kind, v.seq or "—", _fmt(v.t),
              " ".join(str(i) for i in v.events), v.message)
             for v in audit.violations]))
    sections.append("")
    return "\n".join(sections)
