"""Observability: sim-clock-aware tracing, metrics, and wire capture.

Three instruments, all off by default and zero-cost when off:

* :class:`TraceBus` — ring-buffered structured event recorder stamped
  with the simulator's virtual clock; JSONL export for ``repro-obs``;
* :class:`Registry` — counters, gauges, and fixed-bucket histograms
  behind one :meth:`Registry.snapshot`;
* :class:`WireCapture` — a pcap-like JSONL record of every simulated
  datagram (timestamp, endpoints, DNS header fields, size, fate).

:class:`Observability` bundles the three and attaches them across the
stack; :mod:`repro.obs.analyze` recomputes the evaluation's headline
numbers (ack RTT, consistency window) from the raw trace alone.

On top of the raw record sits the auditing layer:

* :mod:`repro.obs.spans` rebuilds causal spans — per-change
  notification trees and per-pair lease lifecycles;
* :mod:`repro.obs.audit` checks the protocol's guarantees over those
  spans (completeness, termination, causality, budget conformance,
  staleness, trace/wire agreement) and emits :class:`Violation`
  records;
* :mod:`repro.obs.report` renders bucket-interpolated percentiles,
  per-domain timelines, and the markdown run report behind
  ``repro-obs audit|spans|report``.
"""

from .analyze import (
    consistency_windows,
    diff_summaries,
    flatten_summary,
    summarize_events,
)
from .audit import (
    AuditLimits,
    AuditReport,
    BUDGET_RENEWAL,
    BUDGET_STORAGE,
    CAUSALITY,
    COMPLETENESS,
    STALENESS,
    TERMINATION,
    VIOLATION_KINDS,
    Violation,
    WIRE,
    audit_observability,
    audit_trace,
)
from .capture import (
    FATE_DELIVERED,
    FATE_DROPPED,
    FATE_UNREACHABLE,
    WireCapture,
    load_capture,
    sniff_header,
)
from .load import (
    DecayedRate,
    LoadLedger,
    LoadRecorder,
    P2Quantile,
    QuantileSketch,
    StormDetector,
    StormEpisode,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    LEASE_BUCKETS,
    Registry,
    bucket_quantile,
)
from .report import (
    REPORT_QUANTILES,
    domain_timelines,
    histogram_percentile,
    percentiles,
    render_report,
)
from .spans import (
    ChangeSpan,
    LeaseSpan,
    NotificationLeg,
    SpanSet,
    build_spans,
)
from .streaming import (
    IncrementalAuditor,
    StreamReport,
)
from .trace import (
    CHANGE_DETECTED,
    CHANGE_SETTLED,
    EVENT_NAMES,
    LOAD_STORM_END,
    LOAD_STORM_START,
    TRACE_META,
    LEASE_EXPIRE,
    LEASE_GRANT,
    LEASE_RENEW,
    LEASE_REVOKE,
    NET_DELIVER,
    NET_DROP,
    NET_DUPLICATE,
    NET_UNREACHABLE,
    NOTIFY_ACK,
    NOTIFY_RETRANSMIT,
    NOTIFY_SEND,
    NOTIFY_TIMEOUT,
    PUSH_KEEPALIVE,
    PUSH_SEND,
    RENEGO_FAIL,
    RENEGO_LOST,
    RENEGO_REFRESH,
    RENEGO_SEND,
    TraceBus,
    TraceEvent,
    load_trace_events,
    merge_traces,
)
from .wiring import Observability

__all__ = [
    "TraceBus", "TraceEvent", "load_trace_events", "merge_traces",
    "EVENT_NAMES", "TRACE_META",
    "LEASE_GRANT", "LEASE_RENEW", "LEASE_EXPIRE", "LEASE_REVOKE",
    "CHANGE_DETECTED", "CHANGE_SETTLED",
    "NOTIFY_SEND", "NOTIFY_RETRANSMIT", "NOTIFY_ACK", "NOTIFY_TIMEOUT",
    "NET_DELIVER", "NET_DROP", "NET_DUPLICATE", "NET_UNREACHABLE",
    "RENEGO_SEND", "RENEGO_REFRESH", "RENEGO_LOST", "RENEGO_FAIL",
    "PUSH_SEND", "PUSH_KEEPALIVE",
    "LOAD_STORM_START", "LOAD_STORM_END",
    "Counter", "Gauge", "Histogram", "Registry", "bucket_quantile",
    "LATENCY_BUCKETS", "LEASE_BUCKETS",
    "LoadLedger", "LoadRecorder", "StormDetector", "StormEpisode",
    "DecayedRate", "P2Quantile", "QuantileSketch",
    "WireCapture", "load_capture", "sniff_header",
    "FATE_DELIVERED", "FATE_DROPPED", "FATE_UNREACHABLE",
    "summarize_events", "consistency_windows", "flatten_summary",
    "diff_summaries",
    "Observability",
    "ChangeSpan", "LeaseSpan", "NotificationLeg", "SpanSet", "build_spans",
    "AuditLimits", "AuditReport", "Violation", "VIOLATION_KINDS",
    "audit_trace", "audit_observability",
    "IncrementalAuditor", "StreamReport",
    "COMPLETENESS", "TERMINATION", "CAUSALITY",
    "BUDGET_STORAGE", "BUDGET_RENEWAL", "STALENESS", "WIRE",
    "histogram_percentile", "percentiles", "REPORT_QUANTILES",
    "domain_timelines", "render_report",
]
