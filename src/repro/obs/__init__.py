"""Observability: sim-clock-aware tracing, metrics, and wire capture.

Three instruments, all off by default and zero-cost when off:

* :class:`TraceBus` — ring-buffered structured event recorder stamped
  with the simulator's virtual clock; JSONL export for ``repro-obs``;
* :class:`Registry` — counters, gauges, and fixed-bucket histograms
  behind one :meth:`Registry.snapshot`;
* :class:`WireCapture` — a pcap-like JSONL record of every simulated
  datagram (timestamp, endpoints, DNS header fields, size, fate).

:class:`Observability` bundles the three and attaches them across the
stack; :mod:`repro.obs.analyze` recomputes the evaluation's headline
numbers (ack RTT, consistency window) from the raw trace alone.
"""

from .analyze import (
    consistency_windows,
    diff_summaries,
    flatten_summary,
    summarize_events,
)
from .capture import (
    FATE_DELIVERED,
    FATE_DROPPED,
    FATE_UNREACHABLE,
    WireCapture,
    load_capture,
    sniff_header,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    LEASE_BUCKETS,
    Registry,
)
from .trace import (
    CHANGE_DETECTED,
    CHANGE_SETTLED,
    EVENT_NAMES,
    LEASE_EXPIRE,
    LEASE_GRANT,
    LEASE_RENEW,
    LEASE_REVOKE,
    NET_DELIVER,
    NET_DROP,
    NET_DUPLICATE,
    NET_UNREACHABLE,
    NOTIFY_ACK,
    NOTIFY_RETRANSMIT,
    NOTIFY_SEND,
    NOTIFY_TIMEOUT,
    PUSH_KEEPALIVE,
    PUSH_SEND,
    RENEGO_FAIL,
    RENEGO_LOST,
    RENEGO_REFRESH,
    RENEGO_SEND,
    TraceBus,
    TraceEvent,
    load_trace_events,
    merge_traces,
)
from .wiring import Observability

__all__ = [
    "TraceBus", "TraceEvent", "load_trace_events", "merge_traces",
    "EVENT_NAMES",
    "LEASE_GRANT", "LEASE_RENEW", "LEASE_EXPIRE", "LEASE_REVOKE",
    "CHANGE_DETECTED", "CHANGE_SETTLED",
    "NOTIFY_SEND", "NOTIFY_RETRANSMIT", "NOTIFY_ACK", "NOTIFY_TIMEOUT",
    "NET_DELIVER", "NET_DROP", "NET_DUPLICATE", "NET_UNREACHABLE",
    "RENEGO_SEND", "RENEGO_REFRESH", "RENEGO_LOST", "RENEGO_FAIL",
    "PUSH_SEND", "PUSH_KEEPALIVE",
    "Counter", "Gauge", "Histogram", "Registry",
    "LATENCY_BUCKETS", "LEASE_BUCKETS",
    "WireCapture", "load_capture", "sniff_header",
    "FATE_DELIVERED", "FATE_DROPPED", "FATE_UNREACHABLE",
    "summarize_events", "consistency_windows", "flatten_summary",
    "diff_summaries",
    "Observability",
]
