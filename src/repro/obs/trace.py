"""The trace bus: sim-clock-aware structured event recording.

Every interesting protocol moment — a lease granted, a change detected,
a CACHE-UPDATE retransmitted, a datagram dropped — can be emitted as one
:class:`TraceEvent` onto a process-local :class:`TraceBus`.  The bus
stamps each event with the simulator's virtual clock, keeps them in a
bounded ring buffer, and exports JSON-lines for offline analysis with
``repro-obs`` (:mod:`repro.tools.obs_tool`).

Tracing is **off by default** and zero-cost when off: instrumented
components hold ``trace = None`` and guard every emission with a plain
``is not None`` check, so no event object, string, or dict is ever built
unless a bus is attached.  Event names are a stable contract documented
in PROTOCOL.md §9.
"""

from __future__ import annotations

import collections
import json
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    TextIO,
    Tuple,
    Union,
)

# -- the event-name contract (PROTOCOL.md §9) --------------------------------

#: Lease lifecycle (emitted by :class:`repro.core.lease.LeaseTable`).
LEASE_GRANT = "lease.grant"
LEASE_RENEW = "lease.renew"
LEASE_EXPIRE = "lease.expire"
LEASE_REVOKE = "lease.revoke"

#: Change detection (emitted by :class:`repro.core.detection.DetectionModule`).
CHANGE_DETECTED = "change.detected"
#: All notifications for one change resolved (acked or timed out).
CHANGE_SETTLED = "change.settled"

#: CACHE-UPDATE fan-out (emitted by
#: :class:`repro.core.notification.NotificationModule`).
NOTIFY_SEND = "notify.send"
NOTIFY_RETRANSMIT = "notify.retransmit"
NOTIFY_ACK = "notify.ack"
NOTIFY_TIMEOUT = "notify.timeout"

#: Network transport (emitted by :class:`repro.net.network.Network`).
NET_DELIVER = "net.deliver"
NET_DROP = "net.drop"
NET_DUPLICATE = "net.duplicate"
NET_UNREACHABLE = "net.unreachable"

#: Lease renegotiation (emitted by
#: :class:`repro.core.renegotiation.RenegotiationAgent`).
RENEGO_SEND = "renego.send"
RENEGO_REFRESH = "renego.refresh"
RENEGO_LOST = "renego.lost"
RENEGO_FAIL = "renego.fail"

#: DNS-Push comparator (emitted by :class:`repro.server.push.PushService`).
PUSH_SEND = "push.send"
PUSH_KEEPALIVE = "push.keepalive"

#: Load-attribution plane (emitted by
#: :class:`repro.obs.load.StormDetector`): a renewal-synchronization
#: episode opened / closed against the decayed baseline (PROTOCOL §9.5).
LOAD_STORM_START = "load.storm.start"
LOAD_STORM_END = "load.storm.end"

#: Every event name the instrumentation can emit, for validation.
EVENT_NAMES = frozenset({
    LEASE_GRANT, LEASE_RENEW, LEASE_EXPIRE, LEASE_REVOKE,
    CHANGE_DETECTED, CHANGE_SETTLED,
    NOTIFY_SEND, NOTIFY_RETRANSMIT, NOTIFY_ACK, NOTIFY_TIMEOUT,
    NET_DELIVER, NET_DROP, NET_DUPLICATE, NET_UNREACHABLE,
    RENEGO_SEND, RENEGO_REFRESH, RENEGO_LOST, RENEGO_FAIL,
    PUSH_SEND, PUSH_KEEPALIVE,
    LOAD_STORM_START, LOAD_STORM_END,
})

#: Synthetic record written by ``export_jsonl(..., meta=True)`` carrying
#: the bus's own bookkeeping (emitted/dropped/cleared/capacity) — not an
#: instrumentation event, but accepted by strict loading.
TRACE_META = "trace.meta"


#: One recorded event: (time, event name, fields).  A plain tuple keeps
#: recording allocation-light; fields is the emit call's keyword dict.
TraceEvent = Tuple[float, str, Dict[str, object]]

#: A clock source: a zero-arg callable returning seconds of virtual time.
Clock = Callable[[], float]


class TraceBus:
    """Ring-buffered, sim-clock-stamped structured event recorder.

    ``clock`` is either a :class:`~repro.net.simulator.Simulator` (its
    ``now`` is read per event) or any zero-arg callable; without one,
    emitters must pass an explicit ``t``.  ``capacity`` bounds memory:
    the oldest events fall off the ring first.
    """

    def __init__(self, clock: Optional[Union[Clock, object]] = None,
                 capacity: int = 1 << 20) -> None:
        if clock is not None and not callable(clock):
            simulator = clock
            clock = lambda: simulator.now  # noqa: E731
        self._clock: Optional[Clock] = clock
        self.capacity = capacity
        self.events: Deque[TraceEvent] = collections.deque(maxlen=capacity)
        #: Events discarded by an explicit :meth:`clear` (deliberate).
        self.cleared = 0
        self._emitted = 0
        #: Streaming hook: called with each record tuple right after it
        #: is appended (clock already stamped).  The live telemetry
        #: plane (:mod:`repro.net.telemetry`) and the load ledger
        #: (:mod:`repro.obs.load`) wire themselves here via
        #: :meth:`add_tap`; ``None`` (the default) costs one pointer
        #: check per emit and nothing else.  With one subscriber ``tap``
        #: is that callable itself; with several it is a fan-out shim —
        #: ``emit`` never pays more than the single pointer check to
        #: find out.
        self.tap: Optional[Callable[[TraceEvent], None]] = None
        self._taps: List[Callable[[TraceEvent], None]] = []

    def add_tap(self, fn: Callable[[TraceEvent], None]) -> None:
        """Subscribe ``fn`` to every future emission.

        Taps fire in installation order, after the record is appended
        to the ring.  A tap installed by legacy direct assignment to
        :attr:`tap` is adopted as the first subscriber.  Installing the
        same callable twice raises :class:`ValueError`.
        """
        if self.tap is not None and not self._taps:
            self._taps.append(self.tap)  # adopt a legacy direct assignment
        if fn in self._taps:
            raise ValueError("tap already installed on this trace bus")
        self._taps.append(fn)
        self._rebind()

    def remove_tap(self, fn: Callable[[TraceEvent], None]) -> None:
        """Unsubscribe ``fn``; raises :class:`ValueError` if absent."""
        if self.tap is not None and not self._taps:
            self._taps.append(self.tap)
        self._taps.remove(fn)
        self._rebind()

    def _rebind(self) -> None:
        """Point :attr:`tap` at None / the lone tap / a fan-out shim."""
        if not self._taps:
            self.tap = None
        elif len(self._taps) == 1:
            self.tap = self._taps[0]
        else:
            taps = tuple(self._taps)

            def fan_out(record: TraceEvent) -> None:
                for tap in taps:
                    tap(record)

            self.tap = fan_out

    def emit(self, event: str, t: Optional[float] = None,
             **fields: object) -> None:
        """Record one event, stamped ``t`` or the bus clock's now."""
        if t is None:
            t = self._clock() if self._clock is not None else 0.0
        self._emitted += 1
        record: TraceEvent = (t, event, fields)
        self.events.append(record)
        if self.tap is not None:
            self.tap(record)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def emitted(self) -> int:
        """Total events emitted, including any that fell off the ring."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events that fell off the ring (overflow losses only).

        An explicit :meth:`clear` is a deliberate discard and counts
        under :attr:`cleared` instead — a nonzero ``dropped`` always
        means the trace is an incomplete record of the run.
        """
        return self._emitted - self.cleared - len(self.events)

    def stats(self) -> Dict[str, int]:
        """Bus bookkeeping: capacity/emitted/retained/dropped/cleared."""
        return {
            "capacity": self.capacity,
            "emitted": self._emitted,
            "retained": len(self.events),
            "dropped": self.dropped,
            "cleared": self.cleared,
        }

    def counts(self) -> Dict[str, int]:
        """Event-name -> occurrences currently retained."""
        tally: Dict[str, int] = {}
        for _t, name, _fields in self.events:
            tally[name] = tally.get(name, 0) + 1
        return dict(sorted(tally.items()))

    def select(self, *names: str) -> List[TraceEvent]:
        """Retained events whose name is in ``names``, in time order."""
        wanted = frozenset(names)
        return [ev for ev in self.events if ev[1] in wanted]

    def clear(self) -> None:
        """Discard every retained event (counters keep running).

        Deliberate discards accrue to :attr:`cleared`, never to
        :attr:`dropped` — the latter is reserved for ring overflow.
        """
        self.cleared += len(self.events)
        self.events.clear()

    # -- JSONL export/import -------------------------------------------------

    def export_jsonl(self, target: Union[str, TextIO],
                     meta: bool = False) -> int:
        """Write retained events as JSON lines; returns lines written.

        Each line is ``{"t": ..., "event": ..., <fields>}`` with ``t``
        and ``event`` first and the remaining keys in sorted order, so
        identical runs export byte-identical traces.  ``meta=True``
        prepends one :data:`TRACE_META` record carrying :meth:`stats`,
        so downstream tools can tell a complete trace from a truncated
        one (``repro-obs summarize`` reports it).
        """
        own = isinstance(target, str)
        stream: TextIO = open(target, "w") if own else target  # type: ignore[arg-type]
        try:
            written = 0
            records: List[TraceEvent] = list(self.events)
            if meta:
                records.insert(0, (0.0, TRACE_META,
                                   dict(self.stats())))
            for t, name, fields in records:
                record = {"t": t, "event": name}
                for key in sorted(fields):
                    record[key] = fields[key]
                stream.write(json.dumps(record, separators=(",", ":"))
                             + "\n")
                written += 1
            return written
        finally:
            if own:
                stream.close()


def load_trace_events(source: Union[str, TextIO],
                      strict: bool = False) -> List[TraceEvent]:
    """Read a JSONL trace back into :data:`TraceEvent` tuples.

    ``strict=True`` validates every event name against the
    :data:`EVENT_NAMES` contract (plus :data:`TRACE_META`) and raises
    :class:`ValueError` on the first unknown name — the mode for
    rejecting hand-edited or version-skewed traces.  The default mode
    loads anything well-formed; callers can diff names against
    :data:`EVENT_NAMES` themselves to warn instead (``repro-obs`` does).
    """
    own = isinstance(source, str)
    stream: TextIO = open(source) if own else source  # type: ignore[arg-type]
    try:
        events: List[TraceEvent] = []
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                t = float(record.pop("t"))
                name = str(record.pop("event"))
            except KeyError as exc:
                raise ValueError(
                    f"trace line {lineno}: missing {exc}") from None
            if strict and name not in EVENT_NAMES and name != TRACE_META:
                raise ValueError(
                    f"trace line {lineno}: unknown event name {name!r}")
            events.append((t, name, record))
        return events
    finally:
        if own:
            stream.close()


def merge_traces(*traces: Iterable[TraceEvent]) -> List[TraceEvent]:
    """Merge several event streams into one, sorted by timestamp."""
    merged: List[TraceEvent] = []
    for trace in traces:
        merged.extend(trace)
    merged.sort(key=lambda ev: ev[0])
    return merged
