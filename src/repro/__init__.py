"""DNScup: Strong Cache Consistency Protocol for DNS — reproduction.

A full Python implementation of the system described in Chen, Wang, Ren
& Zhang, *DNScup: Strong Cache Consistency Protocol for DNS* (ICDCS
2006), including the DNS substrate it runs on (wire format, zones,
dynamic update, authoritative/recursive nameservers over a simulated
network), the DNScup middleware itself (dynamic leases, CACHE-UPDATE
push, track file), the paper's measurement study of DNS dynamics, and
the trace-driven evaluation.

Subpackages, bottom-up:

* :mod:`repro.dnslib` — names, records, messages, wire format (with the
  CACHE-UPDATE opcode and RRC/LLT fields);
* :mod:`repro.zone` — zone store, master files, RFC 2136 update,
  NOTIFY/AXFR/IXFR replication, delegation checking;
* :mod:`repro.net` — deterministic discrete-event simulator and UDP
  with latency/loss models;
* :mod:`repro.server` — authoritative server, recursive resolver (the
  "DNS cache"), stub resolver, TTL cache;
* :mod:`repro.core` — DNScup itself: leases, policies, optimizers, the
  detection/listening/notification modules, middleware assembly;
* :mod:`repro.traces` — synthetic domain populations, change processes
  and query workloads standing in for the paper's live traces;
* :mod:`repro.measurement` — the §3 DNS-dynamics measurement study;
* :mod:`repro.sim` — trace-driven lease simulation (§5.1) and the
  prototype testbed (§5.2).
"""

from . import core, dnslib, measurement, net, server, sim, traces, zone

__version__ = "1.0.0"

__all__ = ["core", "dnslib", "measurement", "net", "server", "sim",
           "traces", "zone", "__version__"]
