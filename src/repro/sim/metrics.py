"""Evaluation metrics.

The two relative metrics of §5.1.2 plus the consistency metrics the
full-protocol experiments add:

* **storage percentage** — leases granted / maximum grantable, as a
  time average over the run;
* **query rate percentage** — upstream queries actually sent / queries
  a pure polling (no-lease) scheme would send;
* **staleness** — for a physical change, how long caches kept serving
  the dead address (the service-availability loss DNScup eliminates);
* **stale answers** — client lookups answered with an address that was
  no longer the authoritative mapping at answer time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple


@dataclasses.dataclass
class LeaseSimResult:
    """Outcome of one trace-driven lease simulation run."""

    scheme: str
    parameter: float               # lease length (fixed) or threshold (dynamic)
    total_queries: int
    upstream_messages: int
    grants: int
    #: Integral over time of (valid leases held), in lease-seconds.
    lease_seconds: float
    pair_count: int
    duration: float

    @property
    def query_rate_percentage(self) -> float:
        """Upstream messages / pure-polling messages, percent."""
        if self.total_queries == 0:
            return 0.0
        return 100.0 * self.upstream_messages / self.total_queries

    @property
    def storage_percentage(self) -> float:
        """Leases held / maximum grantable, percent."""
        ceiling = self.pair_count * self.duration
        if ceiling <= 0:
            return 0.0
        return 100.0 * self.lease_seconds / ceiling

    def as_point(self) -> Tuple[float, float]:
        """(storage %, query rate %) for curve plotting."""
        return (self.storage_percentage, self.query_rate_percentage)


@dataclasses.dataclass
class StalenessSample:
    """One physical change observed end to end."""

    name: str
    changed_at: float
    #: When each cache stopped serving the stale mapping; None = never
    #: observed to recover within the run.
    recovered_at: Dict[str, Optional[float]]

    def windows(self) -> List[float]:
        """Observed staleness windows, seconds, for recovered caches."""
        return [t - self.changed_at for t in self.recovered_at.values()
                if t is not None]


@dataclasses.dataclass
class ConsistencyReport:
    """Aggregated staleness over a full-protocol run."""

    samples: List[StalenessSample] = dataclasses.field(default_factory=list)
    stale_answers: int = 0
    fresh_answers: int = 0

    def add(self, sample: StalenessSample) -> None:
        """Add one item."""
        self.samples.append(sample)

    @property
    def answers(self) -> int:
        """Total graded client answers."""
        return self.stale_answers + self.fresh_answers

    @property
    def stale_answer_ratio(self) -> float:
        """Fraction of client answers that were stale."""
        return self.stale_answers / self.answers if self.answers else 0.0

    def mean_staleness(self) -> Optional[float]:
        """Mean staleness window over all samples, or None."""
        windows = [w for sample in self.samples for w in sample.windows()]
        return sum(windows) / len(windows) if windows else None

    def max_staleness(self) -> Optional[float]:
        """Worst staleness window observed, or None."""
        windows = [w for sample in self.samples for w in sample.windows()]
        return max(windows) if windows else None


def interpolate_at_storage(points: Sequence[Tuple[float, float]],
                           storage_pct: float) -> Optional[float]:
    """Query-rate % at a given storage % by linear interpolation.

    Points are (storage %, query-rate %) in any order; used to read
    Figure 5 values like "at storage 1 %, dynamic = 56 %".
    """
    ordered = sorted(points)
    if not ordered:
        return None
    if storage_pct <= ordered[0][0]:
        return ordered[0][1]
    if storage_pct >= ordered[-1][0]:
        return ordered[-1][1]
    for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
        if x0 <= storage_pct <= x1:
            if x1 == x0:
                return (y0 + y1) / 2.0
            fraction = (storage_pct - x0) / (x1 - x0)
            return y0 + fraction * (y1 - y0)
    return None


def interpolate_at_query_rate(points: Sequence[Tuple[float, float]],
                              query_rate_pct: float) -> Optional[float]:
    """Storage % at a given query-rate % (the Figure 5a reading)."""
    flipped = [(qr, st) for st, qr in points]
    return interpolate_at_storage(flipped, query_rate_pct)
