"""Columnar lease-replay core: the million-cache engine.

:mod:`repro.sim.fastreplay` (PR 1) made the Figure 5 sweep cheap by
grouping the trace into per-pair timestamp *lists* and scanning each
pair with ``bisect`` jumps.  That still spends one Python loop
iteration per pair per sweep point — fine at 10^3 pairs, prohibitive at
the ROADMAP's million-cache scale.  This module takes the same
per-pair-independence insight all the way to **columns**:

* :class:`ColumnarTrace` stores the whole trace as one CSR block — a
  single ``float64`` timestamp array holding every pair's segment
  back-to-back, plus an ``int64`` offset array — built either from
  :class:`~repro.traces.workload.QueryEvent` objects or straight from
  arrays (the scalable path: no event objects ever exist);
* :func:`columnar_scan` applies a whole sweep point as **vectorized
  column sweeps**: all pairs advance their absorb/forward frontier in
  lockstep, each round resolving one upstream query per still-active
  pair with a vectorized binary search, so the homogeneous runs of
  grants the oracle dispatches one by one become a handful of NumPy
  operations (the few pairs left once the batch thins out finish on
  the scalar bisect path);
* :func:`columnar_dynamic_sweep` reuses one max-lease column scan for
  the entire dynamic-threshold curve, exactly like
  :func:`~repro.sim.fastreplay.fast_dynamic_sweep`.

Bit-identity with :func:`~repro.sim.driver.simulate_lease_trace` is the
same contract PR 1 established, and it holds for the same reason: every
per-grant term is computed with the oracle's own float arithmetic
(vectorized ``float64`` ops are IEEE-754, identical to Python's scalar
floats), and ``lease_seconds`` is the *exactly rounded* sum of those
terms — order independent — so grouping by pair instead of by event
time cannot change the result.  ``tests/test_sim_columnar.py`` enforces
it on randomized traces, and :func:`scan_partials` exposes the scan as
Shewchuk partials so sharded runs (:mod:`repro.sim.shard`) can merge
*exactly* and stay byte-identical at any shard count.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dnslib import Name
from ..obs.metrics import LEASE_BUCKETS
from ..traces.workload import QueryEvent
from .fastreplay import ExactSum
from .metrics import LeaseSimResult

#: A pair is (domain name, nameserver index) — record × cache.
Pair = Tuple[Name, int]

#: Scheme hook: (pair, trained rate, max lease) -> lease length (0 = none).
LeaseFn = Callable[[Pair, float, float], float]

#: Below this many still-active segments the vectorized rounds stop
#: paying for themselves; the scalar bisect scan finishes the tail.
_SCALAR_CUTOFF = 48


class ColumnarTrace:
    """A query trace as CSR columns: one timestamp block, pair offsets.

    ``times[starts[p]:starts[p + 1]]`` is pair ``p``'s query times in
    input order; ``names[p]`` / ``nameservers[p]`` identify the pair.
    ``sorted_mask[p]`` records whether the segment is time-sorted —
    the vectorized scanner requires sorted segments and falls back to
    the oracle-order scalar scan for the (rare) unsorted ones.
    """

    __slots__ = ("times", "starts", "names", "nameservers", "sorted_mask",
                 "total")

    def __init__(self, times: np.ndarray, starts: np.ndarray,
                 names: Sequence[Name], nameservers: np.ndarray,
                 sorted_mask: Optional[np.ndarray] = None):
        self.times = np.ascontiguousarray(times, dtype=np.float64)
        self.starts = np.ascontiguousarray(starts, dtype=np.int64)
        self.names: List[Name] = list(names)
        self.nameservers = np.ascontiguousarray(nameservers, dtype=np.int64)
        if len(self.starts) != len(self.names) + 1:
            raise ValueError("starts must have one entry per pair plus one")
        if len(self.nameservers) != len(self.names):
            raise ValueError("one nameserver index per pair required")
        if self.starts[0] != 0 or self.starts[-1] != len(self.times):
            raise ValueError("starts must span the timestamp block")
        if sorted_mask is None:
            sorted_mask = self._detect_sorted()
        self.sorted_mask = np.ascontiguousarray(sorted_mask, dtype=bool)
        self.total = int(len(self.times))

    def _detect_sorted(self) -> np.ndarray:
        """Which segments are internally non-decreasing in time."""
        seg_sorted = np.ones(self.pair_count, dtype=bool)
        if len(self.times) > 1:
            # Positions where time decreases relative to the previous
            # slot; only decreases *inside* a segment (not across a
            # segment boundary) make that segment unsorted.
            breaks = np.flatnonzero(self.times[1:] < self.times[:-1]) + 1
            if len(breaks):
                owners = np.searchsorted(self.starts, breaks,
                                         side="right") - 1
                inside = self.starts[owners] != breaks
                seg_sorted[np.unique(owners[inside])] = False
        return seg_sorted

    # -- construction --------------------------------------------------------

    @classmethod
    def from_events(cls, events: Sequence[QueryEvent]) -> "ColumnarTrace":
        """Group an event sequence into columns (one pass, order kept)."""
        grouped: Dict[Pair, List[float]] = {}
        for event in events:
            pair = (event.name, event.nameserver)
            bucket = grouped.get(pair)
            if bucket is None:
                grouped[pair] = [event.time]
            else:
                bucket.append(event.time)
        names: List[Name] = []
        nameservers = np.empty(len(grouped), dtype=np.int64)
        starts = np.zeros(len(grouped) + 1, dtype=np.int64)
        chunks: List[List[float]] = []
        for index, (pair, bucket) in enumerate(grouped.items()):
            names.append(pair[0])
            nameservers[index] = pair[1]
            starts[index + 1] = starts[index] + len(bucket)
            chunks.append(bucket)
        times = (np.concatenate([np.asarray(chunk, dtype=np.float64)
                                 for chunk in chunks])
                 if chunks else np.empty(0, dtype=np.float64))
        return cls(times, starts, names, nameservers)

    # -- derived columns -----------------------------------------------------

    @property
    def pair_count(self) -> int:
        """Distinct (domain, nameserver) pairs in the trace."""
        return len(self.names)

    def segment_lengths(self) -> np.ndarray:
        """Queries per pair, as a column."""
        return self.starts[1:] - self.starts[:-1]

    def cache_count(self) -> int:
        """Distinct nameserver (cache) indices in the trace."""
        return int(len(np.unique(self.nameservers)))

    def to_events(self) -> List[QueryEvent]:
        """The trace re-materialized as event objects, pair-grouped.

        For cross-checks against the reference oracle only — at real
        scale the whole point is that these objects never exist.  The
        oracle's results are order-insensitive across pairs (lease state
        is per-pair, ``lease_seconds`` exactly rounded), so pair-grouped
        order reproduces its output bit for bit.
        """
        return [QueryEvent(float(self.times[slot]), 0, self.names[pair],
                           int(self.nameservers[pair]))
                for pair in range(self.pair_count)
                for slot in range(int(self.starts[pair]),
                                  int(self.starts[pair + 1]))]

    def trained_rates(self, training_window: float) -> np.ndarray:
        """Per-pair λ_ij from the training prefix, as a column.

        Matches :func:`~repro.sim.driver.train_pair_rates` bit for bit:
        each pair's rate is ``count(time < window) / window`` in
        ``float64``, pairs absent from the window getting 0.0 (the
        oracle's ``dict.get`` default).
        """
        if training_window <= 0:
            raise ValueError("training window must be positive")
        cumulative = np.zeros(len(self.times) + 1, dtype=np.int64)
        np.cumsum(self.times < training_window, out=cumulative[1:])
        counts = cumulative[self.starts[1:]] - cumulative[self.starts[:-1]]
        return counts / training_window

    def rate_column(self, pair_rates: Dict[Pair, float]) -> np.ndarray:
        """An oracle-style pair-rate dict flattened onto this trace's
        pair order (missing pairs get the oracle's 0.0 default)."""
        return np.fromiter(
            (pair_rates.get((self.names[p], int(self.nameservers[p])), 0.0)
             for p in range(self.pair_count)),
            dtype=np.float64, count=self.pair_count)

    def max_lease_column(self,
                         max_lease_of: Callable[[Name], float]) -> np.ndarray:
        """Per-pair lease ceilings from a per-name policy function."""
        return np.fromiter((max_lease_of(name) for name in self.names),
                           dtype=np.float64, count=self.pair_count)


# -- the vectorized column sweep -----------------------------------------------


def _scan_columns(times: np.ndarray, seg_start: np.ndarray,
                  seg_end: np.ndarray, pair_ids: np.ndarray,
                  lengths: np.ndarray, duration: float,
                  term_chunks: List[np.ndarray],
                  term_pair_chunks: List[np.ndarray]) -> np.ndarray:
    """Advance every segment's absorb/forward frontier in lockstep.

    ``times[seg_start[i]:seg_end[i]]`` is the (sorted) segment of pair
    ``pair_ids[i]``, replayed under constant lease ``lengths[i]``.
    Each round forwards one upstream query per still-active segment and
    jumps its frontier past the lease window with a vectorized binary
    search — the batched form of
    :func:`repro.sim.fastreplay._scan_pair_sorted`, term for term.
    Appends each round's grant terms (and their pair ids) to the chunk
    lists; returns the upstream count per input segment.
    """
    upstream = np.zeros(len(pair_ids), dtype=np.int64)
    rows = np.flatnonzero(seg_start < seg_end)
    frontier = seg_start[rows]
    while len(rows) >= _SCALAR_CUTOFF:
        t = times[frontier]
        expiry = t + lengths[rows]
        cover = np.minimum(expiry, duration) - t
        term_chunks.append(np.maximum(cover, 0.0))
        term_pair_chunks.append(pair_ids[rows])
        upstream[rows] += 1
        nxt = frontier + 1
        end = seg_end[rows]
        open_ = nxt < end
        # Fast path 1: the very next query already escapes the window —
        # the frontier advances by one, no search needed.
        absorb = open_ & (times[np.where(open_, nxt, 0)] < expiry)
        # Fast path 2: the segment's last query is still inside the
        # window, so the whole tail is absorbed and the segment is done.
        done = absorb & (times[np.where(open_, end - 1, 0)] < expiry)
        search = absorb & ~done
        if search.any():
            # bisect_left over [nxt + 1, end): first index with
            # times[j] >= expiry, in lockstep across segments.
            lo = nxt[search] + 1
            hi = end[search]
            want = expiry[search]
            while True:
                active = lo < hi
                if not active.any():
                    break
                mid = (lo + hi) >> 1
                below = active & (times[np.where(active, mid, 0)] < want)
                lo = np.where(below, mid + 1, lo)
                hi = np.where(active & ~below, mid, hi)
            nxt[search] = lo
        keep = open_ & ~done
        rows = rows[keep]
        frontier = nxt[keep]
    # The stragglers: scalar bisect scan per remaining segment.
    for offset in range(len(rows)):
        row = int(rows[offset])
        upstream[row] += _scan_segment_sorted(
            times, int(frontier[offset]), int(seg_end[row]),
            float(lengths[row]), duration, int(pair_ids[row]),
            term_chunks, term_pair_chunks)
    return upstream


def _scan_segment_sorted(times: np.ndarray, frontier: int, end: int,
                         length: float, duration: float, pair_id: int,
                         term_chunks: List[np.ndarray],
                         term_pair_chunks: List[np.ndarray]) -> int:
    """One sorted segment's remaining scan, with searchsorted jumps."""
    upstream = 0
    terms: List[float] = []
    last = float(times[end - 1])
    i = frontier
    while i < end:
        t = float(times[i])
        upstream += 1
        lease_end = t + length
        if lease_end > duration:
            lease_end = duration
        cover = lease_end - t
        terms.append(cover if cover > 0.0 else 0.0)
        expiry = t + length
        i += 1
        if i < end and times[i] < expiry:
            if last < expiry:
                break  # the rest of the segment is absorbed
            i = int(np.searchsorted(times[i + 1:end], expiry,
                                    side="left")) + i + 1
    if terms:
        term_chunks.append(np.asarray(terms, dtype=np.float64))
        term_pair_chunks.append(np.full(len(terms), pair_id, dtype=np.int64))
    return upstream


def _scan_segment_unsorted(times: np.ndarray, start: int, end: int,
                           length: float, duration: float, pair_id: int,
                           term_chunks: List[np.ndarray],
                           term_pair_chunks: List[np.ndarray]) -> int:
    """Oracle-order scan for segments whose events arrived out of order."""
    upstream = 0
    terms: List[float] = []
    expiry = -math.inf
    for i in range(start, end):
        t = float(times[i])
        if t < expiry:
            continue
        upstream += 1
        lease_end = min(t + length, duration)
        terms.append(max(0.0, lease_end - t))
        expiry = t + length
    if terms:
        term_chunks.append(np.asarray(terms, dtype=np.float64))
        term_pair_chunks.append(np.full(len(terms), pair_id, dtype=np.int64))
    return upstream


def scan_arrays(times: np.ndarray, starts: np.ndarray,
                sorted_mask: np.ndarray, lengths: np.ndarray,
                duration: float
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`columnar_scan` on raw CSR arrays.

    The shard workers (:mod:`repro.sim.shard`) replay sub-traces in
    other processes; shipping bare arrays keeps :class:`~repro.dnslib.
    Name` objects — which the scan never reads — out of the pickled
    payload entirely.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    if len(lengths) != len(starts) - 1:
        raise ValueError("one lease length per pair required")
    seg_len = starts[1:] - starts[:-1]
    upstream = np.where(lengths > 0.0, 0, seg_len).astype(np.int64)
    granted = np.flatnonzero((lengths > 0.0) & (seg_len > 0))
    term_chunks: List[np.ndarray] = []
    term_pair_chunks: List[np.ndarray] = []
    if len(granted):
        sorted_rows = granted[sorted_mask[granted]]
        if len(sorted_rows):
            upstream[sorted_rows] += _scan_columns(
                times, starts[sorted_rows], starts[sorted_rows + 1],
                sorted_rows, lengths[sorted_rows], duration,
                term_chunks, term_pair_chunks)
        for row in granted[~sorted_mask[granted]]:
            upstream[row] += _scan_segment_unsorted(
                times, int(starts[row]), int(starts[row + 1]),
                float(lengths[row]), duration, int(row),
                term_chunks, term_pair_chunks)
    if term_chunks:
        terms = np.concatenate(term_chunks)
        term_pairs = np.concatenate(term_pair_chunks)
    else:
        terms = np.empty(0, dtype=np.float64)
        term_pairs = np.empty(0, dtype=np.int64)
    return upstream, terms, term_pairs


def columnar_scan(trace: ColumnarTrace, lengths: np.ndarray,
                  duration: float
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Replay every pair under its per-pair lease ``lengths`` column.

    ``lengths[p] <= 0`` means pure polling for pair ``p`` (upstream =
    its query count, no terms).  Returns ``(upstream per pair, grant
    terms, term pair ids)``; the terms are the oracle's exact per-grant
    floats, in engine order — reduce them with ``math.fsum`` or
    :class:`~repro.sim.fastreplay.ExactSum`, never bare accumulation.
    """
    return scan_arrays(trace.times, trace.starts, trace.sorted_mask,
                       lengths, duration)


def scan_partials(terms: np.ndarray) -> List[float]:
    """A term multiset reduced to Shewchuk partials.

    The partials are an *exact* representation of the sum: folding
    several shards' partials into one :class:`ExactSum` and rounding
    once yields the bit-identical float one ``math.fsum`` over all the
    terms would — the merge contract :mod:`repro.sim.shard` relies on.
    """
    acc = ExactSum()
    acc.add_all(terms.tolist())
    return acc.partials()


# -- sweep-point entry points --------------------------------------------------


def columnar_lease_replay(trace: ColumnarTrace,
                          pair_rates: Optional[np.ndarray],
                          max_lease: np.ndarray,
                          lease_fn: Optional[LeaseFn],
                          duration: float,
                          scheme: str = "custom",
                          parameter: float = 0.0,
                          lengths: Optional[np.ndarray] = None
                          ) -> LeaseSimResult:
    """Columnar equivalent of the oracle's one-scheme replay.

    Either pass ``lengths`` (a precomputed per-pair lease column — the
    fully vectorized path) or a *pure* ``lease_fn`` evaluated once per
    pair against its trained rate and per-pair ceiling.  Returns a
    result bit-identical to
    :func:`~repro.sim.driver.simulate_lease_trace` on the same inputs.
    """
    if lengths is None:
        if lease_fn is None or pair_rates is None:
            raise ValueError("need either lengths or (lease_fn, pair_rates)")
        lengths = np.fromiter(
            (lease_fn((trace.names[p], int(trace.nameservers[p])),
                      float(pair_rates[p]), float(max_lease[p]))
             for p in range(trace.pair_count)),
            dtype=np.float64, count=trace.pair_count)
    else:
        lengths = np.asarray(lengths, dtype=np.float64)
    upstream, terms, _term_pairs = columnar_scan(trace, lengths, duration)
    return LeaseSimResult(
        scheme=scheme, parameter=parameter, total_queries=trace.total,
        upstream_messages=int(np.sum(upstream)),
        grants=int(np.sum(upstream[lengths > 0.0])),
        lease_seconds=math.fsum(terms.tolist()),
        pair_count=trace.pair_count, duration=duration)


def columnar_polling(trace: ColumnarTrace, duration: float) -> LeaseSimResult:
    """The no-lease baseline, which needs no replay at all."""
    return LeaseSimResult(
        scheme="none", parameter=0.0, total_queries=trace.total,
        upstream_messages=trace.total, grants=0, lease_seconds=0.0,
        pair_count=trace.pair_count, duration=duration)


def replay_table(times: np.ndarray, starts: np.ndarray,
                 sorted_mask: np.ndarray, lengths: np.ndarray,
                 duration: float) -> Tuple[int, int, List[float]]:
    """One scheme's replay reduced to its exact, merge-ready numbers.

    Returns ``(upstream messages, grants, lease partials)``.  The
    partials represent ``lease_seconds`` exactly, so per-shard tables
    merge by integer addition plus partial folding — bit-identical to
    replaying the shards' union in one piece.
    """
    upstream, terms, _term_pairs = scan_arrays(times, starts, sorted_mask,
                                               lengths, duration)
    return (int(np.sum(upstream)), int(np.sum(upstream[lengths > 0.0])),
            scan_partials(terms))


#: Bucket bounds for the per-pair renewal-count histogram
#: (``scale.renewals_per_pair``): how many grants one (cache, domain)
#: pair consumed over the run.
RENEWAL_COUNT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                         200.0, 500.0, 1000.0)

#: A picklable bundle of per-shard metric rows: integer counters plus
#: histogram rows of ``(name, bounds, bucket counts, min, max, sum
#: partials)``.  :func:`repro.sim.shard.metric_table_registry` lifts a
#: table into a :class:`repro.obs.Registry`; merging shard registries
#: reproduces the unsharded registry byte for byte.
MetricTable = Dict[str, object]

#: (name, bounds, bucket counts incl. +inf overflow, min, max, partials)
MetricHistogramRow = Tuple[str, Tuple[float, ...], List[int],
                           Optional[float], Optional[float], List[float]]


def _metric_histogram_row(name: str, bounds: Sequence[float],
                          values: np.ndarray) -> MetricHistogramRow:
    """One histogram's merge-ready row from a value column.

    ``np.searchsorted(bounds, v, side="left")`` lands each value in
    the same inclusive-upper-bound bucket ``bisect.bisect_left`` picks
    in :meth:`repro.obs.Histogram.observe`, and the sum ships as
    Shewchuk partials, so shard-merged histograms carry the correctly
    rounded total no matter how the pairs were grouped.
    """
    bound_col = np.asarray(bounds, dtype=np.float64)
    counts = np.bincount(
        np.searchsorted(bound_col, values, side="left"),
        minlength=len(bound_col) + 1).tolist()
    if len(values):
        minimum: Optional[float] = float(values.min())
        maximum: Optional[float] = float(values.max())
    else:
        minimum = maximum = None
    return (name, tuple(float(b) for b in bound_col), counts,
            minimum, maximum, scan_partials(values))


def metric_table(upstream: np.ndarray, terms: np.ndarray,
                 term_pairs: np.ndarray, lengths: np.ndarray,
                 duration: float, total_queries: int) -> MetricTable:
    """Vectorized lease/renewal/staleness metrics from one scan.

    Pure post-processing of :func:`scan_arrays` output — the scan
    itself stays metric-free (zero cost when metrics are off).  Emits:

    * ``scale.lease_term`` — every grant's term length, seconds;
    * ``scale.renewals_per_pair`` — grants consumed per leased pair
      that was granted at least once;
    * ``scale.staleness_exposure`` — per granted pair, the seconds of
      the run *not* covered by one of its lease terms (while a lease
      runs the holder is strongly consistent; exposure is the
      complement DNScup trades against TTL polling);
    * counters for queries, upstream messages, grants, and pair
      populations.

    Per-pair float reductions happen in each pair's own term order
    (``np.bincount`` accumulates element-sequentially), which the
    shard gather preserves — so every row merges byte-identically at
    any shard count.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    pair_count = len(lengths)
    leased = lengths > 0.0
    grants_per_pair = np.asarray(upstream)[leased]
    granted = grants_per_pair[grants_per_pair > 0]
    coverage = np.bincount(term_pairs, weights=terms,
                           minlength=pair_count)
    covered_pairs = np.bincount(term_pairs, minlength=pair_count) > 0
    exposure = duration - coverage[covered_pairs]
    counters: List[Tuple[str, int]] = [
        ("scale.queries", int(total_queries)),
        ("scale.upstream_messages", int(np.sum(upstream))),
        ("scale.lease_grants", int(np.sum(grants_per_pair))),
        ("scale.pairs", int(pair_count)),
        ("scale.leased_pairs", int(np.count_nonzero(leased))),
        ("scale.granted_pairs", int(np.count_nonzero(covered_pairs))),
    ]
    histograms: List[MetricHistogramRow] = [
        _metric_histogram_row("scale.lease_term", LEASE_BUCKETS, terms),
        _metric_histogram_row("scale.renewals_per_pair",
                              RENEWAL_COUNT_BUCKETS,
                              granted.astype(np.float64)),
        _metric_histogram_row("scale.staleness_exposure",
                              LEASE_BUCKETS, exposure),
    ]
    return {"counters": counters, "histograms": histograms}


def scan_metric_table(times: np.ndarray, starts: np.ndarray,
                      sorted_mask: np.ndarray, lengths: np.ndarray,
                      duration: float) -> MetricTable:
    """Replay one lease column and reduce it to its metric table.

    The shard workers call this on their gathered sub-arrays; the rows
    come back picklable and merge exactly (see :func:`metric_table`).
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    upstream, terms, term_pairs = scan_arrays(times, starts, sorted_mask,
                                              lengths, duration)
    return metric_table(upstream, terms, term_pairs, lengths, duration,
                        int(len(times)))


#: Inter-arrival-gap buckets, seconds — log-spaced from sub-second
#: renewal bursts out to the one-day horizon of the scale scenarios.
GAP_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 300.0, 1800.0,
               3600.0, 21600.0, 86400.0)


def load_metric_table(times: np.ndarray, starts: np.ndarray,
                      sorted_mask: np.ndarray) -> MetricTable:
    """The load-attribution plane's reduction of one (sub)trace.

    The streaming :class:`repro.obs.load.LoadLedger` sees live runs;
    this is its columnar counterpart for replayed traces — pure
    post-processing of the CSR columns, merge-ready per shard:

    * ``load.queries`` / ``load.pairs`` / ``load.active_pairs`` —
      arrival and population counters;
    * ``load.renewals`` — arrivals beyond each active pair's first
      (the lease-conversation view: first contact is query-class,
      the rest renew it);
    * ``load.interarrival_gap`` — within-pair gaps between successive
      arrivals (time-sorted segments only; the rare unsorted segments
      are tallied in ``load.unsorted_pairs`` rather than silently
      skewing the sketch with negative gaps);
    * ``load.arrivals_per_pair`` — the burst-fanout histogram.

    Every row follows the exact-merge discipline of
    :func:`metric_table`: integer bucket adds plus Shewchuk sum
    partials, so shard-merged registries export byte-identically at
    any shard count (pairs never straddle shards).
    """
    times = np.asarray(times, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    seg_lengths = np.diff(starts)
    pair_count = len(seg_lengths)
    active = seg_lengths > 0
    arrivals = seg_lengths[active].astype(np.float64)
    if len(times) > 1:
        pair_of = np.repeat(np.arange(pair_count), seg_lengths)
        gaps = np.diff(times)
        within = np.ones(len(gaps), dtype=bool)
        boundaries = starts[1:-1]
        within[boundaries[(boundaries > 0)
                          & (boundaries < len(times))] - 1] = False
        within &= np.asarray(sorted_mask, dtype=bool)[pair_of[:-1]]
        gaps = gaps[within]
    else:
        gaps = np.empty(0, dtype=np.float64)
    counters: List[Tuple[str, int]] = [
        ("load.queries", int(len(times))),
        ("load.pairs", int(pair_count)),
        ("load.active_pairs", int(np.count_nonzero(active))),
        ("load.renewals", int(len(times)) - int(np.count_nonzero(active))),
        ("load.unsorted_pairs",
         int(np.count_nonzero(~np.asarray(sorted_mask, dtype=bool)
                              & active))),
    ]
    histograms: List[MetricHistogramRow] = [
        _metric_histogram_row("load.interarrival_gap", GAP_BUCKETS, gaps),
        _metric_histogram_row("load.arrivals_per_pair",
                              RENEWAL_COUNT_BUCKETS, arrivals),
    ]
    return {"counters": counters, "histograms": histograms}


def dynamic_sweep_table(times: np.ndarray, starts: np.ndarray,
                        sorted_mask: np.ndarray,
                        pair_rates: np.ndarray, max_lease: np.ndarray,
                        rate_thresholds: Sequence[float],
                        duration: float) -> List[Tuple[int, int, List[float]]]:
    """The dynamic sweep as per-threshold merge-ready rows.

    One max-lease scan serves every threshold: pairs are admitted in
    descending-rate order as thresholds descend, and each threshold's
    row is ``(queries of admitted pairs, upstream of admitted pairs,
    lease partials)``, in the caller's threshold order.  Because a
    pair's admission depends only on its own rate, a shard's rows cover
    exactly its own pairs and rows merge across shards by integer
    addition plus partial folding.
    """
    pair_rates = np.asarray(pair_rates, dtype=np.float64)
    max_lease = np.asarray(max_lease, dtype=np.float64)
    seg_len = starts[1:] - starts[:-1]
    grantable = max_lease > 0.0
    upstream, terms, term_pairs = scan_arrays(
        times, starts, sorted_mask,
        np.where(grantable, max_lease, 0.0), duration)
    # Admission order: descending rate over grantable pairs; pairs that
    # can never hold a lease poll at every threshold.
    candidates = np.flatnonzero(grantable)
    order = candidates[np.argsort(-pair_rates[candidates], kind="stable")]
    rank = np.full(len(seg_len), len(order), dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    # Sorting the terms by their pair's admission rank makes every
    # threshold's term set a prefix of one ordering — the accumulator
    # then just advances through it as thresholds descend.
    term_order = np.argsort(rank[term_pairs], kind="stable")
    ordered_terms = terms[term_order]
    term_rank = rank[term_pairs][term_order]
    ordered_rates = pair_rates[order]

    positions = sorted(range(len(rate_thresholds)),
                       key=lambda i: rate_thresholds[i], reverse=True)
    rows: List[Tuple[int, int, List[float]]] = \
        [(0, 0, [])] * len(rate_thresholds)
    acc = ExactSum()
    granted_total = 0      # queries belonging to admitted pairs
    granted_upstream = 0   # of those, the ones a max lease still forwards
    cursor = 0
    term_cursor = 0
    for position in positions:
        threshold = rate_thresholds[position]
        while cursor < len(order) and ordered_rates[cursor] >= threshold:
            pair = order[cursor]
            granted_total += int(seg_len[pair])
            granted_upstream += int(upstream[pair])
            cursor += 1
        while (term_cursor < len(ordered_terms)
               and term_rank[term_cursor] < cursor):
            acc.add(float(ordered_terms[term_cursor]))
            term_cursor += 1
        rows[position] = (granted_total, granted_upstream, acc.partials())
    return rows


def columnar_dynamic_sweep(trace: ColumnarTrace,
                           pair_rates: np.ndarray,
                           max_lease: np.ndarray,
                           rate_thresholds: Sequence[float],
                           duration: float) -> List[LeaseSimResult]:
    """The whole dynamic-threshold sweep from one max-lease column scan.

    Mirrors :func:`~repro.sim.fastreplay.fast_dynamic_sweep`: each
    grantable pair's contribution under its maximal lease is computed
    once (vectorized), thresholds are then walked in descending order
    while pairs are admitted in descending-rate order, and every
    threshold's ``lease_seconds`` closes over the admitted pairs' terms
    through an exactly-rounded accumulator.
    """
    rows = dynamic_sweep_table(trace.times, trace.starts, trace.sorted_mask,
                               pair_rates, max_lease, rate_thresholds,
                               duration)
    return [
        LeaseSimResult(
            scheme="dynamic", parameter=threshold,
            total_queries=trace.total,
            upstream_messages=(trace.total - granted_total)
            + granted_upstream,
            grants=granted_upstream,
            lease_seconds=math.fsum(partials),
            pair_count=trace.pair_count, duration=duration)
        for threshold, (granted_total, granted_upstream, partials)
        in zip(rate_thresholds, rows)]


# -- scalable synthetic generation ---------------------------------------------


def flash_crowd_columnar(caches: int,
                         regular_domains: int,
                         duration: float,
                         hot_domains: int = 1,
                         base_rate: float = 1.0 / 3600.0,
                         flash_start: float = 0.25,
                         flash_length: float = 0.25,
                         flash_rate: float = 1.0 / 60.0,
                         cache_fanout: int = 50,
                         seed: int = 0) -> Tuple[ColumnarTrace, np.ndarray]:
    """A Figure 5-class flash-crowd trace, generated straight to columns.

    The ``hot_domains`` CDN-class records are hit by every cache: a
    Poisson baseline at ``base_rate`` plus a flash crowd at
    ``flash_rate`` inside the ``[flash_start, flash_start +
    flash_length]`` window (fractions of ``duration``).  Each *regular*
    domain is polled at ``base_rate`` by a deterministic contiguous
    window of caches sized so the average cache touches
    ``cache_fanout`` of them.  No event objects are ever materialized:
    per-pair Poisson counts are drawn vectorized, timestamps are
    uniform draws sorted within each pair, and the result lands
    directly in CSR columns.  Returns ``(trace, max-lease column)``
    with the paper's §5.1 ceilings (CDN for hot, regular otherwise).

    Deterministic for a given ``seed`` — the bench and the CI smoke
    rely on that for reproducible floors.
    """
    from ..core.policy import MAX_LEASE_CDN, MAX_LEASE_REGULAR
    if caches < 1 or duration <= 0:
        raise ValueError("need at least one cache and a positive duration")
    rng = np.random.default_rng(seed)
    window_start = flash_start * duration
    window_len = flash_length * duration

    names: List[Name] = []
    ns_chunks: List[np.ndarray] = []
    times_chunks: List[np.ndarray] = []
    starts_chunks: List[np.ndarray] = []
    lease_chunks: List[np.ndarray] = []
    running = 0

    def emit_domain(name: Name, cache_ids: np.ndarray, base_n: np.ndarray,
                    burst_n: Optional[np.ndarray], ceiling: float) -> None:
        nonlocal running
        totals = base_n + burst_n if burst_n is not None else base_n
        keep = totals > 0
        cache_ids, base_n, totals = cache_ids[keep], base_n[keep], totals[keep]
        if burst_n is not None:
            burst_n = burst_n[keep]
        if not len(cache_ids):
            return
        pair_index = np.arange(len(cache_ids))
        times = rng.random(int(np.sum(base_n))) * duration
        owners = np.repeat(pair_index, base_n)
        if burst_n is not None and int(np.sum(burst_n)):
            burst_times = (window_start
                           + rng.random(int(np.sum(burst_n))) * window_len)
            owners = np.concatenate([owners, np.repeat(pair_index, burst_n)])
            times = np.concatenate([times, burst_times])
        order = np.lexsort((times, owners))
        times_chunks.append(times[order])
        offsets = np.zeros(len(cache_ids), dtype=np.int64)
        np.cumsum(totals[:-1], out=offsets[1:])
        starts_chunks.append(offsets + running)
        running += int(np.sum(totals))
        names.extend([name] * len(cache_ids))
        ns_chunks.append(cache_ids.astype(np.int64))
        lease_chunks.append(np.full(len(cache_ids), ceiling,
                                    dtype=np.float64))

    all_caches = np.arange(caches, dtype=np.int64)
    for index in range(hot_domains):
        emit_domain(Name.from_text(f"d{index}.flash.test"), all_caches,
                    rng.poisson(base_rate * duration, size=caches),
                    rng.poisson(flash_rate * window_len, size=caches),
                    float(MAX_LEASE_CDN))
    per_domain = min(caches, max(1, (caches * cache_fanout)
                                 // max(1, regular_domains)))
    for index in range(regular_domains):
        start = (index * per_domain) % max(1, caches - per_domain + 1)
        emit_domain(Name.from_text(f"d{index}.base.test"),
                    all_caches[start:start + per_domain],
                    rng.poisson(base_rate * duration, size=per_domain),
                    None, float(MAX_LEASE_REGULAR))

    if times_chunks:
        times = np.concatenate(times_chunks)
        starts = np.concatenate(
            starts_chunks + [np.asarray([running], dtype=np.int64)])
        nameservers = np.concatenate(ns_chunks)
        max_lease = np.concatenate(lease_chunks)
    else:
        times = np.empty(0, dtype=np.float64)
        starts = np.zeros(1, dtype=np.int64)
        nameservers = np.empty(0, dtype=np.int64)
        max_lease = np.empty(0, dtype=np.float64)
    trace = ColumnarTrace(times, starts, names, nameservers,
                          sorted_mask=np.ones(len(names), dtype=bool))
    return trace, max_lease
