"""Full wire-level protocol scenarios.

Where :mod:`repro.sim.driver` replays traces against lease *state*,
this module stands up the whole system — root nameserver, authoritative
servers with real zones, recursive resolvers, client stubs — on the
simulated network, schedules the domains' ground-truth change processes
as zone updates, and drives a query workload through it.  Every DNS
message actually crosses the (simulated) wire.

The headline measurement is consistency: with DNScup off, a physical
change strands caches on the dead address until TTL expiry (stale
answers); with DNScup on, CACHE-UPDATE push closes the window to one
network round trip.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import DNScup, DNScupConfig, DynamicLeasePolicy, LeasePolicy, attach_dnscup, category_max_lease
from ..dnslib import A, Name, NS, RRType, RRSet, SOA, as_name
from ..net import Host, LinkProfile, Network, Simulator
from ..server import AuthoritativeServer, RecursiveResolver, ResolverCache, StubResolver
from ..traces.domains import DomainSpec, category_map
from ..traces.workload import QueryEvent, WorkloadConfig, generate_requests
from ..zone import Zone
from .metrics import ConsistencyReport, StalenessSample

ROOT_ADDRESS = "198.41.0.4"


@dataclasses.dataclass
class ScenarioConfig:
    """Topology and protocol knobs."""

    auth_servers: int = 2
    resolvers: int = 3
    dnscup_enabled: bool = True
    policy_factory: Callable[[], LeasePolicy] = (
        lambda: DynamicLeasePolicy(rate_threshold=0.0))
    lease_capacity: Optional[int] = None
    network_seed: int = 42
    loss_rate: float = 0.0
    #: Cap on staleness-probe duration after each change, seconds.
    staleness_probe_limit: float = 7200.0
    staleness_probe_interval: float = 5.0


class ProtocolScenario:
    """An assembled system ready to run workloads."""

    def __init__(self, domains: Sequence[DomainSpec],
                 config: Optional[ScenarioConfig] = None):
        self.domains = list(domains)
        self.config = config or ScenarioConfig()
        self.simulator = Simulator()
        self.network = Network(
            self.simulator, seed=self.config.network_seed,
            default_profile=LinkProfile(loss_rate=self.config.loss_rate))
        self.report = ConsistencyReport()
        #: name -> current authoritative addresses (ground truth).
        self.truth: Dict[Name, Tuple[str, ...]] = {}
        self._build_topology()
        self._schedule_changes_done = False

    # -- topology ------------------------------------------------------------

    def _build_topology(self) -> None:
        config = self.config
        # Group domains into zones by registrable origin.
        zones_domains: Dict[Name, List[DomainSpec]] = {}
        for domain in self.domains:
            zones_domains.setdefault(domain.zone_origin, []).append(domain)
        self.zones: Dict[Name, Zone] = {}
        self.zone_server_of: Dict[Name, int] = {}
        # Authoritative servers.
        self.auth_hosts = [Host(self.network, f"10.1.0.{i + 1}")
                           for i in range(config.auth_servers)]
        self.auth_servers = [AuthoritativeServer(host)
                             for host in self.auth_hosts]
        categories = category_map(self.domains)
        for index, (origin, members) in enumerate(sorted(
                zones_domains.items(), key=lambda item: item[0])):
            server_index = index % config.auth_servers
            zone = self._build_zone(origin, members,
                                    self.auth_hosts[server_index].address)
            self.zones[origin] = zone
            self.zone_server_of[origin] = server_index
            self.auth_servers[server_index].add_zone(zone)
        # DNScup middleware per authoritative server.
        self.middlewares: List[Optional[DNScup]] = []
        for server in self.auth_servers:
            if config.dnscup_enabled:
                middleware = attach_dnscup(
                    server, policy=config.policy_factory(),
                    max_lease_fn=category_max_lease(categories),
                    config=DNScupConfig(lease_capacity=config.lease_capacity))
                self.middlewares.append(middleware)
            else:
                self.middlewares.append(None)
        # Root.
        self.root_host = Host(self.network, ROOT_ADDRESS)
        self.root_zone = self._build_root_zone()
        self.root_server = AuthoritativeServer(self.root_host, [self.root_zone])
        # Resolvers (the local nameservers / DNS caches).
        self.resolver_hosts = [Host(self.network, f"10.2.0.{i + 1}")
                               for i in range(config.resolvers)]
        self.resolvers = [
            RecursiveResolver(host, [(ROOT_ADDRESS, 53)],
                              cache=ResolverCache(),
                              dnscup_enabled=config.dnscup_enabled)
            for host in self.resolver_hosts]
        # One stub host per resolver; clients multiplex onto stubs.
        self.stub_hosts = [Host(self.network, f"10.3.0.{i + 1}")
                           for i in range(config.resolvers)]
        self.stubs: List[StubResolver] = []

    def _build_zone(self, origin: Name, members: Sequence[DomainSpec],
                    server_address: str) -> Zone:
        ns_name = origin.child("ns")
        soa = SOA(ns_name, origin.child("admin"), 1, 7200, 900, 604800, 300)
        zone = Zone(origin, soa)
        with zone.bulk_update():
            zone.put_rrset(RRSet(origin, RRType.NS, 86400, [NS(ns_name)]))
            zone.put_rrset(RRSet(ns_name, RRType.A, 86400, [A(server_address)]))
            for domain in members:
                addresses = domain.process.initial_addresses()
                self.truth[domain.name] = tuple(addresses)
                zone.put_rrset(RRSet(domain.name, RRType.A, int(domain.ttl),
                                     [A(addr) for addr in addresses]))
        return zone

    def _build_root_zone(self) -> Zone:
        root = Name.root()
        soa = SOA("a.root-servers.net.", "nstld.example.", 1,
                  7200, 900, 604800, 300)
        zone = Zone(root, soa)
        with zone.bulk_update():
            zone.put_rrset(RRSet(root, RRType.NS, 518400,
                                 [NS("a.root-servers.net.")]))
            zone.put_rrset(RRSet("a.root-servers.net.", RRType.A, 518400,
                                 [A(ROOT_ADDRESS)]))
            for origin, server_index in self.zone_server_of.items():
                ns_name = origin.child("ns")
                address = self.auth_hosts[server_index].address
                zone.put_rrset(RRSet(origin, RRType.NS, 172800, [NS(ns_name)]))
                zone.put_rrset(RRSet(ns_name, RRType.A, 172800, [A(address)]))
        return zone

    # -- change processes -> zone updates -----------------------------------------

    def schedule_changes(self, duration: float) -> int:
        """Schedule every domain's ground-truth changes as zone updates."""
        if self._schedule_changes_done:
            raise RuntimeError("changes already scheduled")
        self._schedule_changes_done = True
        scheduled = 0
        for domain in self.domains:
            zone = self.zones[domain.zone_origin]
            for event in domain.process.events_between(0.0, duration):
                self.simulator.schedule_at(
                    event.time,
                    lambda d=domain, e=event, z=zone: self._apply_change(z, d, e))
                scheduled += 1
        return scheduled

    def _apply_change(self, zone: Zone, domain: DomainSpec, event) -> None:
        self.truth[domain.name] = tuple(event.addresses)
        zone.replace_address(domain.name, list(event.addresses),
                             ttl=int(domain.ttl))
        if event.is_physical:
            self._watch_staleness(domain, event)

    def _watch_staleness(self, domain: DomainSpec, event) -> None:
        """Poll resolver caches until they stop serving the dead mapping."""
        sample = StalenessSample(
            name=domain.name.to_text(), changed_at=event.time,
            recovered_at={f"resolver-{i}": None
                          for i in range(len(self.resolvers))})
        self.report.add(sample)
        interval = self.config.staleness_probe_interval
        limit = event.time + min(self.config.staleness_probe_limit,
                                 domain.ttl * 3 + interval)

        def check() -> None:
            now = self.simulator.now
            done = True
            for index, resolver in enumerate(self.resolvers):
                key = f"resolver-{index}"
                if sample.recovered_at[key] is not None:
                    continue
                entry = resolver.cache.peek(domain.name, RRType.A)
                stale = False
                if entry is not None and not entry.negative \
                        and not entry.is_expired(now):
                    served = {r.address for r in entry.rrset.rdatas}
                    stale = not served & set(self.truth[domain.name])
                if not stale:
                    sample.recovered_at[key] = now
                else:
                    done = False
            if not done and now + interval <= limit:
                self.simulator.schedule(interval, check)

        self.simulator.schedule(0.0, check)

    # -- workload ---------------------------------------------------------------------

    def run_workload(self, workload: WorkloadConfig,
                     domains: Optional[Sequence[DomainSpec]] = None) -> int:
        """Schedule client lookups for a workload, then run to completion.

        Returns the number of lookups issued.  Ground-truth changes must
        be scheduled first so staleness is measured against them.
        """
        domains = list(domains if domains is not None else self.domains)
        if not self._schedule_changes_done:
            self.schedule_changes(workload.duration)
        # One stub per (client, resolver) would explode; share one stub
        # per resolver and let the stub cache model the *population*
        # cache, scaling cache effectiveness accordingly.
        if not self.stubs:
            self.stubs = [
                StubResolver(host, (self.resolver_hosts[i].address, 53),
                             cache_seconds=workload.client_cache_seconds)
                for i, host in enumerate(self.stub_hosts)]
        issued = 0
        workload = dataclasses.replace(workload,
                                       nameservers=len(self.resolvers))
        for event in generate_requests(domains, workload):
            stub = self.stubs[event.nameserver % len(self.stubs)]
            self.simulator.schedule_at(
                event.time,
                lambda e=event, s=stub: s.lookup(e.name,
                                                 self._grader(e.name)))
            issued += 1
        self.simulator.run()
        return issued

    def _grader(self, name: Name):
        def grade(addresses: List[str], rcode) -> None:
            current = set(self.truth.get(name, ()))
            if addresses and current and not (set(addresses) & current):
                self.report.stale_answers += 1
            else:
                self.report.fresh_answers += 1
        return grade

    # -- results -----------------------------------------------------------------------

    def dnscup_summary(self) -> Dict[str, float]:
        """Aggregated middleware counters across auth servers."""
        totals: Dict[str, float] = {}
        for middleware in self.middlewares:
            if middleware is None:
                continue
            for key, value in middleware.summary().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def total_upstream_queries(self) -> int:
        """Iterative queries sent by all resolvers."""
        return sum(r.stats.upstream_queries for r in self.resolvers)
