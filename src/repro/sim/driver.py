"""The trace-driven lease simulation (paper §5.1).

Replays a query trace through per-(domain, nameserver) lease state and
counts what actually happens:

* a query arriving while the pair's lease is valid is absorbed locally
  (the authoritative server has promised notifications — no upstream
  message, no staleness risk);
* a query arriving with no valid lease goes upstream (one message) and
  the scheme decides whether to grant a fresh lease and how long.

The schemes compared are the paper's (§5.1.2):

* **fixed** — every upstream query gets the same lease length (capped
  by the record's category maximum);
* **dynamic** — the maximal lease, but only for pairs whose measured
  query rate clears a threshold; sweeping the threshold traces the
  whole storage/communication curve (it is the dual variable of the
  SLP storage budget);
* **none** — pure polling; the 100 %-query-rate baseline.

Lease selection is *offline*, "done off-line based on the trace
analyses" (§5.1.2): pair rates come from a training prefix of the trace
(the paper uses the first day of seven).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..dnslib import Name
from ..obs.trace import LEASE_EXPIRE, LEASE_GRANT, TraceBus
from ..traces.domains import DomainSpec
from ..traces.workload import QueryEvent, measured_rates
from .metrics import LeaseSimResult

#: A pair is (domain name, nameserver index) — record × cache.
Pair = Tuple[Name, int]

#: Scheme hook: (pair, trained rate, max lease) -> lease length (0 = none).
LeaseFn = Callable[[Pair, float, float], float]


@dataclasses.dataclass
class TraceSimConfig:
    """Configuration knobs with paper-faithful defaults."""
    duration: float
    #: Fraction of the trace (by time) used to train pair rates.
    training_fraction: float = 1.0 / 7.0


def fixed_lease_fn(lease_length: float) -> LeaseFn:
    """A scheme granting the same lease to every pair."""
    def decide(pair: Pair, rate: float, max_lease: float) -> float:
        return min(lease_length, max_lease)
    return decide


def dynamic_lease_fn(rate_threshold: float) -> LeaseFn:
    """A scheme granting maximal leases above a rate threshold."""
    def decide(pair: Pair, rate: float, max_lease: float) -> float:
        return max_lease if rate >= rate_threshold else 0.0
    return decide


def no_lease_fn() -> LeaseFn:
    """The pure-polling (no lease) scheme."""
    def decide(pair: Pair, rate: float, max_lease: float) -> float:
        return 0.0
    return decide


def train_pair_rates(events: Sequence[QueryEvent],
                     training_window: float) -> Dict[Pair, float]:
    """λ_ij from the training prefix (the paper's first-day analysis)."""
    training = [e for e in events if e.time < training_window]
    return measured_rates(training, training_window, by="name-nameserver")


def simulate_lease_trace(events: Sequence[QueryEvent],
                         pair_rates: Dict[Pair, float],
                         max_lease_of: Callable[[Name], float],
                         lease_fn: LeaseFn,
                         duration: float,
                         scheme: str = "custom",
                         parameter: float = 0.0,
                         trace: Optional[TraceBus] = None) -> LeaseSimResult:
    """Replay ``events`` under one lease scheme; see module docstring.

    This is the *reference oracle*: one full pass over the trace per
    call.  Sweeps should use :mod:`repro.sim.fastreplay` (the default
    engine of :func:`figure5_curves`), which is held bit-identical to
    this function by a property test.  ``lease_seconds`` is an exactly
    rounded sum (``math.fsum``) so that identity is independent of the
    order either engine visits the grants in.

    ``trace`` (optional) receives the lease lifecycle as ``lease.grant``
    / ``lease.expire`` events — the cache is ``ns<index>``, expiries are
    recorded lazily when a later query observes them (stamps can trail
    in time; trace order is the causal order, as with the live table's
    lazy sweep).  The default ``None`` keeps the hot loop
    allocation-free.
    """
    lease_expiry: Dict[Pair, float] = {}
    upstream = 0
    grants = 0
    lease_terms: List[float] = []
    total = 0
    pairs_seen = set()
    for event in events:
        pair = (event.name, event.nameserver)
        pairs_seen.add(pair)
        total += 1
        expiry = lease_expiry.get(pair)
        if expiry is not None and event.time < expiry:
            continue  # absorbed by a valid lease
        if trace is not None and expiry is not None:
            trace.emit(LEASE_EXPIRE, t=expiry,
                       cache=f"ns{event.nameserver}",
                       name=str(event.name), rrtype="A")
            # Dropping the stale entry is behaviour-neutral: a missing
            # entry and an expired one both send the query upstream.
            del lease_expiry[pair]
        upstream += 1
        rate = pair_rates.get(pair, 0.0)
        length = lease_fn(pair, rate, max_lease_of(event.name))
        if length > 0:
            grants += 1
            end = min(event.time + length, duration)
            lease_terms.append(max(0.0, end - event.time))
            lease_expiry[pair] = event.time + length
            if trace is not None:
                trace.emit(LEASE_GRANT, t=event.time,
                           cache=f"ns{event.nameserver}",
                           name=str(event.name), rrtype="A",
                           length=length)
    return LeaseSimResult(
        scheme=scheme, parameter=parameter, total_queries=total,
        upstream_messages=upstream, grants=grants,
        lease_seconds=math.fsum(lease_terms), pair_count=len(pairs_seen),
        duration=duration)


@dataclasses.dataclass
class Figure5Curves:
    """Both schemes' operating points, ready to print/plot."""

    fixed: List[LeaseSimResult]
    dynamic: List[LeaseSimResult]
    polling: LeaseSimResult

    def fixed_points(self) -> List[Tuple[float, float]]:
        """(storage %, query rate %) points of the fixed curve."""
        return [r.as_point() for r in self.fixed]

    def dynamic_points(self) -> List[Tuple[float, float]]:
        """(storage %, query rate %) points of the dynamic curve."""
        return [r.as_point() for r in self.dynamic]


def default_max_lease_of(domains: Sequence[DomainSpec]) -> Callable[[Name], float]:
    """Per-domain maxima per §5.1: regular 6 d, CDN 200 s, Dyn 6000 s."""
    from ..core.policy import MAX_LEASE_CDN, MAX_LEASE_DYN, MAX_LEASE_REGULAR
    limits = {"regular": float(MAX_LEASE_REGULAR), "cdn": float(MAX_LEASE_CDN),
              "dyn": float(MAX_LEASE_DYN)}
    table = {domain.name: limits[domain.category] for domain in domains}

    def max_lease_of(name: Name) -> float:
        return table.get(name, float(MAX_LEASE_REGULAR))

    return max_lease_of


def figure5_curves(events: Sequence[QueryEvent],
                   domains: Sequence[DomainSpec],
                   duration: float,
                   fixed_lengths: Sequence[float],
                   rate_thresholds: Sequence[float],
                   training_fraction: float = 1.0 / 7.0,
                   engine: str = "fast") -> Figure5Curves:
    """Run the full Figure 5 comparison on one trace.

    ``engine="fast"`` (the default) groups the trace once into the
    pair index and evaluates every sweep point from it —
    O(trace + sweep × pairs) instead of the reference engine's
    O(sweep × trace) — producing bit-identical results;
    ``engine="columnar"`` goes further and replays each sweep point as
    vectorized column sweeps over a CSR trace (the million-cache
    engine of :mod:`repro.sim.columnar`, same bit-identity contract);
    pass ``engine="reference"`` to run the per-point oracle instead.
    """
    events = sorted(events, key=lambda e: e.time)
    rates = train_pair_rates(events, duration * training_fraction)
    max_lease_of = default_max_lease_of(domains)
    if engine == "columnar":
        from .columnar import (
            ColumnarTrace, columnar_dynamic_sweep, columnar_lease_replay,
            columnar_polling)
        ctrace = ColumnarTrace.from_events(events)
        rate_column = ctrace.rate_column(rates)
        lease_column = ctrace.max_lease_column(max_lease_of)
        fixed = [
            columnar_lease_replay(ctrace, rate_column, lease_column,
                                  fixed_lease_fn(length), duration,
                                  scheme="fixed", parameter=length)
            for length in fixed_lengths]
        dynamic = columnar_dynamic_sweep(ctrace, rate_column, lease_column,
                                         rate_thresholds, duration)
        polling = columnar_polling(ctrace, duration)
    elif engine == "fast":
        from .fastreplay import (
            PairIndex, fast_dynamic_sweep, fast_lease_replay, fast_polling)
        index = PairIndex(events)
        fixed = [
            fast_lease_replay(index, rates, max_lease_of,
                              fixed_lease_fn(length), duration,
                              scheme="fixed", parameter=length)
            for length in fixed_lengths]
        dynamic = fast_dynamic_sweep(index, rates, max_lease_of,
                                     rate_thresholds, duration)
        polling = fast_polling(index, duration)
    elif engine == "reference":
        fixed = [
            simulate_lease_trace(events, rates, max_lease_of,
                                 fixed_lease_fn(length), duration,
                                 scheme="fixed", parameter=length)
            for length in fixed_lengths]
        dynamic = [
            simulate_lease_trace(events, rates, max_lease_of,
                                 dynamic_lease_fn(threshold), duration,
                                 scheme="dynamic", parameter=threshold)
            for threshold in rate_thresholds]
        polling = simulate_lease_trace(events, rates, max_lease_of,
                                       no_lease_fn(), duration, scheme="none")
    else:
        raise ValueError(f"unknown engine: {engine!r}")
    return Figure5Curves(fixed=fixed, dynamic=dynamic, polling=polling)


def logspace(low: float, high: float, count: int) -> List[float]:
    """Log-spaced sweep values (both figures use log-scale sweeps)."""
    if low <= 0 or high <= low or count < 2:
        raise ValueError("want 0 < low < high and count >= 2")
    step = (math.log(high) - math.log(low)) / (count - 1)
    return [math.exp(math.log(low) + i * step) for i in range(count)]
