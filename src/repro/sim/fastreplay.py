"""Pair-indexed fast replay engine for the trace-driven lease simulation.

:func:`~repro.sim.driver.simulate_lease_trace` is the *reference oracle*:
one pass over the whole trace per sweep point, exactly as §5.1 describes
the experiment.  A Figure 5 sweep (a dozen fixed lease lengths, a dozen
dynamic thresholds, plus the polling baseline) therefore costs
O(sweep × trace) — painful on the week-long traces the paper uses and
prohibitive on anything larger.

This module exploits the structure of the replay instead of brute force:

* **Lease state is per-pair independent.**  A (domain, nameserver) pair's
  absorb/forward decisions depend only on that pair's own query times and
  its (constant) lease length, so the trace can be grouped *once* into
  per-pair timestamp arrays (:class:`PairIndex`) and each sweep point
  evaluated pair by pair.  Within a pair the replay is a greedy scan —
  "forward one query, skip everything inside its lease window" — which
  :func:`_scan_pair_sorted` performs with :func:`bisect.bisect_left`
  jumps, so absorbed queries cost nothing at all.
* **The dynamic sweep collapses to O(pairs).**  Under the dynamic scheme
  a pair either gets the maximal lease (rate ≥ threshold) or none at
  all.  Its contribution at the max lease is computed *once*; sweeping
  the threshold then just moves pairs between the "granted" and
  "polling" buckets, which :func:`fast_dynamic_sweep` does with a single
  rate-ordered walk shared by every threshold.

Bit-identical results are part of the contract: both engines accumulate
``lease_seconds`` as the *exactly-rounded* float sum of per-grant terms
(Shewchuk-style, order independent), so the fast engine returns the very
same :class:`~repro.sim.metrics.LeaseSimResult` the oracle does —
``tests/test_fastreplay.py`` holds it to that on randomized traces.

The one assumption beyond the oracle's contract: the
:data:`~repro.sim.driver.LeaseFn` hook must be *pure* — within a replay
it is a function of ``(pair, rate, max_lease)`` only, so the engine may
evaluate it once per pair instead of once per upstream query.  Every
scheme in :mod:`repro.sim.driver` (fixed, dynamic, polling) satisfies
this.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Dict, List, Sequence, Tuple, Union

from ..dnslib import Name
from ..traces.workload import QueryEvent
from .metrics import LeaseSimResult

#: A pair is (domain name, nameserver index) — record × cache.
Pair = Tuple[Name, int]

#: Scheme hook: (pair, trained rate, max lease) -> lease length (0 = none).
LeaseFn = Callable[[Pair, float, float], float]


class ExactSum:
    """An order-independent exact float accumulator (Shewchuk partials).

    The running sum is kept as a list of non-overlapping partials whose
    mathematical sum is *exact*; :meth:`value` rounds it once, so two
    accumulators fed the same multiset of terms in different orders
    return bit-identical floats — the property that lets the pair-grouped
    engine match the event-ordered oracle's ``math.fsum`` exactly.
    """

    __slots__ = ("_partials",)

    def __init__(self) -> None:
        self._partials: List[float] = []

    def add(self, x: float) -> None:
        """Fold one finite term into the exact running sum."""
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def add_all(self, terms: Sequence[float]) -> None:
        """Fold a batch of terms."""
        for term in terms:
            self.add(term)

    def value(self) -> float:
        """The correctly-rounded float value of the exact sum."""
        return math.fsum(self._partials)

    def partials(self) -> List[float]:
        """A copy of the non-overlapping partials.

        Their mathematical sum *is* the accumulated sum, exactly —
        feeding them to another accumulator (:meth:`add_all`) merges
        two sums with no rounding at all, which is how the sharded
        engine (:mod:`repro.sim.shard`) combines per-shard
        ``lease_seconds`` bit-identically to a single-shard run.
        """
        return list(self._partials)


class PairIndex:
    """A query trace grouped once into per-(domain, nameserver) arrays.

    Building the index is a single pass; every sweep point afterwards
    reads the per-pair timestamp arrays instead of re-walking the trace.
    Input order is preserved within each pair (the oracle replays events
    in the order given), and each pair remembers whether its array is
    time-sorted so the scanner can choose the bisect fast path.
    """

    __slots__ = ("times", "total", "_sorted")

    def __init__(self, events: Sequence[QueryEvent]):
        times: Dict[Pair, List[float]] = {}
        sorted_flags: Dict[Pair, bool] = {}
        for event in events:
            pair = (event.name, event.nameserver)
            bucket = times.get(pair)
            if bucket is None:
                times[pair] = [event.time]
                sorted_flags[pair] = True
            else:
                if sorted_flags[pair] and event.time < bucket[-1]:
                    sorted_flags[pair] = False
                bucket.append(event.time)
        self.times = times
        self.total = sum(len(bucket) for bucket in times.values())
        self._sorted = sorted_flags

    @property
    def pair_count(self) -> int:
        """Distinct (domain, nameserver) pairs in the trace."""
        return len(self.times)

    def scan(self, pair: Pair, length: float, duration: float,
             terms: List[float]) -> int:
        """Replay one pair under a constant lease ``length``.

        Returns the pair's upstream query count and appends each granted
        lease's duration-truncated coverage (the oracle's exact
        ``max(0, min(t + length, duration) - t)`` term) to ``terms`` —
        a caller-shared list so a whole sweep point's terms can be
        summed once with ``math.fsum``.
        """
        times = self.times[pair]
        if self._sorted[pair]:
            return _scan_pair_sorted(times, length, duration, terms)
        return _scan_pair_unsorted(times, length, duration, terms)


def _scan_pair_sorted(times: List[float], length: float, duration: float,
                      terms: List[float]) -> int:
    """Greedy absorb/forward scan over a sorted timestamp array.

    Upstream queries jump past their absorption window — one comparison
    when the window absorbs nothing (sparse pairs), a bisect otherwise —
    so absorbed queries cost nothing and cost is O(upstream × log n)
    rather than O(n).
    """
    upstream = 0
    append = terms.append
    n = len(times)
    last = times[n - 1]
    i = 0
    while i < n:
        t = times[i]
        upstream += 1
        end = t + length
        if end > duration:
            end = duration
        cover = end - t
        append(cover if cover > 0.0 else 0.0)
        expiry = t + length
        i += 1
        if i < n and times[i] < expiry:
            if last < expiry:
                break  # the rest of the pair is absorbed by this lease
            # The oracle absorbs strictly-earlier queries (time < expiry);
            # bisect_left finds the first index with time >= expiry.
            i = bisect_left(times, expiry, i + 1)
    return upstream


def _scan_pair_unsorted(times: List[float], length: float, duration: float,
                        terms: List[float]) -> int:
    """Oracle-order scan for pairs whose events arrived out of order."""
    upstream = 0
    expiry = -math.inf
    for t in times:
        if t < expiry:
            continue
        upstream += 1
        end = min(t + length, duration)
        terms.append(max(0.0, end - t))
        expiry = t + length
    return upstream


def as_pair_index(trace: Union[PairIndex, Sequence[QueryEvent]]) -> PairIndex:
    """Coerce a raw event sequence into a :class:`PairIndex`."""
    if isinstance(trace, PairIndex):
        return trace
    return PairIndex(trace)


def fast_lease_replay(trace: Union[PairIndex, Sequence[QueryEvent]],
                      pair_rates: Dict[Pair, float],
                      max_lease_of: Callable[[Name], float],
                      lease_fn: LeaseFn,
                      duration: float,
                      scheme: str = "custom",
                      parameter: float = 0.0) -> LeaseSimResult:
    """Pair-indexed equivalent of the oracle's one-scheme replay.

    ``lease_fn`` must be pure (see module docstring); it is evaluated
    once per pair.  Returns a result bit-identical to
    :func:`~repro.sim.driver.simulate_lease_trace` on the same inputs.
    """
    index = as_pair_index(trace)
    upstream = 0
    grants = 0
    terms: List[float] = []
    for pair, times in index.times.items():
        rate = pair_rates.get(pair, 0.0)
        length = lease_fn(pair, rate, max_lease_of(pair[0]))
        if length > 0:
            pair_upstream = index.scan(pair, length, duration, terms)
            upstream += pair_upstream
            grants += pair_upstream
        else:
            upstream += len(times)
    return LeaseSimResult(
        scheme=scheme, parameter=parameter, total_queries=index.total,
        upstream_messages=upstream, grants=grants,
        lease_seconds=math.fsum(terms), pair_count=index.pair_count,
        duration=duration)


def fast_polling(trace: Union[PairIndex, Sequence[QueryEvent]],
                 duration: float) -> LeaseSimResult:
    """The no-lease baseline, which needs no replay at all."""
    index = as_pair_index(trace)
    return LeaseSimResult(
        scheme="none", parameter=0.0, total_queries=index.total,
        upstream_messages=index.total, grants=0, lease_seconds=0.0,
        pair_count=index.pair_count, duration=duration)


def fast_dynamic_sweep(trace: Union[PairIndex, Sequence[QueryEvent]],
                       pair_rates: Dict[Pair, float],
                       max_lease_of: Callable[[Name], float],
                       rate_thresholds: Sequence[float],
                       duration: float) -> List[LeaseSimResult]:
    """The whole dynamic-threshold sweep in one O(pairs) pass.

    Every pair's max-lease contribution (upstream count, grant count,
    lease-second terms) is computed exactly once; thresholds are then
    processed in descending order while pairs are admitted into the
    granted set in descending-rate order, so each threshold's totals are
    running sums rather than replays.  Results come back in the caller's
    threshold order, each bit-identical to an oracle run at that
    threshold.
    """
    index = as_pair_index(trace)
    total = index.total
    # Per-pair max-lease precomputation, shared by every threshold.
    entries: List[Tuple[float, int, int, List[float]]] = []
    for pair, times in index.times.items():
        max_lease = max_lease_of(pair[0])
        if max_lease <= 0:
            continue  # never grantable: pure polling at any threshold
        terms: List[float] = []
        pair_upstream = index.scan(pair, max_lease, duration, terms)
        entries.append((pair_rates.get(pair, 0.0), len(times),
                        pair_upstream, terms))
    entries.sort(key=lambda entry: entry[0], reverse=True)

    order = sorted(range(len(rate_thresholds)),
                   key=lambda i: rate_thresholds[i], reverse=True)
    results: List[LeaseSimResult] = [None] * len(rate_thresholds)  # type: ignore[list-item]
    acc = ExactSum()
    granted_total = 0      # queries belonging to granted pairs
    granted_upstream = 0   # of those, the ones a max lease still forwards
    cursor = 0
    for position in order:
        threshold = rate_thresholds[position]
        while cursor < len(entries) and entries[cursor][0] >= threshold:
            _rate, pair_total, pair_upstream, terms = entries[cursor]
            granted_total += pair_total
            granted_upstream += pair_upstream
            acc.add_all(terms)
            cursor += 1
        results[position] = LeaseSimResult(
            scheme="dynamic", parameter=threshold, total_queries=total,
            upstream_messages=(total - granted_total) + granted_upstream,
            grants=granted_upstream, lease_seconds=acc.value(),
            pair_count=index.pair_count, duration=duration)
    return results
