"""Evaluation harnesses: trace-driven lease simulation and the testbed."""

from .driver import (
    Figure5Curves,
    TraceSimConfig,
    default_max_lease_of,
    dynamic_lease_fn,
    figure5_curves,
    fixed_lease_fn,
    logspace,
    no_lease_fn,
    simulate_lease_trace,
    train_pair_rates,
)
from .columnar import (
    ColumnarTrace,
    GAP_BUCKETS,
    columnar_dynamic_sweep,
    columnar_lease_replay,
    columnar_polling,
    columnar_scan,
    load_metric_table,
    scan_metric_table,
    flash_crowd_columnar,
)
from .fastreplay import (
    ExactSum,
    PairIndex,
    fast_dynamic_sweep,
    fast_lease_replay,
    fast_polling,
)
from .shard import (
    ShardSweep,
    gather_subtrace,
    merge_metric_tables,
    merge_shard_sweeps,
    metric_table_registry,
    shard_of_name,
    shard_pair_ids,
    sharded_figure5_sweep,
    sharded_lease_replay,
    sharded_load_metrics,
    sharded_scan_metrics,
)
from .metrics import (
    ConsistencyReport,
    LeaseSimResult,
    StalenessSample,
    interpolate_at_query_rate,
    interpolate_at_storage,
)
from .scenario import ProtocolScenario, ScenarioConfig
from .testbed import Testbed, TestbedConfig, run_figure7_scenario
from .livetestbed import LiveTestbed, make_live_testbed

__all__ = [
    "simulate_lease_trace", "figure5_curves", "Figure5Curves",
    "fixed_lease_fn", "dynamic_lease_fn", "no_lease_fn",
    "train_pair_rates", "default_max_lease_of", "logspace",
    "TraceSimConfig",
    "PairIndex", "ExactSum", "fast_lease_replay", "fast_dynamic_sweep",
    "fast_polling",
    "ColumnarTrace", "columnar_scan", "columnar_lease_replay",
    "columnar_dynamic_sweep", "columnar_polling", "flash_crowd_columnar",
    "scan_metric_table", "load_metric_table", "GAP_BUCKETS",
    "ShardSweep", "shard_of_name", "shard_pair_ids", "gather_subtrace",
    "merge_shard_sweeps", "sharded_figure5_sweep", "sharded_lease_replay",
    "metric_table_registry", "merge_metric_tables", "sharded_scan_metrics",
    "sharded_load_metrics",
    "LeaseSimResult", "ConsistencyReport", "StalenessSample",
    "interpolate_at_storage", "interpolate_at_query_rate",
    "ProtocolScenario", "ScenarioConfig",
    "Testbed", "TestbedConfig", "run_figure7_scenario",
    "LiveTestbed", "make_live_testbed",
]
