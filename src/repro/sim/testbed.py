"""The §5.2 prototype testbed (Figure 7).

A hierarchy of DNS nameservers "in a LAN": one root nameserver, one
master authoritative server with two slaves, and two DNS caches (local
nameservers), serving 40 zones constructed from the most popular
domains of an IRCache-style proxy log.  The paper validates three
things on this testbed, and so do we:

1. the system accepts all existing message types plus DNScup messages;
2. every message stays below RFC 1035's 512-byte UDP bound;
3. the computation overhead of DNScup vs plain TTL is "hardly
   noticeable" (measured by the CPU micro-bench on top of this module).

The master replicates to both slaves via NOTIFY + IXFR/AXFR; caches
resolve via the root and spread their iterative queries across master
and slaves round-robin, as BIND does.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import DNScup, DNScupConfig, DynamicLeasePolicy, attach_dnscup
from ..dnslib import A, MAX_UDP_PAYLOAD, Name, NS, RRType, RRSet, SOA, \
    Rcode, make_update
from ..net import Host, LinkProfile, LatencyModel, Network, Simulator
from ..obs import AuditLimits, AuditReport, Observability, audit_observability
from ..server import AuthoritativeServer, RecursiveResolver, ResolverCache, StubResolver
from ..traces.domains import DomainSpec, PopulationConfig, generate_population
from ..traces.ircache import synthesize_proxy_log, top_domains
from ..zone import Zone, ZoneMaster, ZoneSlave, update_delete_rrset, zones_equal

#: LAN latency: 100 Mbps switched Ethernet, sub-millisecond.
LAN_PROFILE = LinkProfile(latency=LatencyModel(base=0.0002, jitter=0.0001))

MASTER_ADDRESS = "192.168.1.10"
SLAVE_ADDRESSES = ("192.168.1.11", "192.168.1.12")
ROOT_ADDRESS = "192.168.1.1"
CACHE_ADDRESSES = ("192.168.1.21", "192.168.1.22")
CLIENT_ADDRESSES = ("192.168.1.31", "192.168.1.32")


@dataclasses.dataclass
class TestbedConfig:
    """Configuration knobs with paper-faithful defaults."""
    __test__ = False  # not a pytest class despite the name

    zone_count: int = 40          # paper: 40 zones from the top-50 domains
    candidate_count: int = 50
    dnscup_enabled: bool = True
    network_seed: int = 5
    loss_rate: float = 0.0
    #: When True, build an :class:`repro.obs.Observability` bundle (trace
    #: bus + metrics registry + wire capture), hook it into the network
    #: and the master's DNScup middleware, and expose it as
    #: ``Testbed.observability``.
    observability: bool = False


class Testbed:
    """The assembled Figure 7 topology."""

    __test__ = False  # not a pytest class despite the name

    def __init__(self, config: Optional[TestbedConfig] = None,
                 domains: Optional[Sequence[DomainSpec]] = None):
        self.config = config or TestbedConfig()
        self.simulator = self._create_simulator()
        profile = dataclasses.replace(LAN_PROFILE,
                                      loss_rate=self.config.loss_rate)
        self.network = self._create_network(profile)
        self.observability: Optional[Observability] = None
        if self.config.observability:
            self.observability = Observability.for_simulator(
                self.simulator, capture=True)
            self.observability.observe_network(self.network)
        self.domains = list(domains) if domains is not None \
            else self._select_domains()
        self._build()

    # -- substrate factories (the backend seam) --------------------------------
    #
    # Subclasses swap the time/transport substrate by overriding these
    # two hooks; everything else — topology construction, the exercises,
    # auditing — is substrate-agnostic because components only touch the
    # ClockLike/Network *surfaces*.  ``sim.livetestbed.LiveTestbed``
    # overrides them with a LiveClock + AioNetwork to run the identical
    # scenario over real loopback sockets.

    def _create_simulator(self):
        """The clock driving the run (discrete-event by default)."""
        return Simulator()

    def _create_network(self, profile: LinkProfile):
        """The transport connecting the hosts (simulated by default)."""
        return Network(self.simulator, seed=self.config.network_seed,
                       default_profile=profile)

    def _select_domains(self) -> List[DomainSpec]:
        """The top domains of a synthetic IRCache log, as in §5.2."""
        population = generate_population(PopulationConfig(
            regular_per_tld=20, cdn_count=10, dyn_count=10,
            seed=self.config.network_seed))
        log = synthesize_proxy_log(population, total_requests=200_000,
                                   seed=self.config.network_seed)
        popular = {entry.name for entry in
                   top_domains(log, self.config.candidate_count)}
        chosen = [d for d in population if d.name in popular]
        # Group by zone and keep the first `zone_count` zones.
        zones_seen: List[Name] = []
        selected: List[DomainSpec] = []
        for domain in chosen:
            if domain.zone_origin not in zones_seen:
                if len(zones_seen) >= self.config.zone_count:
                    continue
                zones_seen.append(domain.zone_origin)
            selected.append(domain)
        return selected

    # -- construction ------------------------------------------------------------

    def _build(self) -> None:
        # Hosts.
        self.master_host = Host(self.network, MASTER_ADDRESS)
        self.slave_hosts = [Host(self.network, addr) for addr in SLAVE_ADDRESSES]
        self.root_host = Host(self.network, ROOT_ADDRESS)
        self.cache_hosts = [Host(self.network, addr) for addr in CACHE_ADDRESSES]
        self.client_hosts = [Host(self.network, addr) for addr in CLIENT_ADDRESSES]
        # Zones on the master.
        self.master = AuthoritativeServer(self.master_host)
        self.zones: Dict[Name, Zone] = {}
        zone_members: Dict[Name, List[DomainSpec]] = {}
        for domain in self.domains:
            zone_members.setdefault(domain.zone_origin, []).append(domain)
        for origin, members in sorted(zone_members.items(),
                                      key=lambda item: item[0]):
            zone = self._make_zone(origin, members)
            self.zones[origin] = zone
            self.master.add_zone(zone, master=True)
        # Slaves replicate every zone.
        self.slaves = [AuthoritativeServer(host) for host in self.slave_hosts]
        self._slave_replicas: List[Dict[Name, ZoneSlave]] = []
        for slave_index, slave in enumerate(self.slaves):
            replicas: Dict[Name, ZoneSlave] = {}
            for origin, zone in self.zones.items():
                replica_zone = self._make_zone(origin, zone_members[origin])
                slave.add_zone(replica_zone, master=False)
                replica = ZoneSlave(replica_zone)
                replicas[origin] = replica
                self.master.register_slave(
                    origin, (self.slave_hosts[slave_index].address, 53), replica)
            self._slave_replicas.append(replicas)
            self._install_refresher(slave, replicas)
        # Root delegates every zone to master + slaves.
        self.root_zone = self._make_root_zone()
        self.root = AuthoritativeServer(self.root_host, [self.root_zone])
        # DNScup on the master (the paper modifies the master's BIND).
        self.dnscup: Optional[DNScup] = None
        if self.config.dnscup_enabled:
            self.dnscup = attach_dnscup(
                self.master, policy=DynamicLeasePolicy(rate_threshold=0.0),
                config=DNScupConfig(observability=self.observability))
        # The two DNS caches.
        self.caches = [
            RecursiveResolver(host, [(ROOT_ADDRESS, 53)],
                              cache=ResolverCache(),
                              dnscup_enabled=self.config.dnscup_enabled)
            for host in self.cache_hosts]
        # One stub client per cache.
        self.clients = [
            StubResolver(host, (CACHE_ADDRESSES[i], 53), cache_seconds=0.0)
            for i, host in enumerate(self.client_hosts)]

    def _install_refresher(self, slave: AuthoritativeServer,
                           replicas: Dict[Name, ZoneSlave]) -> None:
        def refresh(origin: Name) -> None:
            master = self.master.master_for(origin)
            replica = replicas.get(origin)
            if master is not None and replica is not None:
                replica.refresh_from(master)
        slave.set_notify_refresher(refresh)

    def _make_zone(self, origin: Name, members: Sequence[DomainSpec]) -> Zone:
        ns_names = [origin.child("ns1"), origin.child("ns2"), origin.child("ns3")]
        addresses = [MASTER_ADDRESS, *SLAVE_ADDRESSES]
        soa = SOA(ns_names[0], origin.child("hostmaster"), 1,
                  7200, 900, 604800, 300)
        zone = Zone(origin, soa)
        with zone.bulk_update():
            zone.put_rrset(RRSet(origin, RRType.NS, 86400,
                                 [NS(name) for name in ns_names]))
            for ns_name, address in zip(ns_names, addresses):
                zone.put_rrset(RRSet(ns_name, RRType.A, 86400, [A(address)]))
            for domain in members:
                zone.put_rrset(RRSet(
                    domain.name, RRType.A, int(domain.ttl),
                    [A(addr) for addr in domain.process.initial_addresses()]))
        return zone

    def _make_root_zone(self) -> Zone:
        root = Name.root()
        soa = SOA("ns.root.", "hostmaster.root.", 1, 7200, 900, 604800, 300)
        zone = Zone(root, soa)
        with zone.bulk_update():
            zone.put_rrset(RRSet(root, RRType.NS, 518400, [NS("ns.root.")]))
            zone.put_rrset(RRSet("ns.root.", RRType.A, 518400,
                                 [A(ROOT_ADDRESS)]))
            for origin in self.zones:
                ns_names = [origin.child("ns1"), origin.child("ns2"),
                            origin.child("ns3")]
                addresses = [MASTER_ADDRESS, *SLAVE_ADDRESSES]
                zone.put_rrset(RRSet(origin, RRType.NS, 172800,
                                     [NS(name) for name in ns_names]))
                for ns_name, address in zip(ns_names, addresses):
                    zone.put_rrset(RRSet(ns_name, RRType.A, 172800,
                                         [A(address)]))
        return zone

    # -- exercises -----------------------------------------------------------------

    def lookup_all(self, client_index: int = 0) -> Dict[Name, List[str]]:
        """Resolve every testbed domain from one client; returns answers."""
        answers: Dict[Name, List[str]] = {}
        client = self.clients[client_index]
        for domain in self.domains:
            client.lookup(domain.name,
                          lambda addrs, rc, name=domain.name:
                          answers.__setitem__(name, addrs))
        self.simulator.run()
        return answers

    def dynamic_update(self, name, new_address: str) -> Rcode:
        """Apply an RFC 2136 UPDATE to the master over the wire."""
        owner = Name.from_text(name) if isinstance(name, str) else name
        zone = None
        for origin, candidate in self.zones.items():
            if owner.is_subdomain_of(origin):
                zone = candidate
                break
        if zone is None:
            raise ValueError(f"no testbed zone contains {owner}")
        message = make_update(zone.origin)
        message.update.append(update_delete_rrset(owner, RRType.A))
        existing = zone.get_rrset(owner, RRType.A)
        ttl = existing.ttl if existing is not None else 300
        from ..dnslib import ResourceRecord
        message.update.append(ResourceRecord(owner, RRType.A, ttl,
                                             A(new_address)))
        outcome: List[Rcode] = []
        updater_socket = self.client_hosts[0].socket()

        def on_response(payload, src) -> None:
            if payload is None:
                outcome.append(Rcode.SERVFAIL)
                return
            from ..dnslib import Message
            outcome.append(Message.from_wire(payload).rcode)

        updater_socket.request(message.to_wire(), (MASTER_ADDRESS, 53),
                               message.id, on_response)
        self.simulator.run()
        updater_socket.close()
        return outcome[0] if outcome else Rcode.SERVFAIL

    def slaves_consistent(self) -> bool:
        """All slave replicas content-equal to the master's zones."""
        for replicas in self._slave_replicas:
            for origin, replica in replicas.items():
                if not zones_equal(self.zones[origin], replica.zone):
                    return False
        return True

    def max_message_size(self) -> int:
        """Largest datagram observed on the testbed network."""
        return self.network.stats.max_datagram

    def run(self) -> None:
        """Drain all pending (non-daemon) work."""
        self.simulator.run()

    def close(self) -> None:
        """Release substrate resources (real sockets on live backends)."""

    def audit(self, limits: Optional[AuditLimits] = None) -> AuditReport:
        """Check the run's trace (and capture) against the protocol
        invariants; see :func:`repro.obs.audit_trace`.

        Requires the testbed to have been built with
        ``observability=True`` so the full event record exists.
        """
        if self.observability is None:
            raise ValueError("testbed built without observability=True; "
                             "no trace to audit")
        return audit_observability(self.observability, limits=limits)


def run_figure7_scenario(testbed: Testbed, updates: int = 5) -> Dict[str, object]:
    """Drive the §5.2 validation scenario on an assembled testbed.

    The same exercise on any substrate — the fig7 bench runs it on the
    simulated testbed, the live bench and ``repro-live`` on a
    :class:`~repro.sim.livetestbed.LiveTestbed` — so the simulated and
    real-socket runs are held to the identical checks: every domain
    resolves from both clients, ``updates`` dynamic updates land with
    NOERROR, replication and CACHE-UPDATE leave every copy consistent,
    and no datagram exceeds the RFC 1035 bound.  Returns the headline
    numbers; raises :class:`AssertionError` on any failed check.
    """
    answers = testbed.lookup_all(0)
    testbed.lookup_all(1)
    assert all(addrs for addrs in answers.values()), \
        "unresolved domains in lookup_all"
    applied = 0
    for domain in testbed.domains[:updates]:
        rcode = testbed.dynamic_update(domain.name, f"172.20.0.{applied + 1}")
        assert rcode == Rcode.NOERROR, f"dynamic update failed: {rcode}"
        applied += 1
    testbed.run()
    assert testbed.slaves_consistent(), "slave replicas diverged"
    summary: Dict[str, object] = {
        "zones": len(testbed.zones),
        "domains": len(testbed.domains),
        "updates_applied": applied,
        "max_message_size": testbed.max_message_size(),
    }
    if testbed.dnscup is not None:
        stats = testbed.dnscup.notification.stats
        assert stats.notifications_sent > 0, "no CACHE-UPDATEs sent"
        assert stats.acks_received == stats.notifications_sent, \
            (stats.acks_received, stats.notifications_sent)
        summary["notifications_sent"] = stats.notifications_sent
        summary["acks_received"] = stats.acks_received
    assert testbed.max_message_size() <= MAX_UDP_PAYLOAD, \
        f"datagram over the RFC 1035 bound: {testbed.max_message_size()}"
    return summary
