"""The Figure 7 testbed over real loopback sockets.

:class:`LiveTestbed` is :class:`~repro.sim.testbed.Testbed` with the
substrate swapped: a :class:`~repro.net.clock.LiveClock` (wall-clock
timers on an asyncio loop) instead of the discrete-event
:class:`~repro.net.simulator.Simulator`, and an
:class:`~repro.net.aio.AioNetwork` (real UDP/TCP sockets on
``127.0.0.1``) instead of the simulated :class:`~repro.net.network.Network`.

Everything else — the master/slaves/root/caches/clients topology, the
zones, the DNScup middleware, the exercises, the observability wiring,
the audit — is inherited *unmodified*, which is the point: the servers
and resolvers in ``src/repro/server`` only ever touch the ClockLike and
Network surfaces, so the same code that ran in simulation serves real
datagrams.  The run is held to the identical protocol invariants: drive
it with :func:`~repro.sim.testbed.run_figure7_scenario` and check
:meth:`~repro.sim.testbed.Testbed.audit` comes back clean.

Differences forced by reality:

* the LAN :class:`~repro.net.network.LinkProfile` is ignored — loopback
  latency is whatever the kernel gives us, and there is no injected
  loss (retransmit timers still arm exactly as in simulation; they are
  simply cancelled by the prompt real acks);
* timestamps are wall-clock seconds since the clock's epoch, so traces
  still start near zero but deltas are real elapsed time.

Always :meth:`close` a live testbed (or use it as a context manager) to
release its sockets.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..net import (AioNetwork, LinkProfile, LiveClock, TelemetryPlane,
                   loopback_available)
from ..obs import AuditLimits
from ..traces.domains import DomainSpec
from .testbed import Testbed, TestbedConfig

__all__ = ["LiveTestbed", "make_live_testbed", "loopback_available"]


class LiveTestbed(Testbed):
    """The assembled Figure 7 topology on real loopback sockets."""

    __test__ = False

    #: The live telemetry plane, once :meth:`enable_telemetry` ran.
    telemetry: Optional[TelemetryPlane] = None

    #: The load ledger's installed trace tap (removed in :meth:`close`).
    _load_tap = None

    def __init__(self, config: Optional[TestbedConfig] = None,
                 domains: Optional[Sequence[DomainSpec]] = None,
                 sanitize: bool = False):
        # Read by _create_simulator during super().__init__, so it must
        # exist first.
        self._sanitize = sanitize
        super().__init__(config, domains)
        sanitizer = self.sanitizer
        if sanitizer is not None and self.observability is not None:
            # The trace bus's tap list is loop-owned once traffic runs:
            # flag mutations from foreign loops/threads (DCUP011).
            sanitizer.guard("obs.trace", self.observability.trace,
                            ("add_tap", "remove_tap"))

    @property
    def sanitizer(self):
        """The armed runtime sanitizer, or None when built without."""
        return self.simulator.sanitizer

    def _create_simulator(self) -> LiveClock:
        return LiveClock(sanitize=self._sanitize)

    def _create_network(self, profile: LinkProfile) -> AioNetwork:
        # The link profile is meaningless on a real network: loopback
        # provides its own (tiny) latency and no configurable loss.
        return AioNetwork(self.simulator)

    def enable_telemetry(self, interval: float = 0.25,
                         limits: Optional[AuditLimits] = None,
                         fail_fast: bool = True) -> TelemetryPlane:
        """Attach and start a :class:`~repro.net.telemetry.TelemetryPlane`.

        Requires ``observability=True`` (the plane audits the trace
        stream and exposes the metrics registry).  Call before driving
        traffic so the incremental audit sees the whole run; the plane
        stops automatically in :meth:`close`.

        Also arms the load-attribution plane: the bundle's
        :class:`~repro.obs.load.LoadLedger` is created (registering the
        ``load.*`` gauges the exposition renders) and installed as a
        *second* trace tap next to the plane's streaming auditor, so a
        mid-run scrape shows rolling load and active-storm gauges.
        """
        if self.observability is None:
            raise ValueError("testbed built without observability=True; "
                             "nothing to stream")
        if self.telemetry is not None:
            return self.telemetry
        ledger = self.observability.enable_load()
        self.observability.trace.add_tap(ledger.on_event)
        self._load_tap = ledger.on_event
        self.telemetry = TelemetryPlane(
            self.simulator, self.network, self.observability,
            interval=interval, limits=limits, fail_fast=fail_fast)
        self.telemetry.start()
        return self.telemetry

    def close(self) -> None:
        """Close every real socket, acceptor, and pooled connection."""
        if self.telemetry is not None:
            self.telemetry.stop()
        if self._load_tap is not None and self.observability is not None:
            self.observability.trace.remove_tap(self._load_tap)
            self._load_tap = None
        self.network.close()
        sanitizer = self.simulator.sanitizer
        if sanitizer is not None:
            sanitizer.stop()
        loop = self.simulator.loop
        if not loop.is_closed():
            loop.close()

    def __enter__(self) -> "LiveTestbed":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_live_testbed(config: Optional[TestbedConfig] = None,
                      domains: Optional[Sequence[DomainSpec]] = None,
                      sanitize: bool = False) -> LiveTestbed:
    """Build a :class:`LiveTestbed`; raises if loopback is unavailable."""
    if not loopback_available():
        raise RuntimeError("loopback UDP unavailable on this platform; "
                           "cannot build a live testbed")
    return LiveTestbed(config, domains, sanitize=sanitize)
