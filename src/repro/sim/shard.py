"""Domain-partitioned sharded replay with exact, byte-stable merges.

The columnar engine (:mod:`repro.sim.columnar`) replays pairs
independently, which means the trace can be *partitioned by domain* and
each partition replayed in its own process: a pair's absorb/forward
decisions, its admission under the dynamic scheme, and its lease-second
terms never reference another pair.  This module supplies that layer:

* :func:`shard_of_name` assigns every domain to a shard by CRC-32 of
  its lowercased text — stable across processes, machines and
  ``PYTHONHASHSEED``, so a given trace always partitions identically;
* :func:`shard_sweep_tasks` slices one :class:`~repro.sim.columnar.
  ColumnarTrace` into per-shard CSR arrays (a vectorized gather — no
  event objects, no :class:`~repro.dnslib.Name` objects in the
  payload);
* :func:`sharded_figure5_sweep` runs the whole fixed + dynamic sweep
  per shard — serially or on a ``multiprocessing`` pool — and merges
  the per-shard tables into :class:`~repro.sim.metrics.LeaseSimResult`
  rows.

**The merge is exact, so shard count cannot change a single bit.**
Integer counters add associatively; ``lease_seconds`` is carried as
Shewchuk partials (:meth:`~repro.sim.fastreplay.ExactSum.partials`),
an *exact* representation of each shard's term sum, and folding all
shards' partials into one accumulator before rounding once yields the
identical float a single-shard run computes.  The shard-invariance
property test (``tests/test_sim_shard.py``) holds 1-, 2- and 8-shard
runs to byte-identical metrics JSON.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dnslib import Name
from ..obs.metrics import Registry
from .columnar import (ColumnarTrace, MetricTable, dynamic_sweep_table,
                       load_metric_table, replay_table, scan_metric_table)
from .fastreplay import ExactSum
from .metrics import LeaseSimResult

#: One worker payload: everything a shard needs to run the full sweep.
#: Plain arrays and floats only — cheap to pickle, nothing process-local.
_SweepTask = Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                   np.ndarray, Tuple[float, ...], Tuple[float, ...], float]


def shard_of_name(name: Name, nshards: int) -> int:
    """The shard owning ``name``: CRC-32 of the lowercased dotted text.

    Deliberately *not* ``hash()``: Python's string hash is salted per
    process, while the shard layout must be identical in every worker,
    rerun and machine for the merge (and its audit trail) to be
    byte-stable.
    """
    if nshards < 1:
        raise ValueError("need at least one shard")
    return zlib.crc32(".".join(name.key).encode("utf-8")) % nshards


def shard_pair_ids(trace: ColumnarTrace,
                   nshards: int) -> List[np.ndarray]:
    """Pair ids per shard, preserving the trace's pair order within
    each shard (all pairs of one domain land on one shard)."""
    shard_col = np.fromiter(
        (shard_of_name(name, nshards) for name in trace.names),
        dtype=np.int64, count=trace.pair_count)
    return [np.flatnonzero(shard_col == shard) for shard in range(nshards)]


def gather_subtrace(trace: ColumnarTrace, pair_ids: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One shard's ``(times, starts, sorted_mask)`` CSR arrays.

    A vectorized gather: each selected pair's segment is copied
    back-to-back into a fresh timestamp block, preserving within-pair
    order (the bit-identity contract replays each pair in input order).
    """
    seg_len = trace.segment_lengths()[pair_ids]
    starts = np.zeros(len(pair_ids) + 1, dtype=np.int64)
    np.cumsum(seg_len, out=starts[1:])
    # Source index for destination slot j of pair i:
    # trace.starts[pair_ids[i]] + (j - starts[i]).
    source = (np.repeat(trace.starts[pair_ids] - starts[:-1], seg_len)
              + np.arange(int(starts[-1]), dtype=np.int64))
    return trace.times[source], starts, trace.sorted_mask[pair_ids]


@dataclasses.dataclass
class ShardSweep:
    """One shard's sweep outcome: exact, merge-ready, byte-stable.

    ``fixed`` holds one ``(upstream, grants, lease partials)`` row per
    fixed lease length; ``dynamic`` one ``(granted queries, granted
    upstream, lease partials)`` row per threshold.  All values are
    exact — integers and Shewchuk partials — so any merge order gives
    the same result.
    """

    shard: int
    total_queries: int
    pair_count: int
    fixed: List[Tuple[int, int, List[float]]]
    dynamic: List[Tuple[int, int, List[float]]]


def _sweep_shard(task: _SweepTask) -> ShardSweep:
    """Worker: one shard's full fixed + dynamic sweep (pure function)."""
    (shard, times, starts, sorted_mask, pair_rates, max_lease,
     fixed_lengths, rate_thresholds, duration) = task
    fixed: List[Tuple[int, int, List[float]]] = []
    for length in fixed_lengths:
        # The fixed scheme's lease_fn is min(length, ceiling) per pair;
        # np.minimum is the same IEEE-754 selection, vectorized.
        fixed.append(replay_table(times, starts, sorted_mask,
                                  np.minimum(length, max_lease), duration))
    dynamic = dynamic_sweep_table(times, starts, sorted_mask, pair_rates,
                                  max_lease, rate_thresholds, duration)
    return ShardSweep(shard=shard, total_queries=int(len(times)),
                      pair_count=len(starts) - 1, fixed=fixed,
                      dynamic=dynamic)


def shard_sweep_tasks(trace: ColumnarTrace, pair_rates: np.ndarray,
                      max_lease: np.ndarray,
                      fixed_lengths: Sequence[float],
                      rate_thresholds: Sequence[float],
                      duration: float, nshards: int) -> List[_SweepTask]:
    """Slice a trace and its per-pair columns into worker payloads."""
    pair_rates = np.asarray(pair_rates, dtype=np.float64)
    max_lease = np.asarray(max_lease, dtype=np.float64)
    tasks: List[_SweepTask] = []
    for shard, pair_ids in enumerate(shard_pair_ids(trace, nshards)):
        times, starts, sorted_mask = gather_subtrace(trace, pair_ids)
        tasks.append((shard, times, starts, sorted_mask,
                      pair_rates[pair_ids], max_lease[pair_ids],
                      tuple(fixed_lengths), tuple(rate_thresholds),
                      duration))
    return tasks


def run_shard_sweeps(tasks: Sequence[_SweepTask],
                     processes: Optional[int] = None) -> List[ShardSweep]:
    """Run every shard task, serially or on a ``multiprocessing`` pool.

    ``processes=None`` (or 1, or a single task) runs in-process — the
    workers are pure functions of their payload, so the results are
    bit-identical either way; a pool only changes wall-clock time.
    """
    if processes is None or processes <= 1 or len(tasks) <= 1:
        return [_sweep_shard(task) for task in tasks]
    with multiprocessing.get_context().Pool(
            processes=min(processes, len(tasks))) as pool:
        return pool.map(_sweep_shard, tasks)


def merge_shard_sweeps(sweeps: Sequence[ShardSweep],
                       fixed_lengths: Sequence[float],
                       rate_thresholds: Sequence[float],
                       duration: float
                       ) -> Tuple[List[LeaseSimResult],
                                  List[LeaseSimResult], LeaseSimResult]:
    """Fold per-shard tables into global ``(fixed, dynamic, polling)``.

    Deterministic and exact: integer counters add, lease partials fold
    into one :class:`ExactSum` per sweep point and round once.  Shards
    are processed in shard order for a stable audit trail, though any
    order would produce the same bits.
    """
    ordered = sorted(sweeps, key=lambda sweep: sweep.shard)
    total = 0
    pair_count = 0
    for sweep in ordered:
        total += sweep.total_queries
        pair_count += sweep.pair_count
    fixed_results: List[LeaseSimResult] = []
    for index, length in enumerate(fixed_lengths):
        upstream = 0
        grants = 0
        acc = ExactSum()
        for sweep in ordered:
            row_upstream, row_grants, partials = sweep.fixed[index]
            upstream += row_upstream
            grants += row_grants
            acc.add_all(partials)
        fixed_results.append(LeaseSimResult(
            scheme="fixed", parameter=length, total_queries=total,
            upstream_messages=upstream, grants=grants,
            lease_seconds=acc.value(), pair_count=pair_count,
            duration=duration))
    dynamic_results: List[LeaseSimResult] = []
    for index, threshold in enumerate(rate_thresholds):
        granted_total = 0
        granted_upstream = 0
        acc = ExactSum()
        for sweep in ordered:
            row_total, row_upstream, partials = sweep.dynamic[index]
            granted_total += row_total
            granted_upstream += row_upstream
            acc.add_all(partials)
        dynamic_results.append(LeaseSimResult(
            scheme="dynamic", parameter=threshold, total_queries=total,
            upstream_messages=(total - granted_total) + granted_upstream,
            grants=granted_upstream, lease_seconds=acc.value(),
            pair_count=pair_count, duration=duration))
    polling = LeaseSimResult(
        scheme="none", parameter=0.0, total_queries=total,
        upstream_messages=total, grants=0, lease_seconds=0.0,
        pair_count=pair_count, duration=duration)
    return fixed_results, dynamic_results, polling


def sharded_figure5_sweep(trace: ColumnarTrace, pair_rates: np.ndarray,
                          max_lease: np.ndarray,
                          fixed_lengths: Sequence[float],
                          rate_thresholds: Sequence[float],
                          duration: float, nshards: int,
                          processes: Optional[int] = None
                          ) -> Tuple[List[LeaseSimResult],
                                     List[LeaseSimResult], LeaseSimResult]:
    """The full Figure 5 sweep, domain-partitioned across ``nshards``.

    Returns ``(fixed, dynamic, polling)`` results bit-identical to the
    single-trace columnar engine — and therefore to the reference
    oracle — at *any* shard count.
    """
    tasks = shard_sweep_tasks(trace, pair_rates, max_lease, fixed_lengths,
                              rate_thresholds, duration, nshards)
    sweeps = run_shard_sweeps(tasks, processes=processes)
    return merge_shard_sweeps(sweeps, fixed_lengths, rate_thresholds,
                              duration)


def sharded_lease_replay(trace: ColumnarTrace, lengths: np.ndarray,
                         duration: float, nshards: int,
                         scheme: str = "custom", parameter: float = 0.0,
                         processes: Optional[int] = None) -> LeaseSimResult:
    """One scheme's replay (a precomputed per-pair lease column),
    domain-partitioned across ``nshards`` with the exact merge."""
    lengths = np.asarray(lengths, dtype=np.float64)
    total = 0
    pair_count = 0
    upstream = 0
    grants = 0
    acc = ExactSum()
    shard_ids = shard_pair_ids(trace, nshards)
    tables = run_shard_replays(trace, lengths, duration, shard_ids,
                               processes=processes)
    for pair_ids, (row_upstream, row_grants, partials) in zip(shard_ids,
                                                              tables):
        seg_total = int(np.sum(trace.segment_lengths()[pair_ids]))
        total += seg_total
        pair_count += len(pair_ids)
        upstream += row_upstream
        grants += row_grants
        acc.add_all(partials)
    return LeaseSimResult(
        scheme=scheme, parameter=parameter, total_queries=total,
        upstream_messages=upstream, grants=grants,
        lease_seconds=acc.value(), pair_count=pair_count,
        duration=duration)


def _replay_shard(task: Tuple[np.ndarray, np.ndarray, np.ndarray,
                              np.ndarray, float]
                  ) -> Tuple[int, int, List[float]]:
    """Worker: one shard's single-scheme replay table."""
    times, starts, sorted_mask, lengths, duration = task
    return replay_table(times, starts, sorted_mask, lengths, duration)


def metric_table_registry(table: MetricTable,
                          registry: Optional[Registry] = None) -> Registry:
    """Lift a :data:`~repro.sim.columnar.MetricTable` into a registry.

    Counters load with :meth:`~repro.obs.metrics.Counter.inc`;
    histogram rows load through
    :meth:`~repro.obs.metrics.Histogram.add_exact`, so the registry
    stays on the exact-sum path and :meth:`Registry.merge` combines
    shard registries byte-identically in any grouping.
    """
    if registry is None:
        registry = Registry()
    counters = table["counters"]
    histograms = table["histograms"]
    assert isinstance(counters, list) and isinstance(histograms, list)
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, bounds, counts, minimum, maximum, partials in histograms:
        registry.histogram(name, bounds).add_exact(
            counts, partials, minimum=minimum, maximum=maximum)
    return registry


def merge_metric_tables(tables: Sequence[MetricTable]) -> Registry:
    """Fold per-shard metric tables into one merged registry.

    Tables fold in the given order for a stable audit trail, but every
    row is exact (integer counts, Shewchuk sum partials), so any order
    — and any shard count — yields byte-identical
    :meth:`~repro.obs.metrics.Registry.export_json` output.
    """
    merged = Registry()
    for table in tables:
        merged.merge(metric_table_registry(table))
    return merged


def _metric_shard(task: Tuple[np.ndarray, np.ndarray, np.ndarray,
                              np.ndarray, float]) -> MetricTable:
    """Worker: one shard's scan reduced to its metric table."""
    times, starts, sorted_mask, lengths, duration = task
    return scan_metric_table(times, starts, sorted_mask, lengths, duration)


def sharded_scan_metrics(trace: ColumnarTrace, lengths: np.ndarray,
                         duration: float, nshards: int,
                         processes: Optional[int] = None) -> Registry:
    """Scale-run telemetry from a domain-partitioned columnar scan.

    Replays one lease column per shard (serially or on a pool — same
    contract as :func:`run_shard_sweeps`), reduces each shard to a
    :data:`~repro.sim.columnar.MetricTable`, and merges the tables into
    a single :class:`~repro.obs.metrics.Registry` whose exported JSON
    is byte-identical at any shard count.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    tasks = []
    for pair_ids in shard_pair_ids(trace, nshards):
        times, starts, sorted_mask = gather_subtrace(trace, pair_ids)
        tasks.append((times, starts, sorted_mask, lengths[pair_ids],
                      duration))
    if processes is None or processes <= 1 or len(tasks) <= 1:
        tables = [_metric_shard(task) for task in tasks]
    else:
        with multiprocessing.get_context().Pool(
                processes=min(processes, len(tasks))) as pool:
            tables = pool.map(_metric_shard, tasks)
    return merge_metric_tables(tables)


def _load_shard(task: Tuple[np.ndarray, np.ndarray, np.ndarray]
                ) -> MetricTable:
    """Worker: one shard's columns reduced to its load metric table."""
    times, starts, sorted_mask = task
    return load_metric_table(times, starts, sorted_mask)


def sharded_load_metrics(trace: ColumnarTrace, nshards: int,
                         processes: Optional[int] = None) -> Registry:
    """Load-attribution telemetry from a domain-partitioned reduction.

    The columnar counterpart of the live
    :class:`repro.obs.load.LoadLedger`: each shard reduces its gathered
    sub-columns with :func:`~repro.sim.columnar.load_metric_table`
    (serially or on a pool — same contract as
    :func:`sharded_scan_metrics`), and the merged
    :class:`~repro.obs.metrics.Registry` exports byte-identically at
    any shard count because every row is integer bucket counts plus
    Shewchuk sum partials and pairs never straddle shards.
    """
    tasks = []
    for pair_ids in shard_pair_ids(trace, nshards):
        tasks.append(gather_subtrace(trace, pair_ids))
    if processes is None or processes <= 1 or len(tasks) <= 1:
        tables = [_load_shard(task) for task in tasks]
    else:
        with multiprocessing.get_context().Pool(
                processes=min(processes, len(tasks))) as pool:
            tables = pool.map(_load_shard, tasks)
    return merge_metric_tables(tables)


def run_shard_replays(trace: ColumnarTrace, lengths: np.ndarray,
                      duration: float, shard_ids: Sequence[np.ndarray],
                      processes: Optional[int] = None
                      ) -> List[Tuple[int, int, List[float]]]:
    """Per-shard replay tables for one lease column (see
    :func:`run_shard_sweeps` for the serial/pool contract)."""
    tasks = []
    for pair_ids in shard_ids:
        times, starts, sorted_mask = gather_subtrace(trace, pair_ids)
        tasks.append((times, starts, sorted_mask, lengths[pair_ids],
                      duration))
    if processes is None or processes <= 1 or len(tasks) <= 1:
        return [_replay_shard(task) for task in tasks]
    with multiprocessing.get_context().Pool(
            processes=min(processes, len(tasks))) as pool:
        return pool.map(_replay_shard, tasks)
