"""Synthetic traces: domain populations, change processes, workloads.

These stand in for the paper's live-Internet inputs (IRCache proxy logs,
one-week academic DNS traces, live probing of 15k domains) — see
DESIGN.md §2 for the substitution argument.
"""

from .changes import (
    CAUSE_GROWTH,
    CAUSE_RELOCATION,
    CAUSE_ROTATION,
    LOGICAL_CAUSES,
    PHYSICAL_CAUSES,
    AddressGrowth,
    AddressRotation,
    ChangeEvent,
    ChangeProcess,
    CompositeProcess,
    PoissonRelocation,
    StableProcess,
    random_ipv4,
)
from .domains import (
    CATEGORY_CDN,
    CATEGORY_DYN,
    CATEGORY_REGULAR,
    CDN_PROVIDERS,
    REGULAR_TLDS,
    DomainSpec,
    PopulationConfig,
    assign_global_zipf,
    by_category,
    by_ttl_class,
    category_map,
    generate_cdn_domains,
    generate_dyn_domains,
    generate_population,
    generate_regular_domains,
    zipf_weights,
)
from .format import TRACE_HEADER, load_trace, read_trace, trace_roundtrip, write_trace
from .ircache import (
    ProxyLogEntry,
    figure1_series,
    powerlaw_fit,
    synthesize_proxy_log,
    top_domains,
)
from .ttlclasses import (
    PAPER_CHANGED_SHARE,
    PAPER_MEAN_CHANGE_FREQUENCY,
    PAPER_MEAN_LIFETIME,
    PAPER_PHYSICAL_SHARE,
    TTL_CLASSES,
    TTLClass,
    class_by_index,
    classify_ttl,
    expected_lifetime,
)
from .workload import (
    ClientCacheFilter,
    QueryEvent,
    WorkloadConfig,
    domain_request_rates,
    generate_queries,
    generate_requests,
    measured_rates,
    split_by_nameserver,
)

__all__ = [
    "ChangeProcess", "ChangeEvent", "StableProcess", "PoissonRelocation",
    "AddressGrowth", "AddressRotation", "CompositeProcess", "random_ipv4",
    "CAUSE_RELOCATION", "CAUSE_GROWTH", "CAUSE_ROTATION",
    "PHYSICAL_CAUSES", "LOGICAL_CAUSES",
    "DomainSpec", "PopulationConfig", "generate_population",
    "generate_regular_domains", "generate_cdn_domains", "generate_dyn_domains",
    "by_category", "by_ttl_class", "category_map", "zipf_weights",
    "assign_global_zipf",
    "CATEGORY_REGULAR", "CATEGORY_CDN", "CATEGORY_DYN",
    "REGULAR_TLDS", "CDN_PROVIDERS",
    "TTLClass", "TTL_CLASSES", "classify_ttl", "class_by_index",
    "expected_lifetime",
    "PAPER_MEAN_CHANGE_FREQUENCY", "PAPER_MEAN_LIFETIME",
    "PAPER_PHYSICAL_SHARE", "PAPER_CHANGED_SHARE",
    "QueryEvent", "WorkloadConfig", "generate_requests", "generate_queries",
    "ClientCacheFilter", "split_by_nameserver", "measured_rates",
    "domain_request_rates",
    "write_trace", "read_trace", "load_trace", "trace_roundtrip",
    "TRACE_HEADER",
    "ProxyLogEntry", "synthesize_proxy_log", "figure1_series",
    "top_domains", "powerlaw_fit",
]
