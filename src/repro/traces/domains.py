"""Synthetic domain populations.

Stands in for the paper's Web domain collection (§3.1): names drawn from
the IRCache proxy traces, classified as **CDN**, **Dyn**, or **regular**
domains, with regular names spread over the major TLD groups and request
counts following the heavy-tailed distribution of Figure 1.

Every generated :class:`DomainSpec` carries the full bundle the rest of
the system needs: name, category, TTL (which fixes its Table 1 class),
popularity weight, and a deterministic :class:`ChangeProcess` calibrated
to the paper's measured change statistics.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..dnslib import Name
from .changes import (
    AddressGrowth,
    AddressRotation,
    ChangeProcess,
    PoissonRelocation,
    StableProcess,
    random_ipv4,
)
from .ttlclasses import (
    PAPER_CHANGED_SHARE,
    PAPER_MEAN_LIFETIME,
    PAPER_PHYSICAL_SHARE,
    TTLClass,
    classify_ttl,
)

CATEGORY_REGULAR = "regular"
CATEGORY_CDN = "cdn"
CATEGORY_DYN = "dyn"

#: The five major TLD groups of Figure 1 plus the long tail the figure
#: also plots.  Weights approximate the relative domain counts.
REGULAR_TLDS: Tuple[Tuple[str, float], ...] = (
    ("com", 0.50), ("net", 0.15), ("org", 0.12), ("edu", 0.08),
    ("de", 0.04), ("uk", 0.04), ("jp", 0.03),
    ("gov", 0.02), ("biz", 0.015), ("coop", 0.005),
)

#: CDN providers from §3.2: Akamai (TTL 20 s, ~10 % change frequency)
#: and Speedera (TTL 120 s, ~100 % change frequency).  Fields:
#: (name, TTL, per-period change probability, rotation period).
#: Speedera's rotation is faster than its TTL (per-query round robin),
#: which is why the paper measures ~100 % change frequency at a 60 s
#: sampling resolution despite the 120 s TTL.
CDN_PROVIDERS: Tuple[Tuple[str, float, float, float], ...] = (
    ("akamai", 20.0, 0.10, 20.0),
    ("speedera", 120.0, 1.00, 60.0),
)


@dataclasses.dataclass(frozen=True)
class DomainSpec:
    """One synthetic domain and everything known about it."""

    name: Name
    category: str                  # regular / cdn / dyn
    ttl: float
    popularity: float              # relative request weight (unnormalized)
    process: ChangeProcess
    provider: Optional[str] = None  # CDN provider tag, when applicable

    @property
    def ttl_class(self) -> TTLClass:
        """The Table 1 class this domain's TTL falls into."""
        return classify_ttl(self.ttl)

    @property
    def zone_origin(self) -> Name:
        """The registrable zone: last two labels (example.com.)."""
        labels = self.name.labels
        return Name(labels[-2:]) if len(labels) >= 2 else self.name


def zipf_weights(count: int, exponent: float = 0.91) -> List[float]:
    """Zipf-like popularity weights (exponent per web-trace folklore)."""
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]


@dataclasses.dataclass
class PopulationConfig:
    """Knobs for :func:`generate_population`, defaulting to paper scale
    shrunk to laptop size (the paper probed 3,000 names per TLD group)."""

    regular_per_tld: int = 60
    cdn_count: int = 40
    dyn_count: int = 40
    zipf_exponent: float = 0.91
    #: Regular-domain TTL mix: probability a regular domain lands in each
    #: Table 1 class (most real TTLs are 1 h - 1 d, classes 3-5).
    regular_class_mix: Tuple[float, float, float, float, float] = (
        0.05, 0.10, 0.30, 0.40, 0.15)
    seed: int = 2006


def _regular_ttl(rng: random.Random, class_index: int) -> float:
    bounds = {1: (5.0, 60.0), 2: (60.0, 300.0), 3: (300.0, 3600.0),
              4: (3600.0, 86400.0), 5: (86400.0, 7 * 86400.0)}
    low, high = bounds[class_index]
    return rng.uniform(low, high)


def _regular_process(rng: random.Random, class_index: int,
                     seed: int) -> ChangeProcess:
    """A change process calibrated to §3.2's per-class statistics.

    Most regular domains are stable; the changed share follows
    :data:`PAPER_CHANGED_SHARE`, split physical/logical by
    :data:`PAPER_PHYSICAL_SHARE`, with mean lifetimes from
    :data:`PAPER_MEAN_LIFETIME`.
    """
    initial = [random_ipv4(rng)]
    changed_share = PAPER_CHANGED_SHARE[class_index]
    if rng.random() >= changed_share:
        return StableProcess(initial)
    # The paper's mean change frequency averages over ALL domains, stable
    # ones included, so a *changed* domain's lifetime must be shorter by
    # the changed share for the population mean to come out right:
    # mean_freq = changed_share * resolution / lifetime_changed.
    lifetime = PAPER_MEAN_LIFETIME[class_index] * changed_share
    if rng.random() < PAPER_PHYSICAL_SHARE[class_index]:
        return PoissonRelocation(initial, lifetime, seed)
    if rng.random() < 0.5:
        pool = [random_ipv4(rng) for _ in range(rng.randint(2, 4))]
        return AddressRotation(pool, period=max(lifetime, 1.0),
                               change_probability=0.9, seed=seed)
    return AddressGrowth(initial, mean_interval=lifetime,
                         max_addresses=rng.randint(2, 6), seed=seed)


def generate_regular_domains(config: PopulationConfig) -> List[DomainSpec]:
    """The regular-domain slice of the §3.1 collection."""
    rng = random.Random(config.seed)
    domains: List[DomainSpec] = []
    for tld, _weight in REGULAR_TLDS:
        count = config.regular_per_tld
        weights = zipf_weights(count, config.zipf_exponent)
        for rank in range(count):
            class_index = rng.choices(
                (1, 2, 3, 4, 5), weights=config.regular_class_mix)[0]
            name = Name.from_text(f"www.site{rank:04d}.{tld}")
            ttl = _regular_ttl(rng, class_index)
            process = _regular_process(rng, class_index,
                                       seed=rng.randrange(1 << 30))
            domains.append(DomainSpec(name, CATEGORY_REGULAR, ttl,
                                      weights[rank], process))
    return domains


def generate_cdn_domains(config: PopulationConfig) -> List[DomainSpec]:
    """CDN domains: all TTLs <= 300 s (classes 1-2), rotation-dominated."""
    rng = random.Random(config.seed + 1)
    weights = zipf_weights(config.cdn_count, config.zipf_exponent)
    domains = []
    for rank in range(config.cdn_count):
        provider, ttl, change_prob, rotation_period = \
            CDN_PROVIDERS[rank % len(CDN_PROVIDERS)]
        name = Name.from_text(f"img{rank:03d}.{provider}cdn.net")
        pool = [random_ipv4(rng) for _ in range(rng.randint(4, 12))]
        process = AddressRotation(pool, period=rotation_period,
                                  change_probability=change_prob,
                                  seed=rng.randrange(1 << 30))
        domains.append(DomainSpec(name, CATEGORY_CDN, ttl, weights[rank],
                                  process, provider=provider))
    return domains


def generate_dyn_domains(config: PopulationConfig) -> List[DomainSpec]:
    """Dynamic-DNS domains: home/mobile hosts behind DHCP.

    §3.2: Dyn domains change rarely (near-zero frequency below TTL
    300 s, low frequency above), but every move is a *physical*
    relocation, and their aggressive TTLs cause "up to 25 times more
    DNS traffic than necessary" — the calibration here puts the
    TTL >= 300 s group at a ~7500 s mean lifetime so a 300 s TTL yields
    exactly that 25x redundancy factor.
    """
    rng = random.Random(config.seed + 2)
    weights = zipf_weights(config.dyn_count, config.zipf_exponent)
    domains = []
    for rank in range(config.dyn_count):
        ttl = rng.choice((60.0, 120.0, 300.0, 600.0))
        name = Name.from_text(f"host{rank:03d}.dyndns.org")
        resolution = 60.0 if ttl < 300 else 300.0
        frequency = 0.0005 if ttl < 300 else 0.04
        lifetime = resolution / frequency
        process = PoissonRelocation([random_ipv4(rng)], lifetime,
                                    seed=rng.randrange(1 << 30))
        domains.append(DomainSpec(name, CATEGORY_DYN, ttl, weights[rank],
                                  process))
    return domains


def generate_population(config: Optional[PopulationConfig] = None
                        ) -> List[DomainSpec]:
    """The full §3.1-style collection: regular + CDN + Dyn domains."""
    config = config or PopulationConfig()
    return (generate_regular_domains(config)
            + generate_cdn_domains(config)
            + generate_dyn_domains(config))


def assign_global_zipf(domains: Sequence[DomainSpec], exponent: float = 1.1,
                       seed: int = 0) -> List[DomainSpec]:
    """Reassign popularity as one global Zipf over the whole collection.

    :func:`generate_population` gives each category/TLD group its own
    Zipf ranking, which understates how concentrated real DNS traffic
    is (a handful of names dominate everything).  This helper shuffles
    all domains into a single global ranking with the given exponent —
    the evaluation benches use it so the trace-driven Figure 5 curves
    see realistic rate heterogeneity.
    """
    rng = random.Random(seed)
    order = list(range(len(domains)))
    rng.shuffle(order)
    weights = [0.0] * len(domains)
    for rank, index in enumerate(order, start=1):
        weights[index] = 1.0 / rank ** exponent
    return [dataclasses.replace(domain, popularity=weight)
            for domain, weight in zip(domains, weights)]


def by_category(domains: Sequence[DomainSpec]) -> Dict[str, List[DomainSpec]]:
    """Group domains by category label."""
    grouped: Dict[str, List[DomainSpec]] = {}
    for domain in domains:
        grouped.setdefault(domain.category, []).append(domain)
    return grouped


def by_ttl_class(domains: Sequence[DomainSpec]) -> Dict[int, List[DomainSpec]]:
    """Group domains by their Table 1 class index."""
    grouped: Dict[int, List[DomainSpec]] = {}
    for domain in domains:
        grouped.setdefault(domain.ttl_class.index, []).append(domain)
    return grouped


def category_map(domains: Sequence[DomainSpec]) -> Dict[Name, str]:
    """name → category, the input :func:`repro.core.category_max_lease`
    wants (keyed by zone origin so subdomains inherit)."""
    mapping: Dict[Name, str] = {}
    for domain in domains:
        mapping[domain.name] = domain.category
        mapping.setdefault(domain.zone_origin, domain.category)
    return mapping
