"""Table 1: the five TTL classes of the measurement study.

Domains are probed at a sampling resolution matched to their TTL — there
is no point resolving a record more often than its TTL lets it change —
for a duration long enough to observe changes at that timescale.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

DAY = 86400.0
MONTH = 30 * DAY


@dataclasses.dataclass(frozen=True)
class TTLClass:
    """One row of Table 1."""

    index: int                     # 1-based class number
    ttl_low: float                 # inclusive, seconds
    ttl_high: Optional[float]      # exclusive, seconds; None = unbounded
    resolution: float              # probe sampling resolution, seconds
    duration: float                # measurement duration, seconds

    def contains(self, ttl: float) -> bool:
        """True when ``ttl`` falls inside this class's range."""
        if ttl < self.ttl_low:
            return False
        return self.ttl_high is None or ttl < self.ttl_high

    @property
    def probe_count(self) -> int:
        """Number of probes one measurement run sends per domain."""
        return int(self.duration / self.resolution)

    def describe(self) -> str:
        """Human-readable one-line rendering."""
        high = "∞" if self.ttl_high is None else f"{self.ttl_high:g}"
        return (f"class {self.index}: TTL [{self.ttl_low:g}, {high}) s, "
                f"resolution {self.resolution:g} s, "
                f"duration {self.duration / DAY:g} d")


#: The exact parameters of Table 1.
TTL_CLASSES: Tuple[TTLClass, ...] = (
    TTLClass(1, 0.0, 60.0, 20.0, 1 * DAY),
    TTLClass(2, 60.0, 300.0, 60.0, 3 * DAY),
    TTLClass(3, 300.0, 3600.0, 300.0, 7 * DAY),
    TTLClass(4, 3600.0, 86400.0, 3600.0, 7 * DAY),
    TTLClass(5, 86400.0, None, 86400.0, MONTH),
)


def classify_ttl(ttl: float) -> TTLClass:
    """The Table 1 class a TTL falls into."""
    if ttl < 0:
        raise ValueError(f"negative TTL: {ttl}")
    for ttl_class in TTL_CLASSES:
        if ttl_class.contains(ttl):
            return ttl_class
    raise AssertionError("unreachable: classes cover [0, inf)")


def class_by_index(index: int) -> TTLClass:
    """The :class:`TTLClass` with 1-based index ``index``."""
    if not 1 <= index <= len(TTL_CLASSES):
        raise ValueError(f"class index out of range: {index}")
    return TTL_CLASSES[index - 1]


#: Paper §3.2's reported mean change frequencies per class (fractions,
#: not percent).  The synthetic change processes are calibrated so the
#: measurement pipeline reproduces these.
PAPER_MEAN_CHANGE_FREQUENCY = {1: 0.10, 2: 0.08, 3: 0.03, 4: 0.001, 5: 0.002}

#: Paper §3.2's implied mean DN2IP mapping lifetimes, seconds.
PAPER_MEAN_LIFETIME = {
    1: 200.0,
    2: 750.0,
    3: 2.5 * 3600.0,
    4: 42 * DAY,
    5: 500 * DAY,
}

#: Fraction of *changed* domains whose changes are physical (Figure 2f's
#: qualitative shape: classes 1-2 almost all logical, class 3 ≈40 %
#: physical, classes 4-5 majority physical).
PAPER_PHYSICAL_SHARE = {1: 0.05, 2: 0.10, 3: 0.40, 4: 0.70, 5: 0.80}

#: Fraction of domains in each class that change at all during the
#: measurement (paper: >70 % in class 1, ≈20 % in class 2, ≈5 % in 3-5).
PAPER_CHANGED_SHARE = {1: 0.70, 2: 0.20, 3: 0.05, 4: 0.05, 5: 0.05}


def expected_lifetime(change_frequency: float, resolution: float) -> float:
    """Mean mapping lifetime implied by a change frequency.

    A change frequency f (changes per probe) at sampling resolution r
    means one change every r/f seconds on average — how §3.2 derives
    lifetimes like "a change happens every 10 days".
    """
    if change_frequency <= 0:
        return math.inf
    return resolution / change_frequency
