"""DN2IP mapping-change processes.

The paper identifies three causes of mapping changes (§3.2):

1. **relocation** — the domain moves to a different address (physical:
   the old mapping is dead, service is lost for stale caches);
2. **growth** — addresses are added to the set (logical);
3. **rotation** — the answer rotates around a fixed address pool, the
   CDN load-balancing pattern (logical).

Each process is a deterministic function of (seed, time): given a
timeline it yields the address set at any instant, so both the live
simulation (zones updated through the event loop) and the measurement
prober (sampling a ground-truth oracle) consume the same object.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import List, Optional, Sequence, Tuple

#: Change cause labels, matching Figure 2(f)'s categories.
CAUSE_RELOCATION = "relocation"
CAUSE_GROWTH = "growth"
CAUSE_ROTATION = "rotation"

PHYSICAL_CAUSES = frozenset({CAUSE_RELOCATION})
LOGICAL_CAUSES = frozenset({CAUSE_GROWTH, CAUSE_ROTATION})


def random_ipv4(rng: random.Random) -> str:
    """A routable-looking IPv4 address (avoids 0/255 edge octets)."""
    return ".".join(str(rng.randint(1, 254)) for _ in range(4))


@dataclasses.dataclass(frozen=True)
class ChangeEvent:
    """One mapping change on the timeline."""

    time: float
    cause: str
    addresses: Tuple[str, ...]

    @property
    def is_physical(self) -> bool:
        """True for physical (service-breaking) changes."""
        return self.cause in PHYSICAL_CAUSES


class ChangeProcess:
    """Interface: the address set of one domain as a function of time."""

    def initial_addresses(self) -> Tuple[str, ...]:
        """The address set in force at time zero."""
        raise NotImplementedError

    def events_between(self, start: float, end: float) -> List[ChangeEvent]:
        """All change events in (start, end], in order."""
        raise NotImplementedError

    def addresses_at(self, time: float) -> Tuple[str, ...]:
        """The mapping in force at ``time`` (>= 0)."""
        current = self.initial_addresses()
        for event in self.events_between(0.0, time):
            current = event.addresses
        return current


class StableProcess(ChangeProcess):
    """A domain that never changes — ~95 % of classes 3-5."""

    def __init__(self, addresses: Sequence[str]):
        self._addresses = tuple(addresses)
        if not self._addresses:
            raise ValueError("need at least one address")

    def initial_addresses(self) -> Tuple[str, ...]:
        """The address set in force at time zero."""
        return self._addresses

    def events_between(self, start: float, end: float) -> List[ChangeEvent]:
        """All change events in (start, end], in time order."""
        return []


class PoissonRelocation(ChangeProcess):
    """Physical changes: relocations at exponential intervals.

    ``mean_lifetime`` is the expected time between relocations — the
    paper's "average life time of a DN2IP mapping".  Event times are
    generated lazily but deterministically from the seed, so repeated
    queries over overlapping windows agree.
    """

    def __init__(self, initial: Sequence[str], mean_lifetime: float, seed: int):
        if mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be positive")
        self._initial = tuple(initial)
        self.mean_lifetime = mean_lifetime
        self.seed = seed
        self._events: List[ChangeEvent] = []
        self._horizon = 0.0
        self._rng = random.Random(seed)
        self._clock = 0.0

    def initial_addresses(self) -> Tuple[str, ...]:
        """The address set in force at time zero."""
        return self._initial

    def _extend(self, until: float) -> None:
        while self._clock <= until:
            gap = self._rng.expovariate(1.0 / self.mean_lifetime)
            self._clock += gap
            new_address = random_ipv4(self._rng)
            self._events.append(ChangeEvent(self._clock, CAUSE_RELOCATION,
                                            (new_address,)))
        self._horizon = max(self._horizon, until)

    def events_between(self, start: float, end: float) -> List[ChangeEvent]:
        """All change events in (start, end], in time order."""
        if end > self._horizon:
            self._extend(end)
        return [e for e in self._events if start < e.time <= end]


class AddressGrowth(ChangeProcess):
    """Logical changes: the address pool grows at exponential intervals
    up to a ceiling (a site scaling out its frontends)."""

    def __init__(self, initial: Sequence[str], mean_interval: float,
                 max_addresses: int, seed: int):
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        if max_addresses < len(tuple(initial)):
            raise ValueError("max_addresses below the initial pool size")
        self._initial = tuple(initial)
        self.mean_interval = mean_interval
        self.max_addresses = max_addresses
        self._rng = random.Random(seed)
        self._events: List[ChangeEvent] = []
        self._clock = 0.0
        self._horizon = 0.0
        self._pool = list(self._initial)

    def initial_addresses(self) -> Tuple[str, ...]:
        """The address set in force at time zero."""
        return self._initial

    def _extend(self, until: float) -> None:
        while self._clock <= until and len(self._pool) < self.max_addresses:
            self._clock += self._rng.expovariate(1.0 / self.mean_interval)
            if self._clock > until and len(self._pool) >= self.max_addresses:
                break
            self._pool.append(random_ipv4(self._rng))
            self._events.append(ChangeEvent(self._clock, CAUSE_GROWTH,
                                            tuple(self._pool)))
        self._horizon = max(self._horizon, until)

    def events_between(self, start: float, end: float) -> List[ChangeEvent]:
        """All change events in (start, end], in time order."""
        if end > self._horizon:
            self._extend(end)
        return [e for e in self._events if start < e.time <= end]


class AddressRotation(ChangeProcess):
    """Logical changes: CDN-style rotation over a fixed pool.

    Every ``period`` seconds the answer becomes a different address from
    the pool.  ``change_probability`` models Akamai-like behaviour where
    consecutive answers often repeat (the paper measured ≈10 % change
    frequency for Akamai at 20 s TTL vs ≈100 % for Speedera at 120 s):
    each period the answer actually changes with this probability.
    """

    def __init__(self, pool: Sequence[str], period: float,
                 change_probability: float, seed: int):
        pool = tuple(pool)
        if len(pool) < 2:
            raise ValueError("rotation needs a pool of at least 2 addresses")
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < change_probability <= 1.0:
            raise ValueError("change_probability in (0, 1]")
        self.pool = pool
        self.period = period
        self.change_probability = change_probability
        self.seed = seed

    def initial_addresses(self) -> Tuple[str, ...]:
        """The address set in force at time zero."""
        return (self.pool[0],)

    def _index_at_step(self, step: int) -> int:
        """Pool index after ``step`` periods — computed by replay of the
        deterministic per-step coin flips."""
        rng = random.Random(self.seed)
        index = 0
        for _ in range(step):
            if rng.random() < self.change_probability:
                index = (index + 1 + rng.randrange(len(self.pool) - 1)) % len(self.pool)
            else:
                rng.random()  # burn to keep the stream aligned
        return index

    def events_between(self, start: float, end: float) -> List[ChangeEvent]:
        """All change events in (start, end], in time order."""
        first_step = max(1, math.floor(start / self.period) + 1)
        last_step = math.floor(end / self.period)
        if last_step < first_step:
            return []
        events = []
        rng = random.Random(self.seed)
        index = 0
        for step in range(1, last_step + 1):
            changed = False
            if rng.random() < self.change_probability:
                index = (index + 1 + rng.randrange(len(self.pool) - 1)) % len(self.pool)
                changed = True
            else:
                rng.random()
            time = step * self.period
            if changed and start < time <= end:
                events.append(ChangeEvent(time, CAUSE_ROTATION,
                                          (self.pool[index],)))
        return events

    def addresses_at(self, time: float) -> Tuple[str, ...]:
        """The address set in force at ``time``."""
        step = math.floor(time / self.period)
        return (self.pool[self._index_at_step(step)],)


class CompositeProcess(ChangeProcess):
    """Merge several processes — e.g. rare relocation atop rotation.

    The address set at any time is the last event's addresses; initial
    addresses come from the first component.
    """

    def __init__(self, components: Sequence[ChangeProcess]):
        if not components:
            raise ValueError("need at least one component")
        self.components = list(components)

    def initial_addresses(self) -> Tuple[str, ...]:
        """The address set in force at time zero."""
        return self.components[0].initial_addresses()

    def events_between(self, start: float, end: float) -> List[ChangeEvent]:
        """All change events in (start, end], in time order."""
        events: List[ChangeEvent] = []
        for component in self.components:
            events.extend(component.events_between(start, end))
        events.sort(key=lambda e: e.time)
        return events
