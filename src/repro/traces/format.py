"""Trace file format: one query per line, whitespace-separated.

``time client nameserver name`` — the minimal schema every consumer here
needs, round-trippable and diffable.  Mirrors the role of the paper's
academic DNS traces and IRCache proxy logs.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, TextIO, Union

from ..dnslib import Name
from .workload import QueryEvent

TRACE_HEADER = "# repro DNS query trace v1: time client nameserver name"


def write_trace(events: Iterable[QueryEvent],
                target: Union[str, TextIO]) -> int:
    """Serialize events; returns the number written."""
    own = isinstance(target, str)
    stream: TextIO = open(target, "w") if own else target  # type: ignore[arg-type]
    try:
        stream.write(TRACE_HEADER + "\n")
        count = 0
        for event in events:
            stream.write(f"{event.time!r} {event.client} {event.nameserver} "
                         f"{event.name.to_text()}\n")
            count += 1
        return count
    finally:
        if own:
            stream.close()


def read_trace(source: Union[str, TextIO]) -> Iterator[QueryEvent]:
    """Parse a trace file lazily."""
    own = isinstance(source, str)
    stream: TextIO = open(source) if own else source  # type: ignore[arg-type]
    try:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 4:
                raise ValueError(
                    f"trace line {lineno}: want 4 fields, got {len(fields)}")
            time_text, client, nameserver, name = fields
            yield QueryEvent(float(time_text), int(client),
                             Name.from_text(name), int(nameserver))
    finally:
        if own:
            stream.close()


def load_trace(source: Union[str, TextIO]) -> List[QueryEvent]:
    """Read a whole trace file into a list."""
    return list(read_trace(source))


def trace_roundtrip(events: List[QueryEvent]) -> List[QueryEvent]:
    """Write + read through a buffer (tests use this as the invariant)."""
    buffer = io.StringIO()
    write_trace(events, buffer)
    buffer.seek(0)
    return load_trace(buffer)
