"""Query workload generation.

The trace-driven evaluation (§5.1) replays one week of queries from
about two thousand clients against three local nameservers.  We generate
the equivalent synthetically:

* per-domain client *request* streams are Poisson — the paper validates
  this very assumption on its traces (Figure 4), citing Paxson & Floyd's
  finding that session-level arrivals are Poisson;
* domain popularity is Zipf (the weights on :class:`DomainSpec`);
* each client passes its requests through a browser-style cache
  (15-minute default), so the *query* stream a nameserver sees is the
  request stream thinned by per-client caching — exactly the client
  caching effect §5.1 models.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..dnslib import Name
from .domains import DomainSpec


@dataclasses.dataclass(frozen=True, order=True)
class QueryEvent:
    """One DNS query as a local nameserver would log it."""

    time: float
    client: int
    name: Name = dataclasses.field(compare=False)
    nameserver: int = dataclasses.field(compare=False, default=0)


@dataclasses.dataclass
class WorkloadConfig:
    """Workload shape, defaulting to a shrunken version of the paper's
    setting (three nameservers, ~2000 clients, one week)."""

    duration: float = 86400.0          # one day by default; a week in benches
    clients: int = 100
    nameservers: int = 3
    #: Mean total request rate across all domains, requests/second.
    total_request_rate: float = 2.0
    #: Per-client DNS cache duration, seconds (Mozilla default 900).
    client_cache_seconds: float = 900.0
    #: Session burstiness: each Poisson session arrival drags along a
    #: geometric number of extra requests (mean ``burst_mean - 1``) from
    #: the same client within ``burst_spread`` seconds — the page-load
    #: pattern that makes raw inter-arrival CV exceed 1 until client
    #: caching smooths it (Figure 4).  ``burst_mean=1`` disables bursts.
    burst_mean: float = 3.0
    burst_spread: float = 60.0
    seed: int = 7


def domain_request_rates(domains: Sequence[DomainSpec],
                         total_rate: float) -> List[Tuple[DomainSpec, float]]:
    """Split an aggregate request rate across domains by popularity."""
    total_weight = sum(domain.popularity for domain in domains)
    if total_weight <= 0:
        raise ValueError("domain popularities sum to zero")
    return [(domain, total_rate * domain.popularity / total_weight)
            for domain in domains]


def generate_requests(domains: Sequence[DomainSpec],
                      config: WorkloadConfig) -> Iterator[QueryEvent]:
    """The raw client *request* stream (before client caching), in time
    order, assigned to clients uniformly and to each client's home
    nameserver by client id."""
    rng = random.Random(config.seed)
    # Session arrivals are Poisson per domain; the configured total rate
    # counts *all* requests, so session rates are scaled down by the
    # mean burst size.
    burst_mean = max(1.0, config.burst_mean)
    rates = domain_request_rates(domains, config.total_request_rate)
    session_rates = [(domain, rate / burst_mean) for domain, rate in rates]
    # One lazy Poisson stream per domain, merged by heap.  Entry kinds:
    # 0 = session arrival (reschedules itself), 1 = burst follow-up.
    heap: List[Tuple[float, int, int, int]] = []
    streams: List[random.Random] = []
    for index, (domain, rate) in enumerate(session_rates):
        stream = random.Random(rng.randrange(1 << 30))
        streams.append(stream)
        if rate <= 0:
            continue
        first = stream.expovariate(rate)
        if first <= config.duration:
            heapq.heappush(heap, (first, index, 0, 0))
    while heap:
        time, index, kind, client = heapq.heappop(heap)
        domain, rate = session_rates[index]
        stream = streams[index]
        if kind == 0:
            client = stream.randrange(config.clients)
            # Geometric burst: the session brings extra requests from
            # the same client shortly afterwards.
            if burst_mean > 1.0:
                p_more = 1.0 - 1.0 / burst_mean
                while stream.random() < p_more:
                    extra_time = time + stream.uniform(0.0, config.burst_spread)
                    if extra_time <= config.duration:
                        heapq.heappush(heap, (extra_time, index, 1, client))
            next_time = time + stream.expovariate(rate)
            if next_time <= config.duration:
                heapq.heappush(heap, (next_time, index, 0, 0))
        nameserver = client % config.nameservers
        yield QueryEvent(time, client, domain.name, nameserver)


class ClientCacheFilter:
    """Thin a request stream by per-(client, name) caching.

    A request is forwarded (becomes a nameserver query) only when the
    client's cached copy is older than ``cache_seconds``.  With
    ``cache_seconds=0`` every request goes through.
    """

    def __init__(self, cache_seconds: float):
        if cache_seconds < 0:
            raise ValueError("cache_seconds must be non-negative")
        self.cache_seconds = cache_seconds
        self._last_fetch: Dict[Tuple[int, Name], float] = {}
        self.requests_seen = 0
        self.queries_passed = 0

    def offer(self, event: QueryEvent) -> bool:
        """True when the request escalates to a nameserver query."""
        self.requests_seen += 1
        if self.cache_seconds == 0:
            self.queries_passed += 1
            return True
        key = (event.client, event.name)
        last = self._last_fetch.get(key)
        if last is not None and event.time - last < self.cache_seconds:
            return False
        self._last_fetch[key] = event.time
        self.queries_passed += 1
        return True

    def filter(self, events: Iterable[QueryEvent]) -> Iterator[QueryEvent]:
        """Yield only the requests that pass the cache."""
        for event in events:
            if self.offer(event):
                yield event

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests absorbed by the client cache."""
        if self.requests_seen == 0:
            return 0.0
        return 1.0 - self.queries_passed / self.requests_seen


def generate_queries(domains: Sequence[DomainSpec],
                     config: WorkloadConfig) -> Iterator[QueryEvent]:
    """Requests thinned by the client cache: the nameserver-visible trace."""
    cache = ClientCacheFilter(config.client_cache_seconds)
    return cache.filter(generate_requests(domains, config))


def split_by_nameserver(events: Iterable[QueryEvent],
                        nameservers: int) -> List[List[QueryEvent]]:
    """Partition a query stream into per-nameserver traces (NS I/II/III)."""
    traces: List[List[QueryEvent]] = [[] for _ in range(nameservers)]
    for event in events:
        traces[event.nameserver % nameservers].append(event)
    return traces


def measured_rates(events: Iterable[QueryEvent], duration: float,
                   by: str = "name") -> Dict:
    """Empirical query rates from a trace.

    ``by="name"`` → rate per domain; ``by="name-nameserver"`` → rate per
    (domain, nameserver) pair — the λ_ij input of the lease optimizers,
    the way §5.1 computes them "by analyzing the first-day traces".
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    counts: Dict = {}
    for event in events:
        if by == "name":
            key = event.name
        elif by == "name-nameserver":
            key = (event.name, event.nameserver)
        else:
            raise ValueError(f"unknown grouping: {by!r}")
        counts[key] = counts.get(key, 0) + 1
    return {key: count / duration for key, count in counts.items()}
