"""IRCache-style proxy request logs — the input behind Figure 1.

The paper collected Web domain names from IRCache proxy traces and
plotted, per TLD group, how many regular domain names received a given
number of requests (Figure 1, log-log).  We synthesize the equivalent
log: a request count per domain drawn from the Zipf popularity weights,
then aggregate counts into the figure's (requests, #domains) series.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Sequence, Tuple

from ..dnslib import Name
from .domains import CATEGORY_REGULAR, DomainSpec


@dataclasses.dataclass(frozen=True)
class ProxyLogEntry:
    """Aggregated proxy log line: a domain and its request count."""

    name: Name
    tld: str
    requests: int


def synthesize_proxy_log(domains: Sequence[DomainSpec],
                         total_requests: int = 1_000_000,
                         seed: int = 11) -> List[ProxyLogEntry]:
    """Multinomial request counts over ``domains`` by popularity."""
    rng = random.Random(seed)
    weights = [domain.popularity for domain in domains]
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("zero total popularity")
    entries = []
    remaining = total_requests
    # Draw a multinomial via sequential binomials for determinism without
    # numpy dependency in the hot path.
    acc_weight = total_weight
    for domain, weight in zip(domains, weights):
        if remaining <= 0 or acc_weight <= 0:
            count = 0
        else:
            p = min(1.0, weight / acc_weight)
            count = _binomial(rng, remaining, p)
        remaining -= count
        acc_weight -= weight
        entries.append(ProxyLogEntry(domain.name, domain.name.tld(), count))
    return entries


def _binomial(rng: random.Random, n: int, p: float) -> int:
    """Binomial sample; normal approximation for large n for speed."""
    if p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    if n > 1000:
        mean = n * p
        std = math.sqrt(n * p * (1.0 - p))
        return max(0, min(n, round(rng.gauss(mean, std))))
    return sum(1 for _ in range(n) if rng.random() < p)


def figure1_series(entries: Sequence[ProxyLogEntry],
                   bins_per_decade: int = 5
                   ) -> Dict[str, List[Tuple[float, int]]]:
    """Figure 1's per-TLD series: (#requests bin, #domain names).

    Counts are bucketed geometrically (log-log plot); each series maps a
    representative request count to the number of domains in the bucket.
    """
    series: Dict[str, Dict[int, int]] = {}
    for entry in entries:
        if entry.requests <= 0:
            continue
        bucket = int(math.floor(math.log10(entry.requests) * bins_per_decade))
        series.setdefault(entry.tld, {}).setdefault(bucket, 0)
        series[entry.tld][bucket] += 1
    result: Dict[str, List[Tuple[float, int]]] = {}
    for tld, buckets in series.items():
        points = []
        for bucket in sorted(buckets):
            representative = 10 ** ((bucket + 0.5) / bins_per_decade)
            points.append((representative, buckets[bucket]))
        result[tld] = points
    return result


def top_domains(entries: Sequence[ProxyLogEntry], count: int
                ) -> List[ProxyLogEntry]:
    """The most-requested domains — §5.2 builds its 40 testbed zones from
    the 50 most popular IRCache domains."""
    return sorted(entries, key=lambda e: e.requests, reverse=True)[:count]


def powerlaw_fit(points: Sequence[Tuple[float, int]]) -> Tuple[float, float]:
    """Least-squares slope/intercept in log-log space.

    Figure 1's qualitative claim is a heavy-tailed (roughly power-law)
    relation between request count and domain count; the bench asserts
    the fitted slope is negative and steep.
    """
    xs = [math.log10(x) for x, y in points if x > 0 and y > 0]
    ys = [math.log10(y) for x, y in points if x > 0 and y > 0]
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx if sxx else 0.0
    return slope, mean_y - slope * mean_x
