"""The live transport backend: real loopback sockets behind ``Host``.

:class:`AioNetwork` implements the :class:`~repro.net.network.Network`
surface — ``bind``/``send`` datagrams, ``bind_stream``/``send_stream``
reliable messages, the same :class:`~repro.net.network.NetworkStats`,
trace and capture hooks — on top of real OS sockets driven by an
:mod:`asyncio` event loop, so every component written against
:class:`~repro.net.host.Host`/:class:`~repro.net.host.Socket` (servers,
resolvers, the DNScup middleware, the push service) runs over the real
network without modification.

Address model: components keep their *logical* endpoints — the
``("192.168.1.10", 53)`` addresses of the Figure 7 topology — and the
network maps each bound logical endpoint to a real socket on
``127.0.0.1`` with an OS-assigned ephemeral port (bind port 0, read the
port back with ``getsockname``; see :func:`ephemeral_port`).  Received
traffic is translated back to logical endpoints before dispatch, so
:meth:`Socket.request`'s (source endpoint, message id) response
matching works identically on both backends, and live tests can never
collide on ports under parallel CI runs.

Transport shapes (after mercury-dsnc's ``dns/server/udp_server.py`` and
``request/connections/connection_pool.py``):

* **UDP** — one non-blocking datagram socket per bound endpoint,
  serviced by ``loop.add_reader``; sends go straight to ``sendto``
  (loopback never blocks in practice; a full buffer drops the datagram,
  which is exactly UDP semantics and is counted as a loss);
* **TCP** — one :func:`asyncio.start_server` acceptor per bound stream
  endpoint reading length-prefixed frames, plus a client-side
  :class:`StreamConnectionPool` that reuses idle connections per
  destination instead of reconnecting for every message.

Handler exceptions are captured and re-raised by the
:class:`~repro.net.clock.LiveClock` drain instead of disappearing into
asyncio's logger.
"""

from __future__ import annotations

import asyncio
import functools
import socket
from typing import Callable, Dict, List, Optional, Set, Tuple

from .clock import LiveClock
from .network import (
    DatagramHandler,
    Endpoint,
    NetworkError,
    NetworkStats,
    _ep,
)
from ..dnslib import MAX_UDP_PAYLOAD

#: The loopback address every real socket binds to.
LOOPBACK = "127.0.0.1"

#: recvfrom buffer: largest datagram we will ever see (EDNS0 ceiling).
_RECV_SIZE = 65535

#: Stream frame layout: 1-byte source-endpoint length, the source
#: endpoint as ``addr:port`` UTF-8, 4-byte payload length, payload.
_SRC_LEN_BYTES = 1
_PAYLOAD_LEN_BYTES = 4


def ephemeral_port(kind: str = "udp", host: str = LOOPBACK) -> int:
    """An OS-assigned free port: bind port 0, read the port back.

    Live tests that need a concrete port number use this instead of
    hard-coding one, so parallel CI runs never collide.  The socket is
    closed before returning; for collision-*proof* allocation prefer
    binding port 0 directly and keeping the socket, which is what
    :class:`AioNetwork` does for every real socket it opens.
    """
    sock_type = socket.SOCK_DGRAM if kind == "udp" else socket.SOCK_STREAM
    probe = socket.socket(socket.AF_INET, sock_type)
    try:
        probe.bind((host, 0))
        return int(probe.getsockname()[1])
    finally:
        probe.close()


_loopback_memo: Optional[bool] = None


def loopback_available() -> bool:
    """True when this OS allows loopback UDP plus asyncio readers.

    The live test suite and the CI ``live-transport`` job probe this
    once and skip gracefully on platforms where loopback sockets are
    restricted (sandboxes, some containers) or where the default event
    loop cannot watch datagram sockets (Windows proactor).
    """
    global _loopback_memo
    if _loopback_memo is not None:
        return _loopback_memo
    _loopback_memo = _probe_loopback()
    return _loopback_memo


def _probe_loopback() -> bool:
    a = b = None
    try:
        a = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        a.bind((LOOPBACK, 0))
        b = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        b.bind((LOOPBACK, 0))
        b.sendto(b"ping", a.getsockname())
        a.settimeout(2.0)
        if a.recvfrom(16)[0] != b"ping":
            return False
    except OSError:
        return False
    finally:
        for sock in (a, b):
            if sock is not None:
                sock.close()
    loop = asyncio.new_event_loop()
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        probe.bind((LOOPBACK, 0))
        try:
            loop.add_reader(probe.fileno(), lambda: None)
            loop.remove_reader(probe.fileno())
        except NotImplementedError:
            return False
    except OSError:
        return False
    finally:
        probe.close()
        loop.close()
    return True


def _encode_frame(src: Endpoint, payload: bytes) -> bytes:
    """One length-prefixed stream frame carrying the logical source."""
    src_raw = _ep(src).encode("utf-8")
    if len(src_raw) > 0xFF:
        raise NetworkError(f"source endpoint too long to frame: {src}")
    return (len(src_raw).to_bytes(_SRC_LEN_BYTES, "big") + src_raw
            + len(payload).to_bytes(_PAYLOAD_LEN_BYTES, "big") + payload)


def _parse_endpoint(raw: str) -> Endpoint:
    addr, _, port = raw.rpartition(":")
    return (addr, int(port))


class _PooledConnection:
    """One open client connection owned by the pool."""

    __slots__ = ("reader", "writer")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer


class StreamConnectionPool:
    """Client-side TCP connections, pooled per destination.

    ``acquire`` hands back an idle connection to the destination when
    one exists, else opens a new one; ``release`` returns it for reuse.
    A connection that errors is discarded, never re-pooled.  The pool
    shape follows mercury-dsnc's ``connection_pool``: bounded idle list
    per destination, open-on-demand beyond it.
    """

    def __init__(self, max_idle_per_dst: int = 4):
        self.max_idle_per_dst = max_idle_per_dst
        self._idle: Dict[Tuple[str, int], List[_PooledConnection]] = {}
        self.opened = 0
        self.reused = 0

    async def acquire(self, real_dst: Tuple[str, int]) -> _PooledConnection:
        """An open connection to ``real_dst`` (pooled or fresh)."""
        idle = self._idle.get(real_dst)
        while idle:
            conn = idle.pop()
            if conn.writer.is_closing():
                continue
            self.reused += 1
            return conn
        reader, writer = await asyncio.open_connection(*real_dst)
        self.opened += 1
        return _PooledConnection(reader, writer)

    def release(self, real_dst: Tuple[str, int],
                conn: _PooledConnection) -> None:
        """Return a healthy connection for reuse (or close the surplus)."""
        idle = self._idle.setdefault(real_dst, [])
        if conn.writer.is_closing() or len(idle) >= self.max_idle_per_dst:
            conn.writer.close()
            return
        idle.append(conn)

    def discard(self, conn: _PooledConnection) -> None:
        """Close a connection that misbehaved; never re-pooled."""
        try:
            conn.writer.close()
        except OSError:  # pragma: no cover - close never raises on CPython
            pass

    async def aclose(self) -> None:
        """Close every idle connection."""
        for idle in self._idle.values():
            for conn in idle:
                conn.writer.close()
        self._idle.clear()

    @property
    def idle_count(self) -> int:
        """Idle pooled connections across all destinations."""
        return sum(len(conns) for conns in self._idle.values())


class _UdpPort:
    """One bound logical endpoint's real datagram socket."""

    __slots__ = ("network", "logical", "handler", "sock", "real")

    def __init__(self, network: "AioNetwork", logical: Endpoint,
                 handler: DatagramHandler):
        self.network = network
        self.logical = logical
        self.handler = handler
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            self.sock.setblocking(False)
            # Port 0: the OS assigns a free port, read back below — live
            # runs never collide on ports, even across parallel CI jobs.
            self.sock.bind((network.interface, 0))
            self.real: Tuple[str, int] = self.sock.getsockname()
            network.loop.add_reader(self.sock.fileno(), self._on_readable)
        except Exception:
            # The descriptor must not outlive a failed setup (DCUP012).
            self.sock.close()
            raise

    def _on_readable(self) -> None:
        while True:
            try:
                payload, real_src = self.sock.recvfrom(_RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            self.network._dispatch_udp(self, payload, real_src)

    def close(self) -> None:
        self.network.loop.remove_reader(self.sock.fileno())
        self.sock.close()


class _StreamPort:
    """One bound logical endpoint's TCP acceptor (frame server)."""

    __slots__ = ("network", "logical", "handler", "sock", "real", "server",
                 "_conn_tasks")

    def __init__(self, network: "AioNetwork", logical: Endpoint,
                 handler: DatagramHandler):
        self.network = network
        self.logical = logical
        self.handler = handler
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self.sock.setblocking(False)
            self.sock.bind((network.interface, 0))
            self.sock.listen(16)
            self.real: Tuple[str, int] = self.sock.getsockname()
        except Exception:
            # The descriptor must not outlive a failed setup (DCUP012).
            self.sock.close()
            raise
        self.server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        # The listening socket exists as of now — connects succeed and
        # queue in the backlog; accepting starts once the (async)
        # server creation runs, at the latest on the next drain.
        network._defer(self._start())

    async def _start(self) -> None:
        if self.server is None and self.sock.fileno() != -1:
            self.server = await asyncio.start_server(self._on_connection,
                                                     sock=self.sock)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
            self.network._adopt(task)
        try:
            while True:
                src_len = int.from_bytes(
                    await reader.readexactly(_SRC_LEN_BYTES), "big")
                src_raw = (await reader.readexactly(src_len)).decode("utf-8")
                size = int.from_bytes(
                    await reader.readexactly(_PAYLOAD_LEN_BYTES), "big")
                payload = await reader.readexactly(size)
                self.network._dispatch_stream(self, payload,
                                              _parse_endpoint(src_raw))
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer closed the connection: normal end of stream
        finally:
            writer.close()

    async def aclose(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None
        else:
            self.sock.close()
        for task in list(self._conn_tasks):
            task.cancel()

    def close_sync(self) -> None:
        """Best-effort teardown when the loop is not running."""
        if self.server is not None:
            self.server.close()
            self.server = None
        else:
            self.sock.close()
        for task in list(self._conn_tasks):
            task.cancel()


#: Content type served by :class:`TextExpositionPort` — the Prometheus
#: text exposition format version.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TextExpositionPort:
    """A loopback HTTP endpoint serving one text document per request.

    The live telemetry plane (:mod:`repro.net.telemetry`) exposes the
    metrics registry through this: every GET answers with whatever the
    ``render`` callable returns, as ``HTTP/1.0 200`` with the
    Prometheus text-exposition content type, one response per
    connection (``Connection: close`` — the scrape pattern).  Binds
    port 0 like every other live socket; read :attr:`address` for the
    real ``(host, port)``.  A ``render`` exception answers 500 *and*
    surfaces through the clock's error probes, so a broken exposition
    fails the run instead of hiding in scrape noise.
    """

    __slots__ = ("network", "render", "sock", "address", "server",
                 "_conn_tasks")

    def __init__(self, network: "AioNetwork", render: Callable[[], str]):
        self.network = network
        self.render = render
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self.sock.setblocking(False)
            self.sock.bind((network.interface, 0))
            self.sock.listen(16)
            self.address: Tuple[str, int] = self.sock.getsockname()
        except Exception:
            # The descriptor must not outlive a failed setup (DCUP012).
            self.sock.close()
            raise
        self.server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        network._defer(self._start())

    async def _start(self) -> None:
        if self.server is None and self.sock.fileno() != -1:
            self.server = await asyncio.start_server(self._on_connection,
                                                     sock=self.sock)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
            self.network._adopt(task)
        try:
            # Drain the request head (request line + headers); the
            # response is the same document whatever the path asked.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            try:
                body = self.render().encode("utf-8")
                status = "200 OK"
            except Exception as exc:
                self.network._errors.append(exc)
                body = f"exposition render failed: {exc}\n".encode("utf-8")
                status = "500 Internal Server Error"
            head = (f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {EXPOSITION_CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n")
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # scraper went away mid-response: its loss
        finally:
            writer.close()

    async def aclose(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None
        else:
            self.sock.close()
        for task in list(self._conn_tasks):
            task.cancel()

    def close_sync(self) -> None:
        """Best-effort teardown when the loop is not running."""
        if self.server is not None:
            self.server.close()
            self.server = None
        else:
            self.sock.close()
        for task in list(self._conn_tasks):
            task.cancel()


class AioNetwork:
    """Real loopback sockets behind the :class:`Network` surface.

    Construct with the :class:`~repro.net.clock.LiveClock` that drives
    the run; the network registers its drain hooks (deferred stream
    server startup, in-flight stream writes, captured handler errors)
    with the clock so ``clock.run()`` accounts for transport work.

    The UDP payload limit is enforced exactly as in simulation — the
    §5.2 512-byte validation holds on the real wire too.
    """

    def __init__(self, clock: LiveClock,
                 enforce_udp_limit: bool = True,
                 udp_payload_limit: Optional[int] = None,
                 interface: str = LOOPBACK):
        self.simulator = clock
        self.loop = clock.loop
        self.interface = interface
        self.enforce_udp_limit = enforce_udp_limit
        self.udp_payload_limit = (udp_payload_limit
                                  if udp_payload_limit is not None
                                  else MAX_UDP_PAYLOAD)
        self.stats = NetworkStats()
        #: Observability hooks, identical contract to Network.trace /
        #: Network.capture: zero-cost when None.
        self.trace = None
        self.capture = None
        self.pool = StreamConnectionPool()
        self._udp: Dict[Endpoint, _UdpPort] = {}
        self._streams: Dict[Endpoint, _StreamPort] = {}
        self._expositions: List[TextExpositionPort] = []
        #: real UDP (addr, port) -> logical endpoint, for source mapping.
        self._logical_by_real: Dict[Tuple[str, int], Endpoint] = {}
        self._deferred: List["asyncio.Future[None]"] = []
        self._send_tasks: Set["asyncio.Task[None]"] = set()
        self._errors: List[BaseException] = []
        sanitizer = clock.sanitizer
        if sanitizer is not None:
            # The pool's mutable state is loop-owned: flag any release/
            # discard arriving from a foreign loop or thread (DCUP011).
            sanitizer.guard("net.pool", self.pool, ("release", "discard"))
        clock.add_service(prepare=self.start, busy=self._busy,
                          error=self._pop_error)

    # -- clock service hooks ---------------------------------------------------

    def _defer(self, coro) -> None:
        """Run ``coro`` now when the loop is live, else at next drain."""
        if self.loop.is_running():
            task = self.loop.create_task(coro)
            self._send_tasks.add(task)
            task.add_done_callback(self._finish_task)
        else:
            self._deferred.append(coro)

    async def start(self) -> None:
        """Finish deferred async setup (stream acceptors); idempotent."""
        deferred, self._deferred = self._deferred, []
        for coro in deferred:
            await coro

    def _busy(self) -> bool:
        return bool(self._send_tasks) or bool(self._deferred)

    def _pop_error(self) -> Optional[BaseException]:
        return self._errors.pop(0) if self._errors else None

    def _finish_task(self, task: "asyncio.Task[None]") -> None:
        self._send_tasks.discard(task)
        if not task.cancelled():
            exc = task.exception()
            if exc is not None:
                self._errors.append(exc)

    def _run_handler(self, handler: DatagramHandler, payload: bytes,
                     src: Endpoint, dst: Endpoint) -> None:
        """Invoke a delivery handler, timing the slice when sanitized."""
        sanitizer = self.simulator.sanitizer
        if sanitizer is not None:
            sanitizer.run_slice(
                functools.partial(handler, payload, src, dst))
        else:
            handler(payload, src, dst)

    def _adopt(self, task: "asyncio.Task[None]") -> None:
        """Mark a server-side connection task long-lived for the sanitizer.

        Idle pooled connections legitimately keep their server-side
        handler task alive across drains; without adoption the
        quiescence check would report each as a leak.
        """
        sanitizer = self.simulator.sanitizer
        if sanitizer is not None:
            sanitizer.adopt(task)

    # -- topology (Network surface) --------------------------------------------

    def bind(self, endpoint: Endpoint, handler: DatagramHandler) -> None:
        """Open a real datagram socket for ``endpoint``."""
        if endpoint in self._udp:
            raise NetworkError(f"endpoint already bound: {endpoint}")
        port = _UdpPort(self, endpoint, handler)
        self._udp[endpoint] = port
        self._logical_by_real[port.real] = endpoint

    def unbind(self, endpoint: Endpoint) -> None:
        """Close the endpoint's datagram socket, if bound."""
        port = self._udp.pop(endpoint, None)
        if port is not None:
            self._logical_by_real.pop(port.real, None)
            port.close()

    def is_bound(self, endpoint: Endpoint) -> bool:
        """True when a datagram socket is open for ``endpoint``."""
        return endpoint in self._udp

    def bind_stream(self, endpoint: Endpoint,
                    handler: DatagramHandler) -> None:
        """Open a TCP acceptor for ``endpoint``'s stream messages."""
        if endpoint in self._streams:
            raise NetworkError(f"stream endpoint already bound: {endpoint}")
        self._streams[endpoint] = _StreamPort(self, endpoint, handler)

    def unbind_stream(self, endpoint: Endpoint) -> None:
        """Close the endpoint's TCP acceptor, if bound."""
        port = self._streams.pop(endpoint, None)
        if port is None:
            return
        if self.loop.is_running():
            self._defer(port.aclose())
        else:
            port.close_sync()

    def expose_text(self, render: Callable[[], str]) -> TextExpositionPort:
        """Open a loopback HTTP endpoint serving ``render()`` per GET.

        The port is owned by the network: :meth:`aclose` tears it down
        with the rest of the sockets.  Returns the port; its
        ``address`` is the OS-assigned ``(host, port)`` to scrape.
        """
        port = TextExpositionPort(self, render)
        self._expositions.append(port)
        return port

    def set_link_profile(self, src_addr: str, dst_addr: str,
                         profile: object) -> None:
        """Live links cannot be shaped; loss/latency come from the OS."""
        raise NetworkError("AioNetwork cannot shape links: loss and "
                           "latency are properties of the real network")

    # -- datagram service ------------------------------------------------------

    def send(self, payload: bytes, src: Endpoint, dst: Endpoint) -> None:
        """One real datagram from ``src``'s socket to ``dst``'s."""
        if self.enforce_udp_limit and len(payload) > self.udp_payload_limit:
            raise NetworkError(
                f"datagram of {len(payload)} bytes exceeds the "
                f"{self.udp_payload_limit}-byte UDP limit")
        port = self._udp.get(src)
        if port is None:
            raise NetworkError(f"send from unbound endpoint: {src}")
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += len(payload)
        self.stats.max_datagram = max(self.stats.max_datagram, len(payload))
        real_dst = self._real_udp_for(dst)
        if real_dst is None:
            # No socket behind the logical destination: the live analogue
            # of port-unreachable, counted the same way as in simulation.
            self.stats.datagrams_unreachable += 1
            if self.trace is not None:
                self.trace.emit("net.unreachable", src=_ep(src), dst=_ep(dst),
                                size=len(payload))
            if self.capture is not None:
                self.capture.record(self.simulator.now, "udp", src, dst,
                                    payload, "unreachable")
            return
        try:
            port.sock.sendto(payload, real_dst)
        except (BlockingIOError, OSError):
            # A full send buffer drops the datagram — that is UDP.
            self.stats.datagrams_lost += 1
            if self.trace is not None:
                self.trace.emit("net.drop", src=_ep(src), dst=_ep(dst),
                                size=len(payload))
            if self.capture is not None:
                self.capture.record(self.simulator.now, "udp", src, dst,
                                    payload, "dropped")

    def _real_udp_for(self, dst: Endpoint) -> Optional[Tuple[str, int]]:
        port = self._udp.get(dst)
        return port.real if port is not None else None

    def _dispatch_udp(self, port: _UdpPort, payload: bytes,
                      real_src: Tuple[str, int]) -> None:
        src = self._logical_by_real.get(real_src, real_src)
        dst = port.logical
        self.stats.datagrams_delivered += 1
        self.stats.bytes_delivered += len(payload)
        if self.trace is not None:
            self.trace.emit("net.deliver", src=_ep(src), dst=_ep(dst),
                            size=len(payload))
        if self.capture is not None:
            self.capture.record(self.simulator.now, "udp", src, dst,
                                payload, "delivered")
        try:
            self._run_handler(port.handler, payload, src, dst)
        except Exception as exc:  # surfaced by the clock's drain
            self._errors.append(exc)

    # -- reliable streams ------------------------------------------------------

    def send_stream(self, payload: bytes, src: Endpoint,
                    dst: Endpoint) -> None:
        """One framed message over a pooled TCP connection to ``dst``."""
        self.stats.stream_messages += 1
        self.stats.stream_bytes += len(payload)
        port = self._streams.get(dst)
        if port is None:
            if self.capture is not None:
                self.capture.record(self.simulator.now, "stream", src, dst,
                                    payload, "unreachable")
            return
        frame = _encode_frame(src, payload)
        self._defer(self._stream_write(port.real, frame, payload, src, dst))

    async def _stream_write(self, real_dst: Tuple[str, int], frame: bytes,
                            payload: bytes, src: Endpoint,
                            dst: Endpoint) -> None:
        try:
            conn = await self.pool.acquire(real_dst)
        except OSError:
            if self.capture is not None:
                self.capture.record(self.simulator.now, "stream", src, dst,
                                    payload, "unreachable")
            return
        try:
            conn.writer.write(frame)
            await conn.writer.drain()
        except (ConnectionError, OSError):
            self.pool.discard(conn)
            if self.capture is not None:
                self.capture.record(self.simulator.now, "stream", src, dst,
                                    payload, "unreachable")
            return
        self.pool.release(real_dst, conn)

    def _dispatch_stream(self, port: _StreamPort, payload: bytes,
                         src: Endpoint) -> None:
        dst = port.logical
        if self.capture is not None:
            self.capture.record(self.simulator.now, "stream", src, dst,
                                payload, "delivered")
        try:
            self._run_handler(port.handler, payload, src, dst)
        except Exception as exc:  # surfaced by the clock's drain
            self._errors.append(exc)

    # -- lifecycle -------------------------------------------------------------

    async def aclose(self) -> None:
        """Close every socket, acceptor, and pooled connection."""
        for endpoint in list(self._udp):
            self.unbind(endpoint)
        streams, self._streams = list(self._streams.values()), {}
        for port in streams:
            await port.aclose()
        expositions, self._expositions = self._expositions, []
        for exposition in expositions:
            await exposition.aclose()
        for task in list(self._send_tasks):
            task.cancel()
        self._send_tasks.clear()
        deferred, self._deferred = self._deferred, []
        for coro in deferred:
            coro.close()  # never ran; close instead of leaking a warning
        await self.pool.aclose()

    def close(self) -> None:
        """Synchronous :meth:`aclose` for teardown outside the loop."""
        if self.loop.is_closed():
            return
        self.loop.run_until_complete(self.aclose())
