"""A hierarchical timer wheel for the discrete-event simulator.

The binary-heap event queue costs O(log n) per schedule and leaves a
tombstone behind on every cancel.  Protocol timers make that expensive
at scale: every lease carries renewal and expiry timers that are
*almost always cancelled* (the renewal fires first and reschedules), so
a million-cache run churns millions of schedule/cancel pairs through
the heap and the tombstones pile up ahead of the live events.

:class:`HierarchicalTimerWheel` is the classic alternative (Varghese &
Lauck; the Kafka-purgatory formulation): timers hash into **buckets**
by expiry time — level 0 buckets span one ``resolution`` tick, level
*l* buckets span ``resolution * wheel_size**l`` — so *schedule and
cancel are O(1)*.  Expiry order comes from a small heap of *buckets*
(not timers): buckets are pushed when first occupied, and popping the
earliest bucket either **cascades** its timers down a level (coarse
buckets re-hash into finer ones as their interval approaches) or, at
level 0, drains into the *current* run, sorted by ``(time, seq)``.

Because buckets are keyed in a dict rather than a fixed ring, there is
no horizon: arbitrarily distant timers simply land in high-level
buckets.  And because a level-0 bucket is sorted before any of it
fires — and bucket intervals partition the time axis — the fire order
is **exactly** the heap backend's ``(time, seq)`` order, including
events scheduled *while* the current bucket drains (they join the
current run's heap when they fall inside its interval).
``tests/test_timerwheel.py`` holds the two backends to identical
fire/cancel sequences by property test.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .simulator import EventHandle

#: A queued timer: (absolute time, schedule sequence, handle).
_Entry = Tuple[float, int, "EventHandle"]


class HierarchicalTimerWheel:
    """O(1)-schedule/cancel timer queue with exact (time, seq) ordering.

    ``resolution`` is the level-0 bucket width in seconds and
    ``wheel_size`` the fan-out between levels: level *l* buckets span
    ``resolution * wheel_size**l`` seconds.  The defaults (1/64 s, 64)
    put sub-second network timers in level 0–1 and day-scale lease
    expiries around level 3 — a timer cascades at most once per level
    on its way down.

    ``resolution`` should be an exact binary fraction (a power of two
    times an integer, like the 1/64 default) so every bucket boundary
    ``slot * span`` is computed exactly.  Other values still order
    correctly — bucket slots use a true floor and a drained bucket's
    start is clamped to its earliest timer — but boundaries then carry
    float rounding and bucket placement may differ between runs built
    with different span arithmetic.
    """

    __slots__ = ("resolution", "wheel_size", "_spans", "_buckets",
                 "_bucket_heap", "_current", "_cur_end")

    def __init__(self, start_time: float = 0.0, resolution: float = 1.0 / 64,
                 wheel_size: int = 64, levels: int = 8):
        if resolution <= 0:
            raise ValueError(f"resolution must be positive: {resolution}")
        if wheel_size < 2:
            raise ValueError(f"wheel_size must be at least 2: {wheel_size}")
        self.resolution = resolution
        self.wheel_size = wheel_size
        #: Bucket widths per level; the top level catches everything
        #: beyond the second-to-last level's horizon (no overflow list).
        self._spans = [resolution * wheel_size ** level
                       for level in range(levels)]
        #: (level, slot) -> timers whose time falls in that bucket.
        self._buckets: Dict[Tuple[int, int], List[_Entry]] = {}
        #: Min-heap of occupied buckets as (start, -level, slot): ties on
        #: start cascade the *coarser* bucket first, so its timers are
        #: re-hashed into the finer bucket before that one drains.
        self._bucket_heap: List[Tuple[float, int, int]] = []
        #: The drained level-0 run, a (time, seq, handle) heap covering
        #: times strictly below ``_cur_end``.
        self._current: List[_Entry] = []
        self._cur_end = start_time

    # -- scheduling ----------------------------------------------------------

    def push(self, handle: "EventHandle") -> None:
        """File one timer; O(1) plus a bucket-heap push on first touch."""
        time = handle.time
        if time < self._cur_end:
            # Inside (or before) the interval currently draining: the
            # run is a heap, so late joiners still fire in time order.
            heapq.heappush(self._current, (time, handle.seq, handle))
            return
        self._insert(time, handle, self._cur_end)

    def _insert(self, time: float, handle: "EventHandle",
                frontier: float) -> None:
        """Hash one timer into the finest level whose horizon reaches it."""
        spans = self._spans
        delta = time - frontier
        level = 0
        top = len(spans) - 1
        while level < top and delta >= spans[level] * self.wheel_size:
            level += 1
        span = spans[level]
        slot = math.floor(time / span)
        key = (level, slot)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [(time, handle.seq, handle)]
            heapq.heappush(self._bucket_heap, (slot * span, -level, slot))
        else:
            bucket.append((time, handle.seq, handle))

    # -- draining ------------------------------------------------------------

    def _advance(self) -> bool:
        """Cascade/drain buckets until the current run has an entry.

        Returns False when the wheel is completely empty.
        """
        while not self._current:
            if not self._bucket_heap:
                return False
            start, neg_level, slot = heapq.heappop(self._bucket_heap)
            level = -neg_level
            entries = self._buckets.pop((level, slot), None)
            if not entries:
                continue
            live = [entry for entry in entries if not entry[2].cancelled]
            if level == 0:
                # Clamp: with a non-binary resolution, float rounding in
                # slot * span can put the computed start past a timer in
                # the bucket; never advance _cur_end beyond a live entry.
                if live:
                    start = min(start, min(entry[0] for entry in live))
                self._cur_end = start + self.resolution
                self._current = live
                heapq.heapify(self._current)
            else:
                # Cascade: re-hash each timer against this bucket's own
                # start — every child bucket then starts at or after it.
                for entry in live:
                    self._insert(entry[0], entry[2], start)
        return True

    def pop(self) -> Optional["EventHandle"]:
        """The next live timer in (time, seq) order; None when empty."""
        while True:
            while self._current:
                _time, _seq, handle = heapq.heappop(self._current)
                if not handle.cancelled:
                    return handle
            if not self._advance():
                return None

    def peek_time(self) -> Optional[float]:
        """The next live timer's absolute time, without popping it."""
        while True:
            while self._current:
                if not self._current[0][2].cancelled:
                    return self._current[0][0]
                heapq.heappop(self._current)
            if not self._advance():
                return None

    def __repr__(self) -> str:
        return (f"HierarchicalTimerWheel(buckets={len(self._buckets)}, "
                f"current={len(self._current)}, "
                f"resolution={self.resolution}, "
                f"wheel_size={self.wheel_size})")
