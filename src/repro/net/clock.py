"""Wall-clock scheduling behind the :class:`Simulator` surface.

Every component in the reproduction tells time through one object: the
thing reachable as ``host.simulator`` / ``socket.simulator``.  In
simulation that is the discrete-event :class:`~repro.net.simulator.Simulator`;
this module provides the *live* counterpart, :class:`LiveClock`, which
implements the identical scheduling surface (``now``, ``schedule``,
``schedule_at``, ``call_soon``, ``pending``, ``events_processed``,
``observer``, ``run``) on top of a real :mod:`asyncio` event loop.

Because the surface is identical, the protocol stack — servers,
resolvers, DNScup middleware, retry timers, trace bus — runs unmodified
on real wall-clock time: swap the substrate at construction and nothing
above the :class:`~repro.net.host.Host` abstraction changes.

:class:`ClockLike` documents the contract both implementations satisfy;
components that only need time and timers should annotate against it
rather than the concrete :class:`Simulator`.

Time base: ``LiveClock.now`` is ``loop.time()`` minus the clock's epoch
(captured at construction), so live traces start near zero like
simulated ones and stay monotonic — ``loop.time()`` is a monotonic
clock, never subject to NTP steps.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import (TYPE_CHECKING, Any, Awaitable, Callable, Coroutine,
                    List, Optional, Protocol, Set)

from .simulator import SimulationError

if TYPE_CHECKING:
    from ..analysis.sanitizer import Sanitizer


class ClockLike(Protocol):
    """What components may assume about ``host.simulator``.

    Satisfied by both the discrete-event
    :class:`~repro.net.simulator.Simulator` (virtual time) and
    :class:`LiveClock` (wall-clock time on an asyncio loop).
    """

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock-relative)."""
        ...

    def schedule(self, delay: float, callback: Callable[[], None],
                 daemon: bool = False) -> Any:
        """Run ``callback`` after ``delay`` seconds; returns a handle
        with ``cancel()`` and ``cancelled``."""
        ...

    def schedule_at(self, time: float, callback: Callable[[], None],
                    daemon: bool = False) -> Any:
        """Run ``callback`` at absolute clock time ``time``."""
        ...

    def call_soon(self, callback: Callable[[], None]) -> Any:
        """Run ``callback`` as soon as possible, preserving order."""
        ...


class LiveEventHandle:
    """A cancellable reference to one scheduled live timer.

    Mirrors :class:`~repro.net.simulator.EventHandle`: ``time`` is the
    absolute clock time the timer targets, ``seq`` the schedule-order
    sequence number, ``daemon`` timers never hold off quiescence.
    """

    __slots__ = ("time", "seq", "daemon", "_callback", "_cancelled",
                 "_fired", "_clock", "_timer")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 clock: "LiveClock", daemon: bool = False):
        self.time = time
        self.seq = seq
        self.daemon = daemon
        self._callback = callback
        self._cancelled = False
        self._fired = False
        self._clock = clock
        self._timer: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        """Prevent the timer from firing; cancelling twice is harmless."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._timer is not None:
            self._timer.cancel()
        self._clock._live_pending -= 1
        if not self.daemon:
            self._clock._nondaemon_pending -= 1

    @property
    def cancelled(self) -> bool:
        """True once cancelled."""
        return self._cancelled

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._clock._live_pending -= 1
        if not self.daemon:
            self._clock._nondaemon_pending -= 1
        self._clock.events_processed += 1
        sanitizer = self._clock.sanitizer
        if sanitizer is not None:
            sanitizer.run_slice(self._callback)
        else:
            self._callback()
        if self._clock.observer is not None:
            self._clock.observer(self._clock.now)


class LiveRepeatingHandle:
    """A cancellable periodic tick built on :meth:`LiveClock.schedule`.

    Each firing runs the callback and re-arms the next tick, so the
    cadence is *fire-to-fire* (interval measured from the end of one
    callback to the start of the next — a slow callback delays the
    train rather than stacking ticks).  ``fired`` counts completed
    ticks; ``cancel()`` stops the train permanently.
    """

    __slots__ = ("interval", "daemon", "fired", "_clock", "_callback",
                 "_cancelled", "_inner")

    def __init__(self, clock: "LiveClock", interval: float,
                 callback: Callable[[], None], daemon: bool):
        self.interval = interval
        self.daemon = daemon
        self.fired = 0
        self._clock = clock
        self._callback = callback
        self._cancelled = False
        self._inner: Optional[LiveEventHandle] = None

    def cancel(self) -> None:
        """Stop the tick train; cancelling twice is harmless."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._inner is not None:
            self._inner.cancel()

    @property
    def cancelled(self) -> bool:
        """True once cancelled."""
        return self._cancelled

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self._callback()
        if not self._cancelled:
            self._inner = self._clock.schedule(self.interval, self._fire,
                                               daemon=self.daemon)


class LiveClock:
    """Wall-clock timers on an asyncio loop, behind the Simulator surface.

    The clock does not own traffic — transports (e.g.
    :class:`~repro.net.aio.AioNetwork`) register *service hooks* so that
    :meth:`wait_quiescent` can account for work that is not a timer:

    * ``prepare`` — awaited once at the start of every drain (finish
      deferred async setup such as stream-server creation);
    * ``busy``   — a zero-arg probe; quiescence requires every probe
      to report False (e.g. in-flight stream writes);
    * ``error``  — a zero-arg probe returning a pending exception or
      None; the first exception found aborts the drain.  Transports use
      this to surface handler errors that asyncio would otherwise only
      log.

    ``sanitize=True`` arms a
    :class:`~repro.analysis.sanitizer.Sanitizer` on the loop: timer
    callbacks are timed for blocking slices, never-awaited coroutines
    are captured, and every drain checks for leaked tasks.  The
    sanitizer is reachable as :attr:`sanitizer` (None when off — the
    zero-cost-when-off discipline).
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None,
                 sanitize: bool = False,
                 block_threshold: Optional[float] = None):
        self._loop = loop if loop is not None else asyncio.new_event_loop()
        self._epoch = self._loop.time()
        self._sequence = itertools.count()
        self.events_processed = 0
        self._live_pending = 0
        self._nondaemon_pending = 0
        #: Observability hook, same contract as Simulator.observer.
        self.observer: Optional[Callable[[float], None]] = None
        self._prepare_hooks: List[Callable[[], Awaitable[None]]] = []
        self._busy_probes: List[Callable[[], bool]] = []
        self._error_probes: List[Callable[[], Optional[BaseException]]] = []
        self._spawned: Set["asyncio.Task[None]"] = set()
        self._spawn_errors: List[BaseException] = []
        #: The armed runtime sanitizer, or None (the default).
        self.sanitizer: Optional["Sanitizer"] = None
        if sanitize:
            from ..analysis.sanitizer import Sanitizer
            if block_threshold is not None:
                self.sanitizer = Sanitizer(self._loop,
                                           block_threshold=block_threshold)
            else:
                self.sanitizer = Sanitizer(self._loop)
            self.sanitizer.start()

    # -- the Simulator surface -------------------------------------------------

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The asyncio event loop driving this clock."""
        return self._loop

    @property
    def now(self) -> float:
        """Seconds since this clock's epoch (monotonic wall clock)."""
        return self._loop.time() - self._epoch

    def schedule(self, delay: float, callback: Callable[[], None],
                 daemon: bool = False) -> LiveEventHandle:
        """Schedule ``callback`` after ``delay`` wall-clock seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        handle = LiveEventHandle(self.now + delay, next(self._sequence),
                                 callback, self, daemon=daemon)
        self._live_pending += 1
        if not daemon:
            self._nondaemon_pending += 1
        handle._timer = self._loop.call_later(delay, handle._fire)
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None],
                    daemon: bool = False) -> LiveEventHandle:
        """Schedule ``callback`` at absolute clock time ``time``."""
        delay = time - self.now
        if delay < 0:
            raise SimulationError(f"cannot schedule at {time} < now")
        return self.schedule(delay, callback, daemon=daemon)

    def call_soon(self, callback: Callable[[], None]) -> LiveEventHandle:
        """Run ``callback`` on the next loop pass."""
        return self.schedule(0.0, callback)

    def schedule_repeating(self, interval: float,
                           callback: Callable[[], None],
                           daemon: bool = True
                           ) -> LiveRepeatingHandle:
        """Run ``callback`` every ``interval`` seconds until cancelled.

        Defaults to ``daemon=True`` — a periodic background task (e.g.
        the telemetry snapshot tick) must not hold off
        :meth:`wait_quiescent`, or the run would never drain.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive repeat interval: {interval}")
        handle = LiveRepeatingHandle(self, interval, callback, daemon)
        handle._inner = self.schedule(interval, handle._fire, daemon=daemon)
        return handle

    @property
    def pending(self) -> int:
        """Scheduled timers that have not fired or been cancelled."""
        return self._live_pending

    # -- task hygiene ----------------------------------------------------------

    def spawn(self, coro: Coroutine[Any, Any, None]) -> "asyncio.Task[None]":
        """Create a retained, error-surfacing task on the clock's loop.

        The sanctioned replacement for a bare ``loop.create_task``
        (which DCUP012 flags): the handle is retained until done so the
        task cannot be garbage-collected mid-flight, an exception is
        re-raised by the next drain instead of vanishing into asyncio's
        logger, an in-flight spawn holds off :meth:`wait_quiescent`,
        and an armed sanitizer adopts the task.
        """
        task = self._loop.create_task(coro)
        self._spawned.add(task)
        task.add_done_callback(self._finish_spawned)
        if self.sanitizer is not None:
            self.sanitizer.adopt(task)
        return task

    def _finish_spawned(self, task: "asyncio.Task[None]") -> None:
        self._spawned.discard(task)
        if not task.cancelled():
            exc = task.exception()
            if exc is not None:
                self._spawn_errors.append(exc)

    # -- transport service hooks ----------------------------------------------

    def add_service(self, prepare: Optional[Callable[[], Awaitable[None]]] = None,
                    busy: Optional[Callable[[], bool]] = None,
                    error: Optional[Callable[[], Optional[BaseException]]] = None
                    ) -> None:
        """Register a transport's drain hooks (see class docstring)."""
        if prepare is not None:
            self._prepare_hooks.append(prepare)
        if busy is not None:
            self._busy_probes.append(busy)
        if error is not None:
            self._error_probes.append(error)

    # -- draining --------------------------------------------------------------

    def _raise_pending_errors(self) -> None:
        if self._spawn_errors:
            raise self._spawn_errors.pop(0)
        for probe in self._error_probes:
            exc = probe()
            if exc is not None:
                raise exc

    async def wait_quiescent(self, poll: float = 0.005, grace: float = 0.02,
                             checks: int = 2, timeout: float = 120.0) -> None:
        """Wait until no non-daemon work remains (the live ``run()``).

        Quiescence means: no non-daemon timer pending, every registered
        busy probe False, and this state observed ``checks`` times in a
        row ``grace`` seconds apart — the grace re-checks absorb
        datagrams still in flight on loopback that are not covered by a
        peer's timer.  Raises the first pending transport error, or
        :class:`TimeoutError` after ``timeout`` seconds.
        """
        for hook in self._prepare_hooks:
            await hook()
        deadline = self._loop.time() + timeout
        quiet = 0
        while quiet < checks:
            self._raise_pending_errors()
            if self._loop.time() > deadline:
                raise TimeoutError(
                    f"live run not quiescent after {timeout}s: "
                    f"{self._nondaemon_pending} non-daemon timers pending")
            if self._nondaemon_pending > 0 or bool(self._spawned) or \
                    any(probe() for probe in self._busy_probes):
                quiet = 0
                await asyncio.sleep(poll)
                continue
            quiet += 1
            if quiet < checks:
                await asyncio.sleep(grace)
        self._raise_pending_errors()
        if self.sanitizer is not None:
            self.sanitizer.check_quiescence(self._loop)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drive the loop until quiescent; returns timers fired.

        The live counterpart of :meth:`Simulator.run`: callers that
        drain a simulation with ``simulator.run()`` drain a live run the
        same way.  Must be called from synchronous code (not from inside
        the loop).  ``max_events`` is accepted for signature parity and
        ignored — wall-clock work cannot be replayed one event at a
        time.
        """
        before = self.events_processed
        self._loop.run_until_complete(self.wait_quiescent())
        return self.events_processed - before

    def run_for(self, duration: float) -> int:
        """Run the loop for ``duration`` wall-clock seconds."""
        before = self.events_processed
        self._loop.run_until_complete(asyncio.sleep(duration))
        self._raise_pending_errors()
        return self.events_processed - before

    def __repr__(self) -> str:
        return f"LiveClock(now={self.now:.3f}, pending={self.pending})"
