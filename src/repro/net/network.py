"""Simulated UDP networking: endpoints, latency, loss, duplication.

DNScup deliberately rides on UDP (paper §1): notifications are cheap but
unreliable, so the protocol needs acknowledgements and retransmission.
The :class:`Network` here models exactly the properties that matter —
per-packet delay drawn from a :class:`LatencyModel`, independent loss and
duplication probabilities, and a hard 512-byte payload check mirroring
RFC 1035's UDP limit (oversized datagrams raise unless the check is
relaxed, the way EDNS0 would).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, Optional, Tuple

from ..dnslib import MAX_UDP_PAYLOAD
from .simulator import Simulator

#: An endpoint is (address, port); addresses are opaque strings.
Endpoint = Tuple[str, int]

#: Receive callbacks get (payload, source, destination).
DatagramHandler = Callable[[bytes, Endpoint, Endpoint], None]

#: The standard DNS port, used throughout the server layer.
DNS_PORT = 53


class NetworkError(RuntimeError):
    """Raised on misuse: double binds, oversized datagrams, unknown hosts."""


def _ep(endpoint: Endpoint) -> str:
    """Trace-friendly ``addr:port`` form of an endpoint."""
    return f"{endpoint[0]}:{endpoint[1]}"


class LatencyModel:
    """One-way delay generator.

    ``base`` is the propagation floor; ``jitter`` adds a uniform random
    component.  Subclass and override :meth:`sample` for heavier tails.
    """

    def __init__(self, base: float = 0.01, jitter: float = 0.0):
        if base < 0 or jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter

    def sample(self, rng: random.Random) -> float:
        """Draw one delay from the model."""
        if self.jitter == 0.0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


class LognormalLatency(LatencyModel):
    """Heavy-tailed WAN-like delay: base + lognormal(mu, sigma)."""

    def __init__(self, base: float = 0.01, mu: float = -4.0, sigma: float = 1.0):
        super().__init__(base=base, jitter=0.0)
        self.mu = mu
        self.sigma = sigma

    def sample(self, rng: random.Random) -> float:
        """Draw one delay from the model."""
        return self.base + rng.lognormvariate(self.mu, self.sigma)


@dataclasses.dataclass
class LinkStats:
    """Per-:class:`LinkProfile` datagram fates (plain attributes for tests;
    mirrored into the metrics registry by the observability layer)."""

    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    unreachable: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


@dataclasses.dataclass
class LinkProfile:
    """Loss/latency characteristics of one directed host pair (or default)."""

    latency: LatencyModel = dataclasses.field(default_factory=LatencyModel)
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    #: Fate counters for traffic carried by this profile.  Excluded from
    #: init/compare so ``dataclasses.replace`` starts fresh counters.
    stats: LinkStats = dataclasses.field(default_factory=LinkStats,
                                         init=False, repr=False,
                                         compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate out of [0,1): {self.loss_rate}")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError(f"duplicate_rate out of [0,1): {self.duplicate_rate}")


@dataclasses.dataclass
class NetworkStats:
    """Counters the benchmarks read off after a run."""

    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    datagrams_lost: int = 0
    datagrams_duplicated: int = 0
    #: Datagrams that arrived at an endpoint nobody was bound to.
    datagrams_unreachable: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    #: Largest datagram seen — checked against the 512-byte RFC 1035
    #: bound the DNScup prototype validates (paper §5.2).
    max_datagram: int = 0
    #: Reliable-stream (TCP-like) messages, used for truncation fallback.
    stream_messages: int = 0
    stream_bytes: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


class Network:
    """The shared medium connecting every simulated host."""

    def __init__(self, simulator: Simulator, seed: int = 0,
                 default_profile: Optional[LinkProfile] = None,
                 enforce_udp_limit: bool = True,
                 udp_payload_limit: Optional[int] = None):
        self.simulator = simulator
        self.rng = random.Random(seed)
        self.default_profile = default_profile or LinkProfile()
        self.enforce_udp_limit = enforce_udp_limit
        #: Largest permitted UDP payload.  Defaults to the classic
        #: 512-byte RFC 1035 bound; EDNS0 deployments raise it.
        self.udp_payload_limit = (udp_payload_limit
                                  if udp_payload_limit is not None
                                  else MAX_UDP_PAYLOAD)
        self.stats = NetworkStats()
        self._bindings: Dict[Endpoint, DatagramHandler] = {}
        self._stream_bindings: Dict[Endpoint, DatagramHandler] = {}
        self._profiles: Dict[Tuple[str, str], LinkProfile] = {}
        #: Observability hooks (both off by default and zero-cost when
        #: off): a :class:`repro.obs.TraceBus` receiving ``net.*``
        #: transport events, and a :class:`repro.obs.WireCapture`
        #: recording every datagram's fate.  Attached by
        #: :meth:`repro.obs.Observability.observe_network`.
        self.trace = None
        self.capture = None
        #: Load-attribution hook: a :class:`repro.obs.load.LoadLedger`
        #: attributing delivered datagrams to their destination
        #: endpoint (deliver-class transport load, PROTOCOL §9.5).
        self.load_ledger = None

    # -- topology ------------------------------------------------------------

    def bind(self, endpoint: Endpoint, handler: DatagramHandler) -> None:
        """Attach ``handler`` to receive datagrams addressed to ``endpoint``."""
        if endpoint in self._bindings:
            raise NetworkError(f"endpoint already bound: {endpoint}")
        self._bindings[endpoint] = handler

    def unbind(self, endpoint: Endpoint) -> None:
        """Remove a datagram binding, if present."""
        self._bindings.pop(endpoint, None)

    def is_bound(self, endpoint: Endpoint) -> bool:
        """True when a handler is bound to ``endpoint``."""
        return endpoint in self._bindings

    def set_link_profile(self, src_addr: str, dst_addr: str,
                         profile: LinkProfile) -> None:
        """Override link characteristics for one directed address pair."""
        self._profiles[(src_addr, dst_addr)] = profile

    def _profile_for(self, src: Endpoint, dst: Endpoint) -> LinkProfile:
        return self._profiles.get((src[0], dst[0]), self.default_profile)

    # -- datagram service --------------------------------------------------------

    def send(self, payload: bytes, src: Endpoint, dst: Endpoint) -> None:
        """Fire-and-forget datagram; may be lost, delayed or duplicated."""
        if self.enforce_udp_limit and len(payload) > self.udp_payload_limit:
            raise NetworkError(
                f"datagram of {len(payload)} bytes exceeds the "
                f"{self.udp_payload_limit}-byte UDP limit"
            )
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += len(payload)
        self.stats.max_datagram = max(self.stats.max_datagram, len(payload))
        profile = self._profile_for(src, dst)
        copies = 1
        if profile.duplicate_rate and self.rng.random() < profile.duplicate_rate:
            copies = 2
            self.stats.datagrams_duplicated += 1
            profile.stats.duplicated += 1
            if self.trace is not None:
                self.trace.emit("net.duplicate", src=_ep(src), dst=_ep(dst),
                                size=len(payload))
        for copy in range(copies):
            if profile.loss_rate and self.rng.random() < profile.loss_rate:
                self.stats.datagrams_lost += 1
                profile.stats.dropped += 1
                if self.trace is not None:
                    self.trace.emit("net.drop", src=_ep(src), dst=_ep(dst),
                                    size=len(payload))
                if self.capture is not None:
                    self.capture.record(self.simulator.now, "udp", src, dst,
                                        payload, "dropped", dup=copy > 0)
                continue
            delay = profile.latency.sample(self.rng)
            self.simulator.schedule(
                delay, lambda p=payload, d=copy > 0: self._deliver(p, src,
                                                                   dst, d))

    def _deliver(self, payload: bytes, src: Endpoint, dst: Endpoint,
                 dup: bool = False) -> None:
        handler = self._bindings.get(dst)
        if handler is None:
            # Port unreachable: dropped like real UDP without ICMP, but
            # counted — an unreachable storm is a topology bug.
            self.stats.datagrams_unreachable += 1
            self._profile_for(src, dst).stats.unreachable += 1
            if self.trace is not None:
                self.trace.emit("net.unreachable", src=_ep(src),
                                dst=_ep(dst), size=len(payload))
            if self.capture is not None:
                self.capture.record(self.simulator.now, "udp", src, dst,
                                    payload, "unreachable", dup=dup)
            return
        self.stats.datagrams_delivered += 1
        self.stats.bytes_delivered += len(payload)
        self._profile_for(src, dst).stats.delivered += 1
        if self.load_ledger is not None:
            self.load_ledger.record(_ep(dst), "-", "deliver",
                                    self.simulator.now)
        if self.trace is not None:
            self.trace.emit("net.deliver", src=_ep(src), dst=_ep(dst),
                            size=len(payload))
        if self.capture is not None:
            self.capture.record(self.simulator.now, "udp", src, dst,
                                payload, "delivered", dup=dup)
        handler(payload, src, dst)

    # -- reliable streams (TCP-like, for truncation fallback) -----------------

    def bind_stream(self, endpoint: Endpoint, handler: DatagramHandler) -> None:
        """Attach a handler for reliable-stream messages to ``endpoint``."""
        if endpoint in self._stream_bindings:
            raise NetworkError(f"stream endpoint already bound: {endpoint}")
        self._stream_bindings[endpoint] = handler

    def unbind_stream(self, endpoint: Endpoint) -> None:
        """Remove a stream binding, if present."""
        self._stream_bindings.pop(endpoint, None)

    def send_stream(self, payload: bytes, src: Endpoint, dst: Endpoint) -> None:
        """Reliable, size-unbounded delivery — the DNS-over-TCP path.

        No loss or duplication (TCP retransmits below our abstraction);
        latency is three one-way delays, approximating connection setup
        plus data transfer.
        """
        self.stats.stream_messages += 1
        self.stats.stream_bytes += len(payload)
        profile = self._profile_for(src, dst)
        delay = sum(profile.latency.sample(self.rng) for _ in range(3))
        self.simulator.schedule(
            delay, lambda: self._deliver_stream(payload, src, dst))

    def _deliver_stream(self, payload: bytes, src: Endpoint,
                        dst: Endpoint) -> None:
        handler = self._stream_bindings.get(dst)
        if handler is None:
            if self.capture is not None:
                self.capture.record(self.simulator.now, "stream", src, dst,
                                    payload, "unreachable")
            return
        if self.capture is not None:
            self.capture.record(self.simulator.now, "stream", src, dst,
                                payload, "delivered")
        handler(payload, src, dst)
