"""Network substrate: event loop, UDP, hosts, timers — simulated and live."""

from .aio import AioNetwork, StreamConnectionPool, TextExpositionPort, \
    ephemeral_port, loopback_available
from .clock import ClockLike, LiveClock, LiveEventHandle, \
    LiveRepeatingHandle
from .host import Host, ResponseHandler, Socket
from .network import (
    DNS_PORT,
    DatagramHandler,
    Endpoint,
    LatencyModel,
    LinkProfile,
    LinkStats,
    LognormalLatency,
    Network,
    NetworkError,
    NetworkStats,
)
from .simulator import EventHandle, SimulationError, Simulator
from .telemetry import (
    TelemetryError,
    TelemetryPlane,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
)
from .timers import PeriodicTimer, RetryPolicy

__all__ = [
    "Simulator", "EventHandle", "SimulationError",
    "Network", "NetworkError", "NetworkStats", "LinkProfile", "LinkStats",
    "LatencyModel", "LognormalLatency", "Endpoint", "DatagramHandler",
    "DNS_PORT",
    "Host", "Socket", "ResponseHandler",
    "RetryPolicy", "PeriodicTimer",
    "ClockLike", "LiveClock", "LiveEventHandle", "LiveRepeatingHandle",
    "AioNetwork", "StreamConnectionPool", "TextExpositionPort",
    "ephemeral_port", "loopback_available",
    "TelemetryPlane", "TelemetryError",
    "render_exposition", "parse_exposition", "sanitize_metric_name",
]
