"""Network substrate: event loop, UDP, hosts, timers — simulated and live."""

from .aio import AioNetwork, StreamConnectionPool, ephemeral_port, \
    loopback_available
from .clock import ClockLike, LiveClock, LiveEventHandle
from .host import Host, ResponseHandler, Socket
from .network import (
    DNS_PORT,
    DatagramHandler,
    Endpoint,
    LatencyModel,
    LinkProfile,
    LinkStats,
    LognormalLatency,
    Network,
    NetworkError,
    NetworkStats,
)
from .simulator import EventHandle, SimulationError, Simulator
from .timers import PeriodicTimer, RetryPolicy

__all__ = [
    "Simulator", "EventHandle", "SimulationError",
    "Network", "NetworkError", "NetworkStats", "LinkProfile", "LinkStats",
    "LatencyModel", "LognormalLatency", "Endpoint", "DatagramHandler",
    "DNS_PORT",
    "Host", "Socket", "ResponseHandler",
    "RetryPolicy", "PeriodicTimer",
    "ClockLike", "LiveClock", "LiveEventHandle",
    "AioNetwork", "StreamConnectionPool",
    "ephemeral_port", "loopback_available",
]
