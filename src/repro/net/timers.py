"""Retry policies and periodic timers."""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from .clock import ClockLike
from .simulator import EventHandle


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retransmission schedule.

    Attempt *n* (1-based) waits ``initial_timeout * backoff**(n-1)``,
    capped at ``max_timeout``.  ``max_attempts`` counts the original send.
    The defaults mirror classic resolver behaviour: 2 s initial, doubling,
    4 tries.
    """

    initial_timeout: float = 2.0
    backoff: float = 2.0
    max_timeout: float = 30.0
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.initial_timeout <= 0 or self.backoff < 1.0:
            raise ValueError("bad retry policy parameters")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def timeout_for(self, attempt: int) -> float:
        """Timeout for the given 1-based attempt number."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.initial_timeout * self.backoff ** (attempt - 1),
                   self.max_timeout)

    def total_budget(self) -> float:
        """Worst-case wall time before the request is reported failed."""
        return sum(self.timeout_for(i) for i in range(1, self.max_attempts + 1))


class PeriodicTimer:
    """Fires a callback every ``interval`` seconds until stopped.

    Used by slaves (SOA refresh), probers (Table 1 sampling resolutions)
    and the DNScup listening module's rate-window rollover.
    """

    def __init__(self, simulator: ClockLike, interval: float,
                 callback: Callable[[], None],
                 start_delay: Optional[float] = None,
                 daemon: bool = True):
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.simulator = simulator
        self.interval = interval
        self.callback = callback
        self.daemon = daemon
        self._handle: Optional[EventHandle] = None
        self._stopped = False
        first = interval if start_delay is None else start_delay
        self._handle = simulator.schedule(first, self._tick, daemon=daemon)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            self._handle = self.simulator.schedule(self.interval, self._tick,
                                                   daemon=self.daemon)

    def stop(self) -> None:
        """Stop permanently; safe to call more than once."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def running(self) -> bool:
        """True until stopped."""
        return not self._stopped
