"""A deterministic discrete-event simulator.

Everything time-dependent in the reproduction — UDP delivery, lease
expiry, TTL decay, retransmission timers, probing schedules — runs on one
:class:`Simulator`.  Events fire in (time, schedule-order) order, so runs
are exactly reproducible for a given seed; there is no wall-clock anywhere
in the simulation path.

Tie-breaking is an **explicit monotonic sequence number** stamped on
every :class:`EventHandle` at schedule time (never object identity or
hash, which vary across processes): equal-timestamp events fire in
schedule order on any machine, in any process — the property the
sharded simulation relies on for byte-stable merges.

Two queue backends implement the same (time, seq) contract:

* ``"wheel"`` (default) — the hierarchical timer wheel
  (:class:`~repro.net.timerwheel.HierarchicalTimerWheel`): O(1)
  schedule *and* cancel, no tombstone accumulation under the
  schedule/cancel churn of per-lease renewal timers;
* ``"heap"`` — the classic binary heap, kept as the reference backend
  (``tests/test_timerwheel.py`` holds the two to identical fire
  sequences by property test).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from .timerwheel import HierarchicalTimerWheel


class EventHandle:
    """A cancellable reference to a scheduled event.

    *Daemon* events (periodic timers, housekeeping) never keep the
    simulation alive: :meth:`Simulator.run` stops once only daemon
    events remain, the way daemon threads don't block process exit.

    ``seq`` is the schedule-time monotonic sequence number; the queue
    backends order events by ``(time, seq)`` and nothing else.
    """

    __slots__ = ("time", "seq", "daemon", "_callback", "_cancelled",
                 "_simulator")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 simulator: "Simulator", daemon: bool = False):
        self.time = time
        self.seq = seq
        self.daemon = daemon
        self._callback = callback
        self._cancelled = False
        self._simulator = simulator

    def cancel(self) -> None:
        """Prevent the event from firing; cancelling twice is harmless."""
        if not self._cancelled:
            self._cancelled = True
            self._callback = _noop
            self._simulator._live_pending -= 1
            if not self.daemon:
                self._simulator._nondaemon_pending -= 1

    @property
    def cancelled(self) -> bool:
        """True once cancelled."""
        return self._cancelled

    def _fire(self) -> None:
        self._callback()


def _noop() -> None:
    return None


class SimulationError(RuntimeError):
    """Raised on simulator misuse (scheduling into the past, etc.)."""


class _HeapQueue:
    """The reference event queue: a binary heap of (time, seq, handle).

    Cancelled events stay in the heap as tombstones until popped past.
    """

    __slots__ = ("_queue",)

    def __init__(self, start_time: float):
        self._queue: List[Tuple[float, int, EventHandle]] = []

    def push(self, handle: EventHandle) -> None:
        heapq.heappush(self._queue, (handle.time, handle.seq, handle))

    def pop(self) -> Optional[EventHandle]:
        while self._queue:
            _time, _seq, handle = heapq.heappop(self._queue)
            if not handle.cancelled:
                return handle
        return None

    def peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None


class Simulator:
    """Event loop with virtual time in seconds and a pluggable queue."""

    def __init__(self, start_time: float = 0.0, queue: str = "wheel"):
        self._now = float(start_time)
        if queue == "wheel":
            self._queue: object = HierarchicalTimerWheel(self._now)
        elif queue == "heap":
            self._queue = _HeapQueue(self._now)
        else:
            raise ValueError(f"unknown queue backend: {queue!r}")
        self._sequence = itertools.count()
        self.events_processed = 0
        self._nondaemon_pending = 0
        self._live_pending = 0
        #: Observability hook: called with the event time after each
        #: fired event.  None (the default) costs one comparison per
        #: step; set by :meth:`repro.obs.Observability.observe_simulator`.
        self.observer: Optional[Callable[[float], None]] = None
        #: Load-attribution hook: a :class:`repro.obs.load.LoadLedger`
        #: sampling event-loop pressure — each fired event is
        #: tick-class load with the live pending count as the depth
        #: sample (PROTOCOL §9.5).  None by default, one pointer check
        #: per step when off.
        self.load_ledger = None

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], None],
                    daemon: bool = False) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        handle = EventHandle(time, next(self._sequence), callback, self,
                             daemon=daemon)
        self._live_pending += 1
        if not daemon:
            self._nondaemon_pending += 1
        self._queue.push(handle)
        return handle

    def schedule(self, delay: float, callback: Callable[[], None],
                 daemon: bool = False) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, daemon=daemon)

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at the current time, after pending same-time events."""
        return self.schedule(0.0, callback)

    # -- execution --------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        handle = self._queue.pop()
        if handle is None:
            return False
        self._now = handle.time
        self.events_processed += 1
        self._live_pending -= 1
        if not handle.daemon:
            self._nondaemon_pending -= 1
        handle._fire()
        if self.load_ledger is not None:
            self.load_ledger.record("simulator", "-", "tick", handle.time,
                                    depth=self._live_pending)
        if self.observer is not None:
            self.observer(handle.time)
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until no *non-daemon* work remains (or ``max_events``).

        Daemon events (periodic timers) that precede pending non-daemon
        events still fire in time order; once only daemon events are
        left the run stops and leaves them queued — they would otherwise
        keep a simulation alive forever.
        """
        fired = 0
        while self._nondaemon_pending > 0 and self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def run_until(self, time: float) -> int:
        """Fire all events with timestamp <= ``time``, then advance to it."""
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time}")
        fired = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > time:
                break
            if self.step():
                fired += 1
        self._now = max(self._now, time)
        return fired

    def run_for(self, duration: float) -> int:
        """Advance virtual time by ``duration``, firing due events."""
        return self.run_until(self._now + duration)

    def _peek_time(self) -> Optional[float]:
        return self._queue.peek_time()

    @property
    def pending(self) -> int:
        """Scheduled events that have not fired or been cancelled.

        O(1): a live-event counter maintained on schedule/cancel/fire,
        not a scan of the queue (cancelled entries may linger there
        until popped past).
        """
        return self._live_pending

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.3f}, pending={self.pending})"
