"""Simulated hosts and sockets.

A :class:`Host` owns one address on the :class:`~repro.net.network.Network`
and hands out :class:`Socket` objects bound to ports.  The request/response
pattern every DNS agent needs — send a datagram, match the reply by message
ID, retry on timeout — lives in :class:`Socket.request`, so servers and
resolvers stay free of transport bookkeeping.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .network import DatagramHandler, DNS_PORT, Endpoint, Network, NetworkError
from .simulator import EventHandle, Simulator
from .timers import RetryPolicy

#: Response callbacks receive (payload, source) or (None, None) on timeout.
ResponseHandler = Callable[[Optional[bytes], Optional[Endpoint]], None]


class Socket:
    """A bound UDP socket with request/response matching."""

    def __init__(self, host: "Host", port: int):
        self.host = host
        self.port = port
        self._receive_handler: Optional[DatagramHandler] = None
        self._stream_handler: Optional[DatagramHandler] = None
        self._pending: Dict[Tuple[Endpoint, int], "_PendingRequest"] = {}
        host.network.bind(self.endpoint, self._on_datagram)
        host.network.bind_stream(self.endpoint, self._on_stream)

    @property
    def endpoint(self) -> Endpoint:
        """The (address, port) this component is bound to."""
        return (self.host.address, self.port)

    @property
    def simulator(self) -> Simulator:
        """The simulator driving this component."""
        return self.host.network.simulator

    def close(self) -> None:
        """Release all bindings and pending state."""
        for pending in list(self._pending.values()):
            pending.cancel()
        self._pending.clear()
        self.host.network.unbind(self.endpoint)
        self.host.network.unbind_stream(self.endpoint)

    # -- plain datagrams --------------------------------------------------------

    def on_receive(self, handler: DatagramHandler) -> None:
        """Handler for datagrams that are not matched responses."""
        self._receive_handler = handler

    def send(self, payload: bytes, dst: Endpoint) -> None:
        """Send one datagram to ``dst``."""
        self.host.network.send(payload, self.endpoint, dst)

    # -- request/response ---------------------------------------------------------

    def request(self, payload: bytes, dst: Endpoint, match_id: int,
                handler: ResponseHandler,
                retry: Optional[RetryPolicy] = None,
                on_attempt: Optional[Callable[[int], None]] = None) -> None:
        """Send ``payload`` and route the matching response to ``handler``.

        Responses are matched by (source endpoint, ``match_id``) where the
        ID is read from the first two payload bytes — the DNS message ID.
        On exhaustion of the retry budget the handler gets ``(None, None)``.
        ``on_attempt`` is invoked with the 1-based attempt number on each
        transmission — attempt 2 and up are retransmissions — letting
        callers observe their retry traffic without owning the timer.
        """
        policy = retry or RetryPolicy()
        key = (dst, match_id)
        if key in self._pending:
            raise NetworkError(f"duplicate outstanding request: {key}")
        pending = _PendingRequest(self, payload, dst, match_id, handler, policy)
        pending.on_attempt = on_attempt
        self._pending[key] = pending
        pending.send_attempt()

    def _on_datagram(self, payload: bytes, src: Endpoint, dst: Endpoint) -> None:
        # Only DNS *responses* (QR bit set, high bit of byte 2) can settle
        # a pending request; a server-initiated query (e.g. CACHE-UPDATE)
        # that happens to reuse an ID must fall through to the handler.
        if len(payload) >= 3 and payload[2] & 0x80:
            msg_id = int.from_bytes(payload[:2], "big")
            pending = self._pending.pop((src, msg_id), None)
            if pending is not None:
                pending.complete(payload, src)
                return
        if self._receive_handler is not None:
            self._receive_handler(payload, src, dst)

    # -- reliable streams (DNS-over-TCP path) ------------------------------

    def on_receive_stream(self, handler: DatagramHandler) -> None:
        """Handler for unmatched stream messages (a server's TCP side)."""
        self._stream_handler = handler

    def send_stream(self, payload: bytes, dst: Endpoint) -> None:
        """Send one reliable-stream message to ``dst``."""
        self.host.network.send_stream(payload, self.endpoint, dst)

    def request_stream(self, payload: bytes, dst: Endpoint, match_id: int,
                       handler: ResponseHandler,
                       timeout: float = 10.0) -> None:
        """One reliable request/response exchange (no retransmission)."""
        key = (dst, match_id)
        if key in self._pending:
            raise NetworkError(f"duplicate outstanding request: {key}")
        pending = _PendingRequest(
            self, payload, dst, match_id, handler,
            RetryPolicy(initial_timeout=timeout, max_attempts=1))
        pending.stream = True
        self._pending[key] = pending
        pending.send_attempt()

    def _on_stream(self, payload: bytes, src: Endpoint, dst: Endpoint) -> None:
        if len(payload) >= 3 and payload[2] & 0x80:
            msg_id = int.from_bytes(payload[:2], "big")
            pending = self._pending.pop((src, msg_id), None)
            if pending is not None:
                pending.complete(payload, src)
                return
        if self._stream_handler is not None:
            self._stream_handler(payload, src, dst)
        elif self._receive_handler is not None:
            self._receive_handler(payload, src, dst)

    def _forget(self, dst: Endpoint, match_id: int) -> None:
        self._pending.pop((dst, match_id), None)


class _PendingRequest:
    """Bookkeeping for one in-flight request with retransmission."""

    def __init__(self, socket: Socket, payload: bytes, dst: Endpoint,
                 match_id: int, handler: ResponseHandler, policy: RetryPolicy):
        self.socket = socket
        self.payload = payload
        self.dst = dst
        self.match_id = match_id
        self.handler = handler
        self.policy = policy
        self.attempt = 0
        self._timer: Optional[EventHandle] = None
        self.retransmissions = 0
        self.stream = False
        self.on_attempt: Optional[Callable[[int], None]] = None

    def send_attempt(self) -> None:
        """Transmit (or retransmit) the request payload."""
        self.attempt += 1
        if self.attempt > 1:
            self.retransmissions += 1
        if self.on_attempt is not None:
            self.on_attempt(self.attempt)
        if self.stream:
            self.socket.send_stream(self.payload, self.dst)
        else:
            self.socket.send(self.payload, self.dst)
        timeout = self.policy.timeout_for(self.attempt)
        self._timer = self.socket.simulator.schedule(timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        if self.attempt < self.policy.max_attempts:
            self.send_attempt()
            return
        self.socket._forget(self.dst, self.match_id)
        self.handler(None, None)

    def complete(self, payload: bytes, src: Endpoint) -> None:
        """Settle the request with a received response."""
        if self._timer is not None:
            self._timer.cancel()
        self.handler(payload, src)

    def cancel(self) -> None:
        """Abandon the request; no callback will fire."""
        if self._timer is not None:
            self._timer.cancel()


class Host:
    """One addressable machine in the simulated network."""

    def __init__(self, network: Network, address: str):
        self.network = network
        self.address = address
        self._sockets: Dict[int, Socket] = {}
        self._ephemeral = 49152

    def socket(self, port: Optional[int] = None) -> Socket:
        """Bind a socket; ``port=None`` picks an ephemeral port."""
        if port is None:
            while self.network.is_bound((self.address, self._ephemeral)):
                self._ephemeral += 1
                if self._ephemeral > 65535:
                    raise NetworkError("ephemeral port space exhausted")
            port = self._ephemeral
            self._ephemeral += 1
        sock = Socket(self, port)
        self._sockets[port] = sock
        return sock

    def dns_socket(self) -> Socket:
        """The well-known DNS service socket (port 53)."""
        return self.socket(DNS_PORT)

    @property
    def simulator(self) -> Simulator:
        """The simulator driving this component."""
        return self.network.simulator

    def close(self) -> None:
        """Release all bindings and pending state."""
        for sock in list(self._sockets.values()):
            sock.close()
        self._sockets.clear()

    def __repr__(self) -> str:
        return f"Host({self.address!r}, sockets={sorted(self._sockets)})"
