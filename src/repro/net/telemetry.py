"""The live telemetry plane: streaming audit + a real /metrics endpoint.

Three pieces, assembled by :class:`TelemetryPlane` onto a running live
testbed (:mod:`repro.sim.livetestbed`):

* **streaming audit** — the trace bus's ``tap`` hook feeds every event,
  as it is emitted, into an
  :class:`~repro.obs.streaming.IncrementalAuditor`, so protocol
  violations are known *while the run executes* instead of post-hoc;
  with ``fail_fast`` the first permanent violation surfaces through the
  clock's error probes and aborts
  :meth:`~repro.net.clock.LiveClock.wait_quiescent` — the live run
  fails at the moment the invariant breaks;
* **periodic snapshots** — a daemon tick on the
  :class:`~repro.net.clock.LiveClock`
  (:meth:`~repro.net.clock.LiveClock.schedule_repeating`) renders the
  metrics registry into one consistent text-exposition document per
  interval, so a scrape always sees an atomic snapshot, never a
  half-updated registry;
* **the endpoint** — an
  :meth:`~repro.net.aio.AioNetwork.expose_text` loopback HTTP port
  serving that document in the Prometheus text exposition format
  (PROTOCOL.md §9.4), scrapeable by any HTTP client while the run is
  in flight (:meth:`TelemetryPlane.ascrape` is the built-in one).

Everything here follows the zero-cost-when-off contract: nothing is
built unless the plane is constructed and started, the trace tap is a
single pointer check per emit, and every metrics touch inside the
plane is guarded (``repro-lint``'s DCUP005 rule covers this module).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from ..obs.audit import AuditLimits, Violation
from ..obs.metrics import LATENCY_BUCKETS
from ..obs.streaming import IncrementalAuditor
from ..obs.trace import TraceEvent
from ..obs.wiring import Observability
from .aio import AioNetwork, TextExpositionPort
from .clock import LiveClock, LiveRepeatingHandle

__all__ = [
    "TelemetryError",
    "TelemetryPlane",
    "parse_exposition",
    "render_exposition",
    "sanitize_metric_name",
]

#: Registry name of the histogram the plane fills with per-change
#: consistency windows (max ack time minus detection time, seconds).
CONSISTENCY_WINDOW_METRIC = "telemetry.consistency_window"


class TelemetryError(RuntimeError):
    """A protocol violation detected by the streaming audit mid-run."""


def sanitize_metric_name(name: str, prefix: str = "dnscup") -> str:
    """Registry name -> Prometheus metric name.

    Registry names are dotted (``net.datagrams_sent``); the exposition
    grammar allows ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so every other
    character becomes ``_`` and the configured prefix namespaces the
    result (``dnscup_net_datagrams_sent``).
    """
    cleaned = "".join(
        ch if ("a" <= ch <= "z" or "A" <= ch <= "Z" or ch == "_"
               or "0" <= ch <= "9") else "_"
        for ch in name)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _format_value(value: object) -> str:
    """One exposition sample value: integers bare, floats via repr."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if number != number:
        return "NaN"
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    return repr(number)


def render_exposition(snapshot: Dict[str, Dict[str, object]],
                      prefix: str = "dnscup") -> str:
    """A :meth:`~repro.obs.metrics.Registry.snapshot` as exposition text.

    Prometheus text format 0.0.4 (PROTOCOL.md §9.4): one ``# TYPE``
    line per metric, counters and gauges as single samples, histograms
    as *cumulative* ``_bucket{le="..."}`` samples (each bucket counts
    every observation at or below its bound, ending with ``le="+Inf"``)
    plus ``_sum`` and ``_count``.  Metric order follows the snapshot's
    sorted keys, so identical registries render byte-identically.
    """
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    for name in counters:
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    gauges = snapshot.get("gauges", {})
    for name in gauges:
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    histograms = snapshot.get("histograms", {})
    for name in histograms:
        metric = sanitize_metric_name(name, prefix)
        data = histograms[name]
        assert isinstance(data, dict)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in data["buckets"]:
            cumulative += count
            label = "+Inf" if bound is None else _format_value(bound)
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        total = data["sum"]
        lines.append(f"{metric}_sum "
                     f"{_format_value(0.0 if total is None else total)}")
        lines.append(f"{metric}_count {_format_value(data['count'])}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, float]:
    """Exposition text -> ``{sample name (with labels): value}``.

    The inverse of :func:`render_exposition`, strict enough for the CI
    scrape assertion: comment/blank lines are skipped, every other line
    must be ``name[{labels}] value`` with a parseable float value, and
    duplicate sample names raise — a malformed or torn scrape fails
    loudly instead of producing a silently short dict.
    """
    samples: Dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"exposition line {lineno}: no sample name")
        if name in samples:
            raise ValueError(f"exposition line {lineno}: duplicate "
                             f"sample {name!r}")
        try:
            samples[name] = float(value)
        except ValueError:
            raise ValueError(f"exposition line {lineno}: bad value "
                             f"{value!r}") from None
    return samples


class TelemetryPlane:
    """Streaming audit + periodic snapshots + a live /metrics endpoint.

    Construct with the run's clock, live network, and observability
    bundle, then :meth:`start` *before* driving traffic; the plane
    taps the trace bus, registers its gauges, opens the endpoint, and
    arms the snapshot tick (all daemon — the plane never holds off
    quiescence).  ``fail_fast=True`` (the default) turns the first
    permanent audit violation into a :class:`TelemetryError` raised
    out of the clock's drain.
    """

    def __init__(self, clock: LiveClock, network: AioNetwork,
                 observability: Observability,
                 interval: float = 0.25,
                 limits: Optional[AuditLimits] = None,
                 fail_fast: bool = True,
                 prefix: str = "dnscup"):
        self.clock = clock
        self.network = network
        self.observability = observability
        self.registry = observability.registry
        self.interval = interval
        self.fail_fast = fail_fast
        self.prefix = prefix
        window_hist = self.registry.histogram(CONSISTENCY_WINDOW_METRIC,
                                              LATENCY_BUCKETS)
        self.auditor = IncrementalAuditor(limits=limits,
                                          window_hist=window_hist)
        #: Permanent violations in detection order (grows via the tap).
        self.violations: List[Violation] = []
        self.port: Optional[TextExpositionPort] = None
        self.document = ""
        self._tick_handle: Optional[LiveRepeatingHandle] = None
        self._started = False
        self._raised = False
        auditor = self.auditor
        self.registry.gauge("telemetry.audit.events",
                            fn=lambda: float(auditor.events_audited))
        self.registry.gauge("telemetry.audit.violations",
                            fn=lambda: float(len(self.violations)))
        self.registry.gauge("telemetry.audit.tracked_spans",
                            fn=lambda: float(auditor.tracked_spans))
        self.registry.gauge("telemetry.audit.peak_tracked_spans",
                            fn=lambda: float(auditor.peak_tracked_spans))
        self.registry.gauge("telemetry.ticks", fn=lambda: float(self.ticks))

    @property
    def ticks(self) -> int:
        """Snapshot ticks completed so far."""
        return self._tick_handle.fired if self._tick_handle is not None \
            else 0

    @property
    def endpoint(self) -> Tuple[str, int]:
        """The scrape endpoint's real ``(host, port)``."""
        if self.port is None:
            raise RuntimeError("telemetry plane not started")
        return self.port.address

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Tap the trace, open the endpoint, arm the tick; idempotent.

        Subscribes via :meth:`~repro.obs.trace.TraceBus.add_tap`, so
        the plane coexists with other tap consumers (e.g. a
        :class:`repro.obs.load.LoadLedger` fed from the same bus).
        """
        if self._started:
            return
        self._started = True
        self.observability.trace.add_tap(self._on_event)
        self.clock.add_service(error=self._pop_error)
        self.document = render_exposition(self.registry.snapshot(),
                                          prefix=self.prefix)
        self.port = self.network.expose_text(lambda: self.document)
        self._tick_handle = self.clock.schedule_repeating(
            self.interval, self._tick, daemon=True)

    def stop(self) -> None:
        """Un-tap the trace and stop the tick (the endpoint closes with
        the network); a final snapshot is rendered so post-run scrapes
        and :attr:`document` reflect the completed run."""
        if not self._started:
            return
        self._started = False
        self.observability.trace.remove_tap(self._on_event)
        if self._tick_handle is not None:
            self._tick_handle.cancel()
        self.document = render_exposition(self.registry.snapshot(),
                                          prefix=self.prefix)

    # -- streaming hooks -------------------------------------------------------

    def _on_event(self, record: TraceEvent) -> None:
        self.violations.extend(self.auditor.feed(record))

    def _tick(self) -> None:
        self.document = render_exposition(self.registry.snapshot(),
                                          prefix=self.prefix)

    def _pop_error(self) -> Optional[BaseException]:
        if self.fail_fast and self.violations and not self._raised:
            self._raised = True
            first = self.violations[0]
            return TelemetryError(
                f"streaming audit violation ({len(self.violations)} so "
                f"far): {first.kind}: {first.message}")
        return None

    # -- scraping --------------------------------------------------------------

    async def ascrape(self) -> str:
        """GET the endpoint over a real socket; returns the body text.

        Raises :class:`TelemetryError` unless the response parses as an
        ``HTTP/1.0 200`` with a body — the built-in client for the CI
        mid-run scrape assertion.
        """
        if self.port is None:
            raise RuntimeError("telemetry plane not started")
        reader, writer = await asyncio.open_connection(*self.port.address)
        try:
            writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read(-1)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        head, sep, body = raw.partition(b"\r\n\r\n")
        status = head.split(b"\r\n", 1)[0]
        if not sep or b" 200 " not in status + b" ":
            raise TelemetryError(f"scrape failed: {status.decode('ascii', 'replace')!r}")
        return body.decode("utf-8")

    def scrape(self) -> str:
        """Synchronous :meth:`ascrape` for use outside the loop."""
        return self.clock.loop.run_until_complete(self.ascrape())
