"""Lease-grant policies — the online decision DNScup makes per query.

When a DNScup-aware query arrives, the listening module asks a policy how
long a lease (if any) to grant, given the cache's reported query rate
(decoded from the RRC field) and the record's category-specific maximum
lease length.  Three policies reproduce the paper's comparisons:

* :class:`NoLeasePolicy` — plain TTL DNS, the weak-consistency baseline;
* :class:`FixedLeasePolicy` — "grants the same length lease to every
  incoming query" (§5.1.2's fixed-length scheme);
* :class:`DynamicLeasePolicy` — the paper's scheme: grant the maximal
  lease to high-rate caches, none to cold ones.  The rate threshold is
  the dual variable of the storage budget in the offline SLP (§4.2.1):
  greedily granting by descending λ until the budget binds is the same
  as granting exactly the pairs with λ above the marginal threshold, so
  a threshold sweep traces the whole storage/communication curve online.

Maximum lease lengths per domain category default to the paper's §5.1
settings: regular six days, CDN 200 s, Dyn 6000 s.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..dnslib import MAX_U16, Name, RRType

#: Paper §5.1 maximal lease lengths by domain category, seconds.
MAX_LEASE_REGULAR = 6 * 86400
MAX_LEASE_CDN = 200
MAX_LEASE_DYN = 6000

#: A hook mapping (name, rrtype) to that record's maximal lease length.
MaxLeaseFn = Callable[[Name, RRType], float]


def constant_max_lease(length: float) -> MaxLeaseFn:
    """A MaxLeaseFn returning the same cap for every record."""
    return lambda name, rrtype: length


@dataclasses.dataclass(frozen=True)
class GrantDecision:
    """Outcome of a policy consultation."""

    lease_length: float  # 0 means "no lease"

    @property
    def granted(self) -> bool:
        """True when a lease was granted."""
        return self.lease_length > 0

    def clamped_llt(self) -> int:
        """The lease length as the 16-bit LLT wire field (seconds).

        Lease lengths beyond 65535 s are granted in installments: the
        cache re-negotiates when the wire lease runs out.  The paper's
        CDN/Dyn maxima fit directly; only the six-day regular maximum
        saturates.
        """
        return int(min(self.lease_length, MAX_U16))


DENIED = GrantDecision(0.0)


class LeasePolicy:
    """Interface: decide a lease for one query."""

    name = "abstract"

    def decide(self, record_name: Name, rrtype: RRType, rate: float,
               max_lease: float, now: float) -> GrantDecision:
        """Decide the lease length for one query (0 = no lease)."""
        raise NotImplementedError


class NoLeasePolicy(LeasePolicy):
    """Weak consistency only; every decision is a denial."""

    name = "ttl-only"

    def decide(self, record_name: Name, rrtype: RRType, rate: float,
               max_lease: float, now: float) -> GrantDecision:
        """Deny unconditionally (pure TTL consistency)."""
        return DENIED


class FixedLeasePolicy(LeasePolicy):
    """The same lease for everyone, capped by the record's maximum."""

    name = "fixed"

    def __init__(self, lease_length: float):
        if lease_length <= 0:
            raise ValueError("fixed lease length must be positive")
        self.lease_length = lease_length

    def decide(self, record_name: Name, rrtype: RRType, rate: float,
               max_lease: float, now: float) -> GrantDecision:
        """Grant the fixed length, capped by the record's maximum."""
        return GrantDecision(min(self.lease_length, max_lease))


class DynamicLeasePolicy(LeasePolicy):
    """Grant maximal leases to caches querying faster than a threshold.

    ``rate_threshold`` is in queries/second.  Setting it to zero grants
    everyone (the most storage-hungry point); raising it walks down the
    greedy order of §4.2.1, shedding the lowest-rate pairs first.
    """

    name = "dynamic"

    def __init__(self, rate_threshold: float):
        if rate_threshold < 0:
            raise ValueError("rate threshold must be non-negative")
        self.rate_threshold = rate_threshold

    def decide(self, record_name: Name, rrtype: RRType, rate: float,
               max_lease: float, now: float) -> GrantDecision:
        """Grant the maximal lease iff the rate clears the threshold."""
        if rate >= self.rate_threshold and max_lease > 0:
            return GrantDecision(max_lease)
        return DENIED


class AdaptiveBudgetPolicy(LeasePolicy):
    """Dynamic lease under a live storage budget.

    Wraps :class:`DynamicLeasePolicy` with feedback from the lease table:
    when the table runs near its capacity the threshold rises
    (multiplicatively), and decays toward ``base_threshold`` as pressure
    falls.  This is the extension §5.1.2 sketches — online re-negotiation
    as rates change — made concrete.
    """

    name = "adaptive"

    def __init__(self, base_threshold: float,
                 occupancy: Optional[Callable[[], float]] = None,
                 high_water: float = 0.9, low_water: float = 0.6,
                 adjust_factor: float = 2.0):
        if not 0.0 < low_water < high_water <= 1.0:
            raise ValueError("want 0 < low_water < high_water <= 1")
        if adjust_factor <= 1.0:
            raise ValueError("adjust_factor must exceed 1")
        self.base_threshold = base_threshold
        self.threshold = max(base_threshold, 1e-12)
        #: Occupancy source.  May be left None at construction; the
        #: DNScup middleware binds it to its lease table's occupancy
        #: when the policy is attached.
        self.occupancy = occupancy
        self.high_water = high_water
        self.low_water = low_water
        self.adjust_factor = adjust_factor

    def decide(self, record_name: Name, rrtype: RRType, rate: float,
               max_lease: float, now: float) -> GrantDecision:
        """Like the dynamic policy, with a pressure-adjusted threshold."""
        load = self.occupancy() if self.occupancy is not None else 0.0
        if load >= self.high_water:
            self.threshold *= self.adjust_factor
        elif load <= self.low_water:
            self.threshold = max(self.base_threshold,
                                 self.threshold / self.adjust_factor)
        if rate >= self.threshold and max_lease > 0:
            return GrantDecision(max_lease)
        return DENIED
