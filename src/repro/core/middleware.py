"""DNScup as middleware: wiring the modules onto an authoritative server.

:class:`DNScup` is the public entry point the paper's title promises — a
middleware layer attached to an existing nameserver with "minor
modifications".  Attaching:

* registers the :class:`~repro.core.listening.ListeningModule` on the
  server's ``query_hooks`` (lease negotiation per query);
* subscribes the :class:`~repro.core.detection.DetectionModule` to every
  zone the server masters;
* connects the :class:`~repro.core.notification.NotificationModule` to
  the server's own port-53 socket for CACHE-UPDATE fan-out and acks;
* shares one :class:`~repro.core.lease.LeaseTable` (the track file)
  among them.

Everything else about the server is untouched ("unchanged named
modules", Figure 6) and plain-DNS clients never see a difference.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..dnslib import Key, Name, RRType
from ..net import RetryPolicy
from ..obs import LEASE_BUCKETS, Observability
from ..server import AuthoritativeServer
from .detection import DetectionModule
from .lease import LeaseTable, load_track_file, save_track_file
from .listening import ListeningModule
from .notification import NotificationModule
from .policy import (
    DynamicLeasePolicy,
    LeasePolicy,
    MAX_LEASE_CDN,
    MAX_LEASE_DYN,
    MAX_LEASE_REGULAR,
    MaxLeaseFn,
)


@dataclasses.dataclass
class DNScupConfig:
    """Tunable knobs, defaulting to the paper's settings."""

    #: Server storage allowance: maximum live leases (None = unbounded).
    lease_capacity: Optional[int] = None
    #: Sliding window for server-side rate observation, seconds.
    rate_window: float = 3600.0
    #: Poll interval for zones edited out-of-band (None = event-only).
    zone_poll_interval: Optional[float] = None
    #: Retransmission schedule for CACHE-UPDATE notifications.
    notify_retry: RetryPolicy = dataclasses.field(
        default_factory=lambda: RetryPolicy(initial_timeout=1.0, max_attempts=4))
    #: §5.3 secure mode: sign CACHE-UPDATEs with this TSIG key and
    #: require signed acks (None = plain-text, the prototype default).
    tsig_key: Optional["Key"] = None
    #: Online deprivation (§4.2.2 applied live): when the lease table is
    #: full, revoke the coldest live lease to admit a hotter candidate.
    evict_under_pressure: bool = False
    #: Track-file backend: ``"dict"`` keeps the object-per-lease
    #: :class:`~repro.core.lease.LeaseTable`; ``"array"`` switches to the
    #: columnar :class:`~repro.core.leasearray.ArrayLeaseTable` (same
    #: API, parallel-array storage — the million-cache configuration).
    lease_table_backend: str = "dict"

    def __post_init__(self) -> None:
        if self.lease_table_backend not in ("dict", "array"):
            raise ValueError(
                f"unknown lease_table_backend: {self.lease_table_backend!r}")
    #: Observability bundle (:class:`repro.obs.Observability`): when set,
    #: the lease table, detection and notification modules emit trace
    #: events and every module's counters are mirrored into the metrics
    #: registry.  None (the default) leaves all hooks detached and the
    #: instrumented paths cost nothing.
    observability: Optional["Observability"] = None


def category_max_lease(categories: Dict[Name, str]) -> MaxLeaseFn:
    """A :data:`MaxLeaseFn` from a domain→category map.

    Categories are the paper's three: ``"regular"`` (6-day max),
    ``"cdn"`` (200 s), ``"dyn"`` (6000 s).  Unknown names get the
    regular maximum.  Matching walks up the name so ``www.example.com``
    inherits ``example.com``'s category.
    """
    limits = {"regular": float(MAX_LEASE_REGULAR),
              "cdn": float(MAX_LEASE_CDN),
              "dyn": float(MAX_LEASE_DYN)}

    def max_lease(name: Name, rrtype: RRType) -> float:
        for ancestor in name.ancestors():
            category = categories.get(ancestor)
            if category is not None:
                return limits.get(category, float(MAX_LEASE_REGULAR))
        return float(MAX_LEASE_REGULAR)

    return max_lease


class DNScup:
    """The assembled middleware on one authoritative server."""

    def __init__(self, server: AuthoritativeServer,
                 policy: Optional[LeasePolicy] = None,
                 max_lease_fn: Optional[MaxLeaseFn] = None,
                 config: Optional[DNScupConfig] = None):
        self.server = server
        self.config = config or DNScupConfig()
        self.policy = policy or DynamicLeasePolicy(rate_threshold=0.0)
        if self.config.lease_table_backend == "array":
            from .leasearray import ArrayLeaseTable
            self.table = ArrayLeaseTable(capacity=self.config.lease_capacity)
        else:
            self.table = LeaseTable(capacity=self.config.lease_capacity)
        simulator = server.host.simulator
        self.listening = ListeningModule(
            simulator, self.table, self.policy,
            max_lease_fn=max_lease_fn,
            rate_window=self.config.rate_window,
            evict_under_pressure=self.config.evict_under_pressure)
        # An adaptive policy without an occupancy source gets bound to
        # this middleware's own lease-table occupancy.
        from .policy import AdaptiveBudgetPolicy
        if isinstance(self.policy, AdaptiveBudgetPolicy) \
                and self.policy.occupancy is None:
            self.policy.occupancy = self.listening.occupancy
        self.detection = DetectionModule(simulator)
        self.notification = NotificationModule(
            server.socket, self.table, retry=self.config.notify_retry,
            tsig_key=self.config.tsig_key)
        self.detection.add_sink(self.notification.on_change)
        self.observability = self.config.observability
        if self.observability is not None:
            self._install_observability(self.observability)
        self._attached = False

    def _install_observability(self, obs: Observability) -> None:
        """Attach the trace bus and mirror every module's counters.

        Gauges go through :meth:`Observability.bind`, which sums across
        repeated binds — several middlewares (one per authoritative
        server) sharing one bundle aggregate into a single registry.
        """
        self.table.trace = obs.trace
        self.table.length_hist = obs.registry.histogram("lease.length",
                                                        LEASE_BUCKETS)
        self.detection.trace = obs.trace
        self.notification.trace = obs.trace
        if obs.load is not None:
            # Per-server load attribution: the lease table and the
            # notification fan-out record against this server's
            # identity through one bound recorder facet.
            recorder = obs.load.recorder(
                f"{self.server.host.address}:{self.server.socket.port}")
            self.table.load_ledger = recorder
            self.notification.load_ledger = recorder
        self.notification.ack_rtt_hist = obs.registry.histogram(
            "notify.ack_rtt")
        self.notification.window_hist = obs.registry.histogram(
            "notify.consistency_window")
        table, listening = self.table, self.listening
        notify, detection = self.notification.stats, self.detection
        obs.bind("lease.active", lambda: len(table))
        obs.bind("lease.grants", lambda: table.stats.grants)
        obs.bind("lease.renewals", lambda: table.stats.renewals)
        obs.bind("lease.expirations", lambda: table.stats.expirations)
        obs.bind("lease.revocations", lambda: table.stats.revocations)
        obs.bind("lease.peak_active", lambda: table.stats.peak_active)
        obs.bind("listening.queries_seen",
                 lambda: listening.stats.queries_seen)
        obs.bind("listening.dnscup_queries",
                 lambda: listening.stats.dnscup_queries)
        obs.bind("listening.grants", lambda: listening.stats.grants)
        obs.bind("listening.denials", lambda: listening.stats.denials)
        obs.bind("listening.table_full", lambda: listening.stats.table_full)
        obs.bind("detection.changes", lambda: detection.changes_detected)
        obs.bind("notify.sent", lambda: notify.notifications_sent)
        obs.bind("notify.acked", lambda: notify.acks_received)
        obs.bind("notify.failed", lambda: notify.failures)
        obs.bind("notify.in_flight", lambda: notify.in_flight)
        obs.bind("notify.retransmissions", lambda: notify.retransmissions)
        obs.bind("notify.wire_encodes", lambda: notify.wire_encodes)
        obs.bind("notify.no_holders", lambda: notify.no_holders)

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> "DNScup":
        """Hook the modules into the server; idempotent."""
        if self._attached:
            return self
        self.server.query_hooks.append(self.listening.on_query)
        for zone in self.server.zones:
            if self.server.master_for(zone.origin) is not None:
                self.detection.watch_zone(
                    zone, poll_interval=self.config.zone_poll_interval)
        self._attached = True
        return self

    def detach(self) -> None:
        """Unhook from all event sources."""
        if not self._attached:
            return
        self.server.query_hooks.remove(self.listening.on_query)
        for zone in self.server.zones:
            if zone.origin in self.detection._watched:
                self.detection.unwatch_zone(zone.origin)
        self._attached = False

    # -- track-file persistence ---------------------------------------------------

    def save_track_file(self, path: str) -> int:
        """Persist the lease table; returns leases written."""
        return save_track_file(self.table, path)

    def load_track_file(self, path: str) -> None:
        """Adopt leases from a saved track file (server restart)."""
        loaded = load_track_file(path, capacity=self.table.capacity)
        now = self.server.host.simulator.now
        for lease in loaded:
            if lease.is_valid(now):
                self.table.grant(lease.cache, lease.name, lease.rrtype,
                                 lease.granted_at, lease.length)

    # -- introspection ----------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Headline counters for logs and tests."""
        return {
            "active_leases": float(len(self.table)),
            "grants": float(self.table.stats.grants),
            "renewals": float(self.table.stats.renewals),
            "changes_detected": float(self.detection.changes_detected),
            "notifications_sent": float(self.notification.stats.notifications_sent),
            "acks_received": float(self.notification.stats.acks_received),
            "ack_ratio": self.notification.ack_ratio(),
            # Encode-once fan-out: wire encodes per changed RRset versus
            # notifications addressed from the shared template.
            "wire_encodes": float(self.notification.stats.wire_encodes),
        }


def attach_dnscup(server: AuthoritativeServer,
                  policy: Optional[LeasePolicy] = None,
                  max_lease_fn: Optional[MaxLeaseFn] = None,
                  config: Optional[DNScupConfig] = None) -> DNScup:
    """One-call setup: build and attach DNScup to ``server``."""
    return DNScup(server, policy=policy, max_lease_fn=max_lease_fn,
                  config=config).attach()
