"""The listening module: watches incoming queries, maintains the track file.

Hooked into :class:`~repro.server.AuthoritativeServer`'s ``query_hooks``,
it runs once per answered query (paper Figure 6's tap on "normal DNS
queries"):

1. read the RRC field — the query rate the local nameserver reports for
   its clients;
2. fold it into this server's own per-(record, cache) rate estimate
   (caches can lie or be stale; the server trusts but verifies by
   tracking arrivals itself and taking the max);
3. consult the :class:`~repro.core.policy.LeasePolicy`;
4. on a grant, append the five-field tuple to the track file
   (:class:`~repro.core.lease.LeaseTable`) and stamp the response's LLT
   field so the cache learns its lease length.

Queries without the CU bit (plain DNS) skip all of this — backward
compatibility is free.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Tuple

from ..dnslib import Message, Name, Rcode, RRType
from ..net import ClockLike, DNS_PORT, Endpoint
from ..server.rates import WindowedRate, rrc_to_rate
from .lease import LeaseTable
from .policy import GrantDecision, LeasePolicy, MaxLeaseFn, MAX_LEASE_REGULAR


@dataclasses.dataclass
class ListeningStats:
    """Counters exposed for tests, benchmarks and operators."""
    queries_seen: int = 0
    dnscup_queries: int = 0
    grants: int = 0
    denials: int = 0
    table_full: int = 0
    #: Cold leases revoked to admit hotter candidates (online CLP).
    evictions: int = 0


class ListeningModule:
    """Per-query lease negotiation on the authoritative side."""

    def __init__(self, simulator: ClockLike, table: LeaseTable,
                 policy: LeasePolicy,
                 max_lease_fn: Optional[MaxLeaseFn] = None,
                 rate_window: float = 3600.0,
                 evict_under_pressure: bool = False):
        self.simulator = simulator
        self.table = table
        self.policy = policy
        self.max_lease_fn: MaxLeaseFn = (
            max_lease_fn or (lambda name, rrtype: MAX_LEASE_REGULAR))
        #: §4.2.2's deprivation applied online: when the table is full,
        #: revoke the coldest live lease to admit a hotter candidate.
        self.evict_under_pressure = evict_under_pressure
        self.stats = ListeningStats()
        #: Server-side observed arrival rate per ((name, rrtype), cache).
        self.observed: WindowedRate = WindowedRate(window=rate_window)

    def on_query(self, query: Message, src: Endpoint, response: Message) -> None:
        """The ``query_hooks`` entry point."""
        self.stats.queries_seen += 1
        if not query.cache_update_aware or not query.question:
            return
        if response.rcode != Rcode.NOERROR or not response.answer:
            return  # only grant leases on successful positive answers
        self.stats.dnscup_queries += 1
        question = query.question[0]
        now = self.simulator.now
        # Track by the cache's service address: queries arrive from
        # ephemeral ports, but CACHE-UPDATE notifications must reach the
        # nameserver's port 53 (the track file stores source *IPs*).
        cache = (src[0], DNS_PORT)
        key = ((question.name, question.rrtype), cache)
        self.observed.record(key, now)
        reported = rrc_to_rate(question.rrc or 0)
        observed = self.observed.rate(key, now)
        rate = max(reported, observed)
        max_lease = self.max_lease_fn(question.name, question.rrtype)
        decision = self.policy.decide(question.name, question.rrtype,
                                      rate, max_lease, now)
        if not decision.granted:
            self.stats.denials += 1
            return
        llt = decision.clamped_llt()
        if llt <= 0:
            self.stats.denials += 1
            return
        lease = self.table.grant(cache, question.name, question.rrtype,
                                 now, float(llt))
        if lease is None and self.evict_under_pressure:
            if self._evict_colder_than(rate, now):
                self.stats.evictions += 1
                lease = self.table.grant(cache, question.name,
                                         question.rrtype, now, float(llt))
        if lease is None:
            self.stats.table_full += 1
            return
        self.stats.grants += 1
        response.llt = llt

    def _evict_colder_than(self, candidate_rate: float, now: float) -> bool:
        """Revoke the live lease with the lowest observed rate, if it is
        colder than the candidate.  Returns True when a slot was freed.

        The revoked cache is not notified: its entry simply decays to
        TTL behaviour when its (now untracked) lease runs out — the same
        graceful degradation as a lost track file, and the trade CLP's
        deprivation step makes offline (§4.2.2).
        """
        victim = None
        victim_rate = candidate_rate
        for lease in self.table:
            if not lease.is_valid(now):
                continue
            rate = self.observed.rate(((lease.name, lease.rrtype),
                                       lease.cache), now)
            if rate < victim_rate:
                victim = lease
                victim_rate = rate
        if victim is None:
            return False
        return self.table.revoke(victim.cache, victim.name, victim.rrtype)

    def occupancy(self) -> float:
        """Fraction of the lease-table capacity in use (for adaptive policy)."""
        if self.table.capacity is None:
            return 0.0
        return len(self.table) / self.table.capacity
