"""Columnar, array-backed lease table (the million-cache track file).

:class:`~repro.core.lease.LeaseTable` keeps one ``Lease`` dataclass and
one dict entry per live lease.  At the scale the ROADMAP targets —
millions of caches holding leases on the same authoritative server —
object-per-lease storage dominates memory and every sweep walks a dict
of dicts.  :class:`ArrayLeaseTable` stores the same five-field tuples
(paper §5.2) in **parallel arrays** instead:

* leases are interned to dense integer ids — record ids for
  ``(owner, rrtype)`` keys, cache ids for endpoints — and a lease is a
  *slot* across four columns (record id, cache id, granted-at, length);
* freed slots (expiry, revocation) go on a **free list** and are reused
  by later grants, so the columns never need compaction;
* the only per-lease bookkeeping is one integer in the
  ``(record, cache) -> slot`` index and one slot number in the
  per-record / per-cache posting lists that serve :meth:`holders` and
  :meth:`leases_of` (stale postings are dropped lazily on read).

The class is a drop-in behind the existing lease API: every public
method of :class:`~repro.core.lease.LeaseTable` is provided with the
same semantics (grant/renew/expire transitions, capacity refusal after
an emergency sweep, lazily swept queries, stats counters, trace and
histogram hooks).  ``tests/test_core_leasearray.py`` holds the two
implementations to observable equivalence on random operation
sequences.  The one intentional difference: returned ``Lease`` objects
are *snapshots* of the columns, not live views — renewing a lease
updates the table, not previously returned objects.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

from ..dnslib import Name, RRType, as_name
from ..net import Endpoint
from .lease import Lease, LeaseTableStats, RecordKey

#: Slot tombstone: record ids are non-negative, so -1 marks a free slot.
_FREE = -1

#: Cache ids are packed into the low bits of the pair key.
_CACHE_BITS = 32


class ArrayLeaseTable:
    """All live leases on one authoritative server, in parallel arrays.

    Drop-in columnar replacement for
    :class:`~repro.core.lease.LeaseTable`: same constructor, same
    methods, same stats/trace/histogram hooks, same lazy-sweep
    semantics.  ``capacity`` bounds live leases — the storage allowance
    P_max of §4.2.1; :meth:`grant` refuses beyond it.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self.stats = LeaseTableStats()
        #: Observability hooks, attached by the DNScup middleware —
        #: same contract as :class:`~repro.core.lease.LeaseTable`.
        self.trace = None
        self.length_hist = None
        self.load_ledger = None
        # -- interning tables ------------------------------------------------
        self._record_ids: Dict[RecordKey, int] = {}
        self._records: List[RecordKey] = []
        self._cache_ids: Dict[Endpoint, int] = {}
        self._caches: List[Endpoint] = []
        # -- the columns (slot-indexed parallel arrays) ----------------------
        self._rec = array("l")        # record id, or _FREE for a free slot
        self._cch = array("l")        # cache id
        self._granted = array("d")    # query time
        self._length = array("d")     # lease length, seconds
        # -- indexes ---------------------------------------------------------
        self._free: List[int] = []                  # reusable slots
        self._slot_of: Dict[int, int] = {}          # pair key -> slot
        self._record_slots: Dict[int, List[int]] = {}   # record id -> slots
        self._cache_slots: Dict[int, List[int]] = {}    # cache id -> slots
        self._active = 0

    # -- interning ----------------------------------------------------------

    def _record_id(self, key: RecordKey) -> int:
        rid = self._record_ids.get(key)
        if rid is None:
            rid = len(self._records)
            self._record_ids[key] = rid
            self._records.append(key)
        return rid

    def _cache_id(self, cache: Endpoint) -> int:
        cid = self._cache_ids.get(cache)
        if cid is None:
            cid = len(self._caches)
            if cid >= (1 << _CACHE_BITS):
                raise OverflowError("cache id space exhausted")
            self._cache_ids[cache] = cid
            self._caches.append(cache)
        return cid

    @staticmethod
    def _pair_key(rid: int, cid: int) -> int:
        return (rid << _CACHE_BITS) | cid

    # -- slot lifecycle ------------------------------------------------------

    def _alloc(self, rid: int, cid: int, now: float, length: float) -> int:
        if self._free:
            slot = self._free.pop()
            self._rec[slot] = rid
            self._cch[slot] = cid
            self._granted[slot] = now
            self._length[slot] = length
        else:
            slot = len(self._rec)
            self._rec.append(rid)
            self._cch.append(cid)
            self._granted.append(now)
            self._length.append(length)
        self._slot_of[self._pair_key(rid, cid)] = slot
        self._record_slots.setdefault(rid, []).append(slot)
        self._cache_slots.setdefault(cid, []).append(slot)
        self._active += 1
        return slot

    def _release(self, slot: int) -> None:
        """Free one slot; posting lists are cleaned lazily on read."""
        rid = self._rec[slot]
        cid = self._cch[slot]
        del self._slot_of[self._pair_key(rid, cid)]
        self._rec[slot] = _FREE
        self._cch[slot] = _FREE
        self._free.append(slot)
        self._active -= 1

    def _snapshot(self, slot: int) -> Lease:
        """A ``Lease`` copy of one occupied slot's columns."""
        name, rrtype = self._records[self._rec[slot]]
        return Lease(self._caches[self._cch[slot]], name, rrtype,
                     self._granted[slot], self._length[slot])

    def _valid_at(self, slot: int, now: float) -> bool:
        return now < self._granted[slot] + self._length[slot]

    def _live_slots(self, postings: List[int], rid_or_cid: int,
                    column: array) -> List[int]:
        """Compact one posting list in place, dropping freed/reassigned
        slots, and return the surviving slots in insertion order.

        A slot freed by :meth:`_release` stays in the posting lists, so
        re-allocating it to the *same* id appends it a second time; only
        the last occurrence reflects the live lease.  Keeping the last
        occurrence also matches the dict backend, where re-granting a
        deleted key re-inserts it at the end.
        """
        seen = set()
        alive: List[int] = []
        for slot in reversed(postings):
            if column[slot] == rid_or_cid and slot not in seen:
                seen.add(slot)
                alive.append(slot)
        alive.reverse()
        if len(alive) != len(postings):
            postings[:] = alive
        return alive

    # -- mutation ------------------------------------------------------------

    def grant(self, cache: Endpoint, name, rrtype: RRType,
              now: float, length: float) -> Optional[Lease]:
        """Grant or renew a lease; None when the storage budget is full."""
        if length <= 0:
            raise ValueError(f"lease length must be positive: {length}")
        owner = as_name(name)
        rrtype = RRType(rrtype)
        rid = self._record_id((owner, rrtype))
        cid = self._cache_id(cache)
        slot = self._slot_of.get(self._pair_key(rid, cid))
        if slot is not None and self._valid_at(slot, now):
            self._granted[slot] = now
            self._length[slot] = length
            self.stats.renewals += 1
            if self.length_hist is not None:
                self.length_hist.observe(length)
            if self.load_ledger is not None:
                self.load_ledger.record(owner.to_text(), "renewal", now)
            if self.trace is not None:
                self.trace.emit("lease.renew", t=now,
                                cache=f"{cache[0]}:{cache[1]}",
                                name=owner.to_text(),
                                rrtype=rrtype.name, length=length)
            return self._snapshot(slot)
        if slot is not None:
            # Present but expired: reclaim before counting capacity.
            self._release(slot)
            self.stats.expirations += 1
            if self.trace is not None:
                self.trace.emit("lease.expire", t=now,
                                cache=f"{cache[0]}:{cache[1]}",
                                name=owner.to_text(),
                                rrtype=rrtype.name)
        if self.capacity is not None and self._active >= self.capacity:
            self.sweep(now)
            if self._active >= self.capacity:
                return None
        slot = self._alloc(rid, cid, now, length)
        self.stats.grants += 1
        self.stats.peak_active = max(self.stats.peak_active, self._active)
        if self.length_hist is not None:
            self.length_hist.observe(length)
        if self.load_ledger is not None:
            self.load_ledger.record(owner.to_text(), "query", now)
        if self.trace is not None:
            self.trace.emit("lease.grant", t=now,
                            cache=f"{cache[0]}:{cache[1]}",
                            name=owner.to_text(),
                            rrtype=rrtype.name, length=length)
        return self._snapshot(slot)

    def revoke(self, cache: Endpoint, name, rrtype: RRType) -> bool:
        """Drop a lease early (the communication-constrained algorithm's
        "deprivation" step, §4.2.2)."""
        owner = as_name(name)
        rrtype = RRType(rrtype)
        rid = self._record_ids.get((owner, rrtype))
        cid = self._cache_ids.get(cache)
        if rid is None or cid is None:
            return False
        slot = self._slot_of.get(self._pair_key(rid, cid))
        if slot is None:
            return False
        self._release(slot)
        self.stats.revocations += 1
        if self.trace is not None:
            self.trace.emit("lease.revoke",
                            cache=f"{cache[0]}:{cache[1]}",
                            name=owner.to_text(), rrtype=rrtype.name)
        return True

    def sweep(self, now: float) -> int:
        """Remove every expired lease; returns the number removed."""
        removed = 0
        rec = self._rec
        granted = self._granted
        length = self._length
        for slot in range(len(rec)):
            if rec[slot] == _FREE or now < granted[slot] + length[slot]:
                continue
            name, rrtype = self._records[rec[slot]]
            cache = self._caches[self._cch[slot]]
            self._release(slot)
            removed += 1
            if self.trace is not None:
                self.trace.emit("lease.expire", t=now,
                                cache=f"{cache[0]}:{cache[1]}",
                                name=name.to_text(),
                                rrtype=rrtype.name)
        self.stats.expirations += removed
        return removed

    # -- queries ------------------------------------------------------------------

    def holders(self, name, rrtype: RRType, now: float) -> List[Lease]:
        """Valid leases on (name, rrtype) — the caches to notify."""
        rid = self._record_ids.get((as_name(name), RRType(rrtype)))
        if rid is None:
            return []
        postings = self._record_slots.get(rid)
        if not postings:
            return []
        return [self._snapshot(slot)
                for slot in self._live_slots(postings, rid, self._rec)
                if self._valid_at(slot, now)]

    def get(self, cache: Endpoint, name, rrtype: RRType) -> Optional[Lease]:
        """Lookup by key; None when absent."""
        rid = self._record_ids.get((as_name(name), RRType(rrtype)))
        cid = self._cache_ids.get(cache)
        if rid is None or cid is None:
            return None
        slot = self._slot_of.get(self._pair_key(rid, cid))
        return None if slot is None else self._snapshot(slot)

    def leases_of(self, cache: Endpoint, now: float) -> List[Lease]:
        """Every valid lease held by one local nameserver."""
        cid = self._cache_ids.get(cache)
        if cid is None:
            return []
        postings = self._cache_slots.get(cid)
        if not postings:
            return []
        return [self._snapshot(slot)
                for slot in self._live_slots(postings, cid, self._cch)
                if self._valid_at(slot, now)]

    def active_count(self, now: Optional[float] = None) -> int:
        """Live leases; pass ``now`` to exclude expired-but-unswept ones."""
        if now is None:
            return self._active
        count = 0
        for slot in range(len(self._rec)):
            if self._rec[slot] != _FREE and self._valid_at(slot, now):
                count += 1
        return count

    def tracked_records(self) -> List[RecordKey]:
        """(name, type) pairs with at least one lease entry."""
        result = []
        for rid, postings in self._record_slots.items():
            if self._live_slots(postings, rid, self._rec):
                result.append(self._records[rid])
        return result

    def __iter__(self) -> Iterator[Lease]:
        for slot in range(len(self._rec)):
            if self._rec[slot] != _FREE:
                yield self._snapshot(slot)

    def __len__(self) -> int:
        return self._active

    def __repr__(self) -> str:
        records = len(self.tracked_records())
        return (f"ArrayLeaseTable(active={self._active}, "
                f"records={records}, capacity={self.capacity})")

    # -- columnar introspection ----------------------------------------------

    def column_stats(self) -> Dict[str, int]:
        """Slot-economy counters for benchmarks and capacity planning."""
        return {
            "slots": len(self._rec),
            "free": len(self._free),
            "active": self._active,
            "records_interned": len(self._records),
            "caches_interned": len(self._caches),
        }
