"""The notification module: pushes CACHE-UPDATE messages to leased caches.

When the detection module reports a record change, this module reads the
track file for the caches whose leases are still valid and sends each a
CACHE-UPDATE (opcode 6) over UDP carrying the new RRset (paper Figure 3,
steps 3–4).  UDP may drop the datagram, so every notification is
retransmitted on a backoff schedule until the cache's acknowledgement
arrives or the attempt budget is exhausted; unacknowledged caches are
recorded — their entries will fall back to TTL expiry, which is DNScup's
graceful degradation to weak consistency.

Deletions are pushed as an update carrying the (empty-answer) new state:
the cache learns the name is gone rather than serving the stale mapping.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from ..dnslib import (
    Key,
    Keyring,
    Message,
    Name,
    RRType,
    TsigError,
    Verifier,
    WireFormatError,
    WireTemplate,
    make_cache_update,
    sign,
)
from ..dnslib.message import next_message_id
from ..net import Endpoint, RetryPolicy, Socket
from .detection import RecordChange
from .lease import LeaseTable


@dataclasses.dataclass
class NotificationStats:
    """Counters exposed for tests, benchmarks and operators."""
    changes_processed: int = 0
    notifications_sent: int = 0
    acks_received: int = 0
    failures: int = 0
    caches_notified: int = 0
    #: Full wire encodes performed (one per changed RRset); the
    #: difference against ``notifications_sent`` is encodes the
    #: template fan-out saved.
    wire_encodes: int = 0
    #: Notifications suppressed because no valid lease existed.
    no_holders: int = 0
    #: Acks dropped because their TSIG failed verification (§5.3 mode).
    ack_tsig_failures: int = 0


@dataclasses.dataclass(frozen=True)
class NotificationOutcome:
    """Result of fanning one change out to one cache."""

    cache: Endpoint
    name: Name
    rrtype: RRType
    acked: bool
    rtt: Optional[float]


class NotificationModule:
    """CACHE-UPDATE fan-out with per-cache retransmission."""

    def __init__(self, socket: Socket, table: LeaseTable,
                 retry: Optional[RetryPolicy] = None,
                 tsig_key: Optional[Key] = None):
        self.socket = socket
        self.table = table
        self.retry = retry or RetryPolicy(initial_timeout=1.0, max_attempts=4)
        self.stats = NotificationStats()
        self.outcomes: List[NotificationOutcome] = []
        #: Caches that failed to ack their most recent notification.
        self.unreachable: Set[Endpoint] = set()
        #: §5.3 secure mode: sign CACHE-UPDATEs and require signed acks.
        self.tsig_key = tsig_key
        self._ack_verifier: Optional[Verifier] = None
        if tsig_key is not None:
            keyring = Keyring()
            keyring.add(tsig_key)
            self._ack_verifier = Verifier(keyring)

    @property
    def simulator(self):
        """The simulator driving this component."""
        return self.socket.simulator

    # -- the detection sink -----------------------------------------------------

    def on_change(self, change: RecordChange) -> None:
        """Detection-module sink: fan this change out to lease holders.

        The CACHE-UPDATE wire image is encoded *once* per changed RRset;
        each leaseholder's copy differs only in its message ID, which is
        patched into the shared template in place.
        """
        self.stats.changes_processed += 1
        now = self.simulator.now
        holders = self.table.holders(change.name, change.rrtype, now)
        if not holders:
            self.stats.no_holders += 1
            return
        records = change.new.to_records() if change.new is not None else []
        template = self._encode_template(change.name, change.rrtype, records)
        if template is None:
            return
        for lease in holders:
            self._notify(lease.cache, change.name, change.rrtype, template)

    def _encode_template(self, name: Name, rrtype: RRType,
                         records) -> Optional[WireTemplate]:
        """One shared wire encoding of this change's CACHE-UPDATE."""
        message = make_cache_update(name, list(records))
        if not message.question:
            return None
        # A deletion carries no records, so the question type falls back
        # to A in make_cache_update; force the real type.
        message.question[0].rrtype = rrtype
        self.stats.wire_encodes += 1
        return WireTemplate(message)

    def _notify(self, cache: Endpoint, name: Name, rrtype: RRType,
                template: WireTemplate) -> None:
        msg_id = next_message_id()
        sent_at = self.simulator.now
        self.stats.notifications_sent += 1
        self.stats.caches_notified += 1
        wire = template.with_id(msg_id)
        if self.tsig_key is not None:
            # Signing covers the patched ID, so each recipient's TSIG is
            # computed over its own datagram (no MAC sharing).
            wire = sign(wire, self.tsig_key, sent_at)
        self.socket.request(
            wire, cache, msg_id,
            lambda payload, src: self._on_ack(cache, name, rrtype, sent_at,
                                              payload),
            retry=self.retry)

    def _on_ack(self, cache: Endpoint, name: Name, rrtype: RRType,
                sent_at: float, payload: Optional[bytes]) -> None:
        if payload is None:
            self.stats.failures += 1
            self.unreachable.add(cache)
            self.outcomes.append(NotificationOutcome(cache, name, rrtype,
                                                     acked=False, rtt=None))
            return
        if self._ack_verifier is not None:
            try:
                payload = self._ack_verifier.verify(payload,
                                                    self.simulator.now)
            except TsigError:
                self.stats.ack_tsig_failures += 1
                self.stats.failures += 1
                self.outcomes.append(NotificationOutcome(
                    cache, name, rrtype, acked=False, rtt=None))
                return
        try:
            Message.from_wire(payload)
        except (WireFormatError, ValueError):
            self.stats.failures += 1
            self.outcomes.append(NotificationOutcome(cache, name, rrtype,
                                                     acked=False, rtt=None))
            return
        self.stats.acks_received += 1
        self.unreachable.discard(cache)
        self.outcomes.append(NotificationOutcome(
            cache, name, rrtype, acked=True,
            rtt=self.simulator.now - sent_at))

    # -- reporting ------------------------------------------------------------------

    def ack_ratio(self) -> float:
        """Acknowledged notifications / attempted notifications."""
        total = self.stats.acks_received + self.stats.failures
        return self.stats.acks_received / total if total else 1.0

    def mean_ack_rtt(self) -> Optional[float]:
        """Mean round-trip of acknowledged notifications, or None."""
        rtts = [o.rtt for o in self.outcomes if o.rtt is not None]
        return sum(rtts) / len(rtts) if rtts else None
