"""The notification module: pushes CACHE-UPDATE messages to leased caches.

When the detection module reports a record change, this module reads the
track file for the caches whose leases are still valid and sends each a
CACHE-UPDATE (opcode 6) over UDP carrying the new RRset (paper Figure 3,
steps 3–4).  UDP may drop the datagram, so every notification is
retransmitted on a backoff schedule until the cache's acknowledgement
arrives or the attempt budget is exhausted; unacknowledged caches are
recorded — their entries will fall back to TTL expiry, which is DNScup's
graceful degradation to weak consistency.

Deletions are pushed as an update carrying the (empty-answer) new state:
the cache learns the name is gone rather than serving the stale mapping.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from ..dnslib import (
    Key,
    Keyring,
    Message,
    Name,
    RRType,
    TsigError,
    Verifier,
    WireFormatError,
    WireTemplate,
    make_cache_update,
    sign,
)
from ..dnslib.message import next_message_id
from ..net import Endpoint, RetryPolicy, Socket
from .detection import RecordChange
from .lease import LeaseTable


@dataclasses.dataclass
class NotificationStats:
    """Counters exposed for tests, benchmarks and operators."""
    changes_processed: int = 0
    notifications_sent: int = 0
    acks_received: int = 0
    failures: int = 0
    caches_notified: int = 0
    #: Notifications sent but not yet acknowledged or given up on — a
    #: gauge, not a counter: it falls back to zero as acks arrive.
    in_flight: int = 0
    #: Datagram retransmissions performed by the retry schedule.
    retransmissions: int = 0
    #: Full wire encodes performed (one per changed RRset); the
    #: difference against ``notifications_sent`` is encodes the
    #: template fan-out saved.
    wire_encodes: int = 0
    #: Notifications suppressed because no valid lease existed.
    no_holders: int = 0
    #: Acks dropped because their TSIG failed verification (§5.3 mode).
    ack_tsig_failures: int = 0


@dataclasses.dataclass(frozen=True)
class NotificationOutcome:
    """Result of fanning one change out to one cache."""

    cache: Endpoint
    name: Name
    rrtype: RRType
    acked: bool
    rtt: Optional[float]


class _ChangeProgress:
    """Settle tracking for one detected change's fan-out."""

    __slots__ = ("detected_at", "outstanding", "acked", "failed", "last_ack")

    def __init__(self, detected_at: float, outstanding: int):
        self.detected_at = detected_at
        self.outstanding = outstanding
        self.acked = 0
        self.failed = 0
        self.last_ack: Optional[float] = None


class NotificationModule:
    """CACHE-UPDATE fan-out with per-cache retransmission."""

    def __init__(self, socket: Socket, table: LeaseTable,
                 retry: Optional[RetryPolicy] = None,
                 tsig_key: Optional[Key] = None):
        self.socket = socket
        self.table = table
        self.retry = retry or RetryPolicy(initial_timeout=1.0, max_attempts=4)
        self.stats = NotificationStats()
        self.outcomes: List[NotificationOutcome] = []
        #: Caches that failed to ack their most recent notification.
        self.unreachable: Set[Endpoint] = set()
        #: Observability hooks, attached by the middleware: a
        #: :class:`repro.obs.TraceBus` for ``notify.*`` /
        #: ``change.settled`` events and two
        #: :class:`repro.obs.Histogram` instruments.
        self.trace = None
        self.ack_rtt_hist = None
        self.window_hist = None
        #: Load-attribution hook (a per-server
        #: :class:`repro.obs.load.LoadRecorder`): first transmissions
        #: are notify-class load with the in-flight depth sampled,
        #: retransmissions retransmit-class (PROTOCOL §9.5).
        self.load_ledger = None
        #: Per-change fan-out progress, keyed by the detection seq; used
        #: to measure the consistency window (change detected -> last
        #: lease holder acknowledged).  Untracked changes (seq 0) skip it.
        self._progress: Dict[int, _ChangeProgress] = {}
        #: §5.3 secure mode: sign CACHE-UPDATEs and require signed acks.
        self.tsig_key = tsig_key
        self._ack_verifier: Optional[Verifier] = None
        if tsig_key is not None:
            keyring = Keyring()
            keyring.add(tsig_key)
            self._ack_verifier = Verifier(keyring)

    @property
    def simulator(self):
        """The simulator driving this component."""
        return self.socket.simulator

    # -- the detection sink -----------------------------------------------------

    def on_change(self, change: RecordChange) -> None:
        """Detection-module sink: fan this change out to lease holders.

        The CACHE-UPDATE wire image is encoded *once* per changed RRset;
        each leaseholder's copy differs only in its message ID, which is
        patched into the shared template in place.
        """
        self.stats.changes_processed += 1
        now = self.simulator.now
        holders = self.table.holders(change.name, change.rrtype, now)
        if not holders:
            self.stats.no_holders += 1
            return
        records = change.new.to_records() if change.new is not None else []
        template = self._encode_template(change.name, change.rrtype, records)
        if template is None:
            return
        if change.seq:
            self._progress[change.seq] = _ChangeProgress(
                change.detected_at, len(holders))
        for lease in holders:
            self._notify(lease.cache, change.name, change.rrtype, template,
                         change.seq)

    def _encode_template(self, name: Name, rrtype: RRType,
                         records) -> Optional[WireTemplate]:
        """One shared wire encoding of this change's CACHE-UPDATE."""
        message = make_cache_update(name, list(records))
        if not message.question:
            return None
        # A deletion carries no records, so the question type falls back
        # to A in make_cache_update; force the real type.
        message.question[0].rrtype = rrtype
        self.stats.wire_encodes += 1
        return WireTemplate(message)

    def _notify(self, cache: Endpoint, name: Name, rrtype: RRType,
                template: WireTemplate, seq: int = 0) -> None:
        msg_id = next_message_id()
        sent_at = self.simulator.now
        self.stats.notifications_sent += 1
        self.stats.caches_notified += 1
        self.stats.in_flight += 1
        if self.load_ledger is not None:
            self.load_ledger.record(name.to_text(), "notify", sent_at,
                                    depth=self.stats.in_flight)
        if self.trace is not None:
            self.trace.emit("notify.send", t=sent_at, seq=seq,
                            cache=f"{cache[0]}:{cache[1]}",
                            name=name.to_text(), rrtype=rrtype.name,
                            id=msg_id)
        wire = template.with_id(msg_id)
        if self.tsig_key is not None:
            # Signing covers the patched ID, so each recipient's TSIG is
            # computed over its own datagram (no MAC sharing).
            wire = sign(wire, self.tsig_key, sent_at)
        self.socket.request(
            wire, cache, msg_id,
            lambda payload, src: self._on_ack(cache, name, rrtype, sent_at,
                                              payload, seq),
            retry=self.retry,
            on_attempt=lambda attempt: self._on_attempt(
                cache, name, rrtype, msg_id, seq, attempt))

    def _on_attempt(self, cache: Endpoint, name: Name, rrtype: RRType,
                    msg_id: int, seq: int, attempt: int) -> None:
        if attempt <= 1:
            return
        self.stats.retransmissions += 1
        if self.load_ledger is not None:
            self.load_ledger.record(name.to_text(), "retransmit",
                                    self.simulator.now,
                                    depth=self.stats.in_flight)
        if self.trace is not None:
            self.trace.emit("notify.retransmit", seq=seq,
                            cache=f"{cache[0]}:{cache[1]}",
                            name=name.to_text(), rrtype=rrtype.name,
                            id=msg_id, attempt=attempt)

    def _on_ack(self, cache: Endpoint, name: Name, rrtype: RRType,
                sent_at: float, payload: Optional[bytes],
                seq: int = 0) -> None:
        self.stats.in_flight -= 1
        if payload is None:
            self._record_failure(cache, name, rrtype, seq, "timeout")
            self.unreachable.add(cache)
            return
        if self._ack_verifier is not None:
            try:
                payload = self._ack_verifier.verify(payload,
                                                    self.simulator.now)
            except TsigError:
                self.stats.ack_tsig_failures += 1
                self._record_failure(cache, name, rrtype, seq, "tsig")
                return
        try:
            Message.from_wire(payload)
        except (WireFormatError, ValueError):
            self._record_failure(cache, name, rrtype, seq, "malformed")
            return
        now = self.simulator.now
        rtt = now - sent_at
        self.stats.acks_received += 1
        self.unreachable.discard(cache)
        self.outcomes.append(NotificationOutcome(
            cache, name, rrtype, acked=True, rtt=rtt))
        if self.ack_rtt_hist is not None:
            self.ack_rtt_hist.observe(rtt)
        if self.trace is not None:
            self.trace.emit("notify.ack", t=now, seq=seq,
                            cache=f"{cache[0]}:{cache[1]}",
                            name=name.to_text(), rrtype=rrtype.name,
                            rtt=rtt)
        self._settle(seq, acked=True, at=now)

    def _record_failure(self, cache: Endpoint, name: Name, rrtype: RRType,
                        seq: int, reason: str) -> None:
        self.stats.failures += 1
        self.outcomes.append(NotificationOutcome(cache, name, rrtype,
                                                 acked=False, rtt=None))
        if self.trace is not None:
            self.trace.emit("notify.timeout", seq=seq,
                            cache=f"{cache[0]}:{cache[1]}",
                            name=name.to_text(), rrtype=rrtype.name,
                            reason=reason)
        self._settle(seq, acked=False)

    def _settle(self, seq: int, acked: bool,
                at: Optional[float] = None) -> None:
        """Progress one change's fan-out; on the last resolution, measure
        the consistency window (detection -> last holder acknowledged).

        ``at`` is the clock reading already stamped on the triggering
        ``notify.ack`` event: reusing the same float (instead of reading
        the clock again) keeps ``last_ack`` exactly equal to the recorded
        ack time, so the audit's window recomputation holds bit-for-bit
        on wall clocks too, where two reads are never the same instant.
        """
        progress = self._progress.get(seq) if seq else None
        if progress is None:
            return
        now = at if at is not None else self.simulator.now
        progress.outstanding -= 1
        if acked:
            progress.acked += 1
            progress.last_ack = now
        else:
            progress.failed += 1
        if progress.outstanding > 0:
            return
        del self._progress[seq]
        window = (progress.last_ack - progress.detected_at
                  if progress.last_ack is not None else None)
        if window is not None and self.window_hist is not None:
            self.window_hist.observe(window)
        if self.trace is not None:
            self.trace.emit("change.settled", t=now, seq=seq, window=window,
                            acked=progress.acked, failed=progress.failed)

    # -- reporting ------------------------------------------------------------------

    def ack_ratio(self) -> float:
        """Acknowledged notifications / attempted notifications.

        In-flight notifications count as attempted-but-unacknowledged,
        so a mid-run reading is well-defined instead of optimistically
        reporting 1.0 before the first ack or failure lands.
        """
        total = (self.stats.acks_received + self.stats.failures
                 + self.stats.in_flight)
        return self.stats.acks_received / total if total else 1.0

    def mean_ack_rtt(self) -> Optional[float]:
        """Mean round-trip of acknowledged notifications, or None."""
        rtts = [o.rtt for o in self.outcomes if o.rtt is not None]
        return sum(rtts) / len(rtts) if rtts else None
