"""The declared lease-lifecycle state machine (PROTOCOL.md §10).

DNScup's lease protocol is a small FSM per (cache, RRset) pair: the
holder is *absent* until the server grants a lease, *granted* while the
lease is live (renewals re-enter the same state; expiry and
supersession drop back to absent), and *renegotiating* while a §5.1.2
rate renegotiation is in flight (every outcome — refresh, decline,
failure — returns to granted, because the old lease stays live until
its own timer runs out).

This module is the **normative declaration** of that machine: each
transition row names the protocol action, its source and destination
states, and the trace event the dispatch site emits
(:mod:`repro.obs.trace` registry names).  The ``repro-lint`` rule
``DCUP013`` (:mod:`repro.analysis.rules_fsm`) cross-checks this table
against the actual dispatch sites in :mod:`repro.core.lease`,
:mod:`repro.core.leasearray`, and :mod:`repro.core.renegotiation`:
a declared transition nobody dispatches, or a dispatched lease/renego
event nobody declared, is a finding — the table and the code cannot
drift apart silently.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

__all__ = [
    "LEASE_INITIAL",
    "LEASE_STATES",
    "LEASE_TRANSITIONS",
    "check_table",
    "reachable_states",
    "transition_events",
]

#: Per-(cache, RRset) lease lifecycle states.
LEASE_STATES = ("absent", "granted", "renegotiating")

#: Every pair starts with no lease.
LEASE_INITIAL = "absent"

#: ``(transition, source state, destination state, trace event)`` rows.
#: The trace event is the name the dispatch site emits — the runtime
#: footprint DCUP013 matches each row against.
LEASE_TRANSITIONS = (
    ("grant", "absent", "granted", "lease.grant"),
    ("renew", "granted", "granted", "lease.renew"),
    ("expire", "granted", "absent", "lease.expire"),
    ("supersede", "granted", "absent", "lease.revoke"),
    ("renegotiate", "granted", "renegotiating", "renego.send"),
    ("refresh", "renegotiating", "granted", "renego.refresh"),
    ("decline", "renegotiating", "granted", "renego.lost"),
    ("abort", "renegotiating", "granted", "renego.fail"),
)


def transition_events() -> FrozenSet[str]:
    """Every trace event the declared machine dispatches through."""
    return frozenset(row[3] for row in LEASE_TRANSITIONS)


def reachable_states(
        states: Tuple[str, ...] = LEASE_STATES,
        initial: str = LEASE_INITIAL,
        transitions: Tuple[Tuple[str, str, str, str], ...] = LEASE_TRANSITIONS,
) -> FrozenSet[str]:
    """States reachable from ``initial`` over the transition edges."""
    edges: Dict[str, Set[str]] = {}
    for _name, src, dst, _event in transitions:
        edges.setdefault(src, set()).add(dst)
    seen: Set[str] = set()
    frontier: List[str] = [initial] if initial in states else []
    while frontier:
        state = frontier.pop()
        if state in seen:
            continue
        seen.add(state)
        frontier.extend(edges.get(state, ()))
    return frozenset(seen)


def check_table(
        states: Tuple[str, ...] = LEASE_STATES,
        initial: str = LEASE_INITIAL,
        transitions: Tuple[Tuple[str, str, str, str], ...] = LEASE_TRANSITIONS,
) -> List[str]:
    """Structural problems with a declared table, as human-oriented
    strings; the shipped table must check out empty (tested)."""
    problems: List[str] = []
    if initial not in states:
        problems.append(f"initial state {initial!r} not in LEASE_STATES")
    seen_names: Set[str] = set()
    for name, src, dst, event in transitions:
        if name in seen_names:
            problems.append(f"duplicate transition name {name!r}")
        seen_names.add(name)
        for role, state in (("source", src), ("destination", dst)):
            if state not in states:
                problems.append(
                    f"transition {name!r} has unknown {role} state "
                    f"{state!r}")
        if "." not in event:
            problems.append(
                f"transition {name!r} event {event!r} is not a dotted "
                f"trace-registry name")
    reachable = reachable_states(states, initial, transitions)
    for state in states:
        if state not in reachable:
            problems.append(f"state {state!r} is unreachable from "
                            f"{initial!r}")
    return problems
