"""Delegation consistency guard (paper §1).

"We can apply the functionality of DNScup to maintain state consistency
between a DNS nameserver of a parent zone and the DNS nameservers of
its child zones, preventing the lame delegation problem."

A delegation goes lame when the child renumbers or renames its
nameservers and the parent's NS/glue copies go stale — structurally the
same staleness DNScup fixes for ordinary records.  The
:class:`DelegationGuard` runs beside a child zone's master: it watches
the apex NS RRset and the nameservers' glue A records, and pushes every
change to the parent zone's server as an RFC 2136 UPDATE over the wire,
with retransmission until the parent acknowledges.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..dnslib import (
    Message,
    Name,
    Rcode,
    ResourceRecord,
    RRType,
    WireFormatError,
    make_update,
)
from ..net import Endpoint, RetryPolicy, Socket
from ..zone import Zone, ZoneChange, update_delete_rrset
from .detection import DetectionModule, RecordChange


@dataclasses.dataclass
class DelegationGuardStats:
    """Counters exposed for tests, benchmarks and operators."""
    changes_seen: int = 0
    updates_sent: int = 0
    updates_accepted: int = 0
    updates_rejected: int = 0
    failures: int = 0


class DelegationGuard:
    """Pushes a child zone's delegation data up to its parent."""

    def __init__(self, child_zone: Zone, parent_endpoint: Endpoint,
                 socket: Socket, parent_origin: Optional[Name] = None,
                 retry: Optional[RetryPolicy] = None):
        self.child_zone = child_zone
        self.parent_endpoint = parent_endpoint
        self.socket = socket
        self.parent_origin = (parent_origin if parent_origin is not None
                              else child_zone.origin.parent())
        self.retry = retry or RetryPolicy(initial_timeout=1.0, max_attempts=4)
        self.stats = DelegationGuardStats()
        child_zone.add_change_listener(self._on_zone_change)

    def detach(self) -> None:
        """Unhook from all event sources."""
        self.child_zone.remove_change_listener(self._on_zone_change)

    # -- change filtering ------------------------------------------------------

    def _on_zone_change(self, zone: Zone, changes: List[ZoneChange]) -> None:
        relevant = False
        for name, rrtype, _old, _new in changes:
            if rrtype == RRType.NS and name == zone.origin:
                relevant = True
            elif rrtype == RRType.A and self._is_nameserver_name(name):
                relevant = True
        if relevant:
            self.stats.changes_seen += 1
            self.push_delegation()

    def _is_nameserver_name(self, name: Name) -> bool:
        ns_rrset = self.child_zone.get_rrset(self.child_zone.origin,
                                             RRType.NS)
        if ns_rrset is None:
            return False
        return any(rdata.target == name for rdata in ns_rrset.rdatas)

    # -- the push ------------------------------------------------------------------

    def push_delegation(self) -> None:
        """Send the current apex NS set (+ glue) to the parent."""
        message = self.build_update()
        if message is None:
            return
        self.stats.updates_sent += 1
        self.socket.request(
            message.to_wire(), self.parent_endpoint, message.id,
            self._on_response, retry=self.retry)

    def build_update(self) -> Optional[Message]:
        """The RFC 2136 message that re-states the delegation."""
        origin = self.child_zone.origin
        ns_rrset = self.child_zone.get_rrset(origin, RRType.NS)
        if ns_rrset is None:
            return None
        message = make_update(self.parent_origin)
        message.update.append(update_delete_rrset(origin, RRType.NS))
        for record in ns_rrset.to_records():
            message.update.append(record)
        # Glue: in-zone nameserver addresses travel along.
        for rdata in ns_rrset.rdatas:
            target = rdata.target
            if not target.is_subdomain_of(origin):
                continue
            glue = self.child_zone.get_rrset(target, RRType.A)
            message.update.append(update_delete_rrset(target, RRType.A))
            if glue is not None:
                message.update.extend(glue.to_records())
        return message

    def _on_response(self, payload: Optional[bytes],
                     src: Optional[Endpoint]) -> None:
        if payload is None:
            self.stats.failures += 1
            return
        try:
            response = Message.from_wire(payload)
        except (WireFormatError, ValueError):
            self.stats.failures += 1
            return
        if response.rcode == Rcode.NOERROR:
            self.stats.updates_accepted += 1
        else:
            self.stats.updates_rejected += 1
