"""Leases and the track file.

The authoritative DNScup server keeps, per paper §5.2, a database file
("track file") of the local nameservers that queried each tracked record
and were granted leases.  Each tuple carries exactly the five fields the
prototype stores: **source address, zone/owner name, query type, query
time, lease length**.  :class:`LeaseTable` is that file in memory with an
expiry index; :func:`save_track_file` / :func:`load_track_file` give it
the on-disk form so a restarted server resumes its obligations.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from ..dnslib import Name, RRType, as_name
from ..net import Endpoint

#: Leases are tracked per (owner name, rrtype) — the unit of consistency.
RecordKey = Tuple[Name, RRType]


@dataclasses.dataclass
class Lease:
    """One granted lease: the paper's five-field track-file tuple."""

    cache: Endpoint          # source address of the local nameserver
    name: Name               # queried owner name
    rrtype: RRType           # query type
    granted_at: float        # query time
    length: float            # lease length, seconds

    @property
    def expires_at(self) -> float:
        """Absolute expiry time of this lease."""
        return self.granted_at + self.length

    def is_valid(self, now: float) -> bool:
        """True while unexpired at time ``now``."""
        return now < self.expires_at

    def remaining(self, now: float) -> float:
        """Seconds left before expiry (never negative)."""
        return max(0.0, self.expires_at - now)

    def key(self) -> RecordKey:
        """The lookup key for this object."""
        return (self.name, self.rrtype)


@dataclasses.dataclass
class LeaseTableStats:
    """Counters exposed for tests, benchmarks and operators."""
    grants: int = 0
    renewals: int = 0
    expirations: int = 0
    revocations: int = 0
    peak_active: int = 0


class LeaseTable:
    """All live leases on one authoritative server.

    Lookup paths:

    * by record — "who must I notify about this change?"
      (:meth:`holders`), the notification module's question;
    * by cache — "what does this nameserver hold?" (:meth:`leases_of`),
      used for re-negotiation when a cache's rates shift (§5.1.2).

    Expired leases are swept lazily on access and explicitly via
    :meth:`sweep`.  ``capacity`` bounds live leases — the storage
    allowance P_max of §4.2.1; :meth:`grant` refuses beyond it.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self.stats = LeaseTableStats()
        self._by_record: Dict[RecordKey, Dict[Endpoint, Lease]] = {}
        self._active = 0
        #: Observability hooks, attached by the DNScup middleware when an
        #: :class:`repro.obs.Observability` bundle is configured: a
        #: :class:`repro.obs.TraceBus` receiving ``lease.*`` lifecycle
        #: events, and a :class:`repro.obs.Histogram` of granted lease
        #: lengths.  None by default — the guarded emits cost nothing.
        self.trace = None
        self.length_hist = None
        #: Load-attribution hook: a per-server
        #: :class:`repro.obs.load.LoadRecorder` facet.  Grants are
        #: query-class load, renewals renewal-class (PROTOCOL §9.5).
        self.load_ledger = None

    # -- mutation ------------------------------------------------------------

    def grant(self, cache: Endpoint, name, rrtype: RRType,
              now: float, length: float) -> Optional[Lease]:
        """Grant or renew a lease; None when the storage budget is full."""
        if length <= 0:
            raise ValueError(f"lease length must be positive: {length}")
        owner = as_name(name)
        key = (owner, RRType(rrtype))
        holders = self._by_record.get(key)
        existing = None if holders is None else holders.get(cache)
        if existing is not None and existing.is_valid(now):
            existing.granted_at = now
            existing.length = length
            self.stats.renewals += 1
            if self.length_hist is not None:
                self.length_hist.observe(length)
            if self.load_ledger is not None:
                self.load_ledger.record(owner.to_text(), "renewal", now)
            if self.trace is not None:
                self.trace.emit("lease.renew", t=now,
                                cache=f"{cache[0]}:{cache[1]}",
                                name=owner.to_text(),
                                rrtype=RRType(rrtype).name, length=length)
            return existing
        if existing is not None:
            # Present but expired: reclaim before counting capacity.
            del holders[cache]
            if not holders:
                del self._by_record[key]
            self._active -= 1
            self.stats.expirations += 1
            if self.trace is not None:
                self.trace.emit("lease.expire", t=now,
                                cache=f"{cache[0]}:{cache[1]}",
                                name=owner.to_text(),
                                rrtype=RRType(rrtype).name)
        if self.capacity is not None and self._active >= self.capacity:
            self.sweep(now)
            if self._active >= self.capacity:
                return None
        lease = Lease(cache, owner, RRType(rrtype), now, length)
        # The holders dict is (re-)resolved only now: an emergency sweep
        # above may have deleted the record's (emptied) dict, and
        # inserting into a stale reference would leak the lease out of
        # the index while still counting it against capacity.
        self._by_record.setdefault(key, {})[cache] = lease
        self._active += 1
        self.stats.grants += 1
        self.stats.peak_active = max(self.stats.peak_active, self._active)
        if self.length_hist is not None:
            self.length_hist.observe(length)
        if self.load_ledger is not None:
            self.load_ledger.record(owner.to_text(), "query", now)
        if self.trace is not None:
            self.trace.emit("lease.grant", t=now,
                            cache=f"{cache[0]}:{cache[1]}",
                            name=owner.to_text(),
                            rrtype=RRType(rrtype).name, length=length)
        return lease

    def revoke(self, cache: Endpoint, name, rrtype: RRType) -> bool:
        """Drop a lease early (the communication-constrained algorithm's
        "deprivation" step, §4.2.2)."""
        key = (as_name(name), RRType(rrtype))
        holders = self._by_record.get(key)
        if holders and cache in holders:
            del holders[cache]
            self._active -= 1
            self.stats.revocations += 1
            if not holders:
                del self._by_record[key]
            if self.trace is not None:
                self.trace.emit("lease.revoke",
                                cache=f"{cache[0]}:{cache[1]}",
                                name=key[0].to_text(), rrtype=key[1].name)
            return True
        return False

    def sweep(self, now: float) -> int:
        """Remove every expired lease; returns the number removed."""
        removed = 0
        for key in list(self._by_record):
            holders = self._by_record[key]
            for cache in [c for c, lease in holders.items()
                          if not lease.is_valid(now)]:
                del holders[cache]
                removed += 1
                if self.trace is not None:
                    self.trace.emit("lease.expire", t=now,
                                    cache=f"{cache[0]}:{cache[1]}",
                                    name=key[0].to_text(),
                                    rrtype=key[1].name)
            if not holders:
                del self._by_record[key]
        self._active -= removed
        self.stats.expirations += removed
        return removed

    # -- queries ------------------------------------------------------------------

    def holders(self, name, rrtype: RRType, now: float) -> List[Lease]:
        """Valid leases on (name, rrtype) — the caches to notify."""
        key = (as_name(name), RRType(rrtype))
        holders = self._by_record.get(key, {})
        return [lease for lease in holders.values() if lease.is_valid(now)]

    def get(self, cache: Endpoint, name, rrtype: RRType) -> Optional[Lease]:
        """Lookup by key; None when absent."""
        key = (as_name(name), RRType(rrtype))
        return self._by_record.get(key, {}).get(cache)

    def leases_of(self, cache: Endpoint, now: float) -> List[Lease]:
        """Every valid lease held by one local nameserver."""
        result = []
        for holders in self._by_record.values():
            lease = holders.get(cache)
            if lease is not None and lease.is_valid(now):
                result.append(lease)
        return result

    def active_count(self, now: Optional[float] = None) -> int:
        """Live leases; pass ``now`` to exclude expired-but-unswept ones."""
        if now is None:
            return self._active
        return sum(1 for holders in self._by_record.values()
                   for lease in holders.values() if lease.is_valid(now))

    def tracked_records(self) -> List[RecordKey]:
        """(name, type) pairs with at least one lease entry."""
        return list(self._by_record.keys())

    def __iter__(self) -> Iterator[Lease]:
        for holders in self._by_record.values():
            yield from holders.values()

    def __len__(self) -> int:
        return self._active

    def __repr__(self) -> str:
        return (f"LeaseTable(active={self._active}, "
                f"records={len(self._by_record)}, capacity={self.capacity})")


# -- the on-disk track file ------------------------------------------------------


TRACK_FILE_HEADER = "# DNScup track file v1: addr port name type granted_at length"


def save_track_file(table: LeaseTable, target: Union[str, TextIO]) -> int:
    """Write every lease (valid or not) as one line per tuple."""
    own = isinstance(target, str)
    stream: TextIO = open(target, "w") if own else target  # type: ignore[arg-type]
    try:
        stream.write(TRACK_FILE_HEADER + "\n")
        count = 0
        for lease in table:
            stream.write(
                f"{lease.cache[0]} {lease.cache[1]} {lease.name.to_text()} "
                f"{lease.rrtype.name} {lease.granted_at!r} {lease.length!r}\n")
            count += 1
        return count
    finally:
        if own:
            stream.close()


def load_track_file(source: Union[str, TextIO],
                    capacity: Optional[int] = None) -> LeaseTable:
    """Rebuild a :class:`LeaseTable` from its on-disk form."""
    own = isinstance(source, str)
    stream: TextIO = open(source) if own else source  # type: ignore[arg-type]
    try:
        table = LeaseTable(capacity=capacity)
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 6:
                raise ValueError(f"track file line {lineno}: want 6 fields, "
                                 f"got {len(fields)}")
            addr, port, name, rrtype, granted_at, length = fields
            lease = Lease((addr, int(port)), as_name(name),
                          RRType.from_text(rrtype), float(granted_at),
                          float(length))
            holders = table._by_record.setdefault(lease.key(), {})
            if lease.cache not in holders:
                table._active += 1
            holders[lease.cache] = lease
        return table
    finally:
        if own:
            stream.close()
