"""Offline dynamic-lease optimization (paper §4.2).

The inputs are (record, cache) pairs, each with a measured query rate
λ_ij and the record's maximal lease length L_i.  Granting pair *ij* its
maximal lease contributes ``P_ij = L_i/(L_i + 1/λ_ij)`` of storage and
cuts its message rate from λ_ij (polling) to ``1/(L_i + 1/λ_ij)``.
Because the storage-for-messages exchange rate of a pair is exactly its
query rate (ΔM/ΔP = λ, §4.1), both problems greedily rank pairs by rate:

* **SLP** (storage-constrained, §4.2.1): grant maximal leases in
  *descending* rate order until the storage budget P_max binds —
  minimizes total message rate under the budget.
* **CLP** (communication-constrained, §4.2.2): start with everyone
  granted, then *deprive* pairs in ascending rate order until the
  message budget is met — minimizes leases held.

Both are knapsack-style and NP-complete in general; the greedy is the
paper's approximation.  :func:`storage_constrained_exact` is a tiny-
instance dynamic program used in tests to bound the greedy's gap.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .analytical import LeaseOperatingPoint, lease_probability, operating_point, renewal_rate


@dataclasses.dataclass(frozen=True)
class LeaseInstance:
    """One (record, cache) pair offered to the optimizer."""

    record: Hashable
    cache: Hashable
    query_rate: float      # λ_ij, queries/second
    max_lease: float       # L_i, seconds

    def __post_init__(self) -> None:
        if self.query_rate < 0:
            raise ValueError(f"negative query rate: {self.query_rate}")
        if self.max_lease < 0:
            raise ValueError(f"negative max lease: {self.max_lease}")

    @property
    def storage_cost(self) -> float:
        """P_ij when granted its maximal lease."""
        return lease_probability(self.max_lease, self.query_rate)

    @property
    def message_rate_granted(self) -> float:
        """Upstream message rate when leased (renewals)."""
        return renewal_rate(self.max_lease, self.query_rate)

    @property
    def message_rate_denied(self) -> float:
        """Upstream message rate when unleased (polling)."""
        return self.query_rate

    @property
    def message_saving(self) -> float:
        """Message-rate reduction bought by granting this pair."""
        return self.message_rate_denied - self.message_rate_granted


@dataclasses.dataclass
class LeaseAssignment:
    """Optimizer output: which pairs hold leases, plus the totals."""

    instances: Sequence[LeaseInstance]
    granted: Dict[Tuple[Hashable, Hashable], float]  # pair key -> lease length

    def lease_length_for(self, instance: LeaseInstance) -> float:
        """The lease length assigned to ``instance`` (0 = none)."""
        return self.granted.get((instance.record, instance.cache), 0.0)

    def operating_point(self) -> LeaseOperatingPoint:
        """Aggregate storage/communication of this assignment."""
        return operating_point(
            (inst.query_rate, self.lease_length_for(inst))
            for inst in self.instances)

    @property
    def granted_count(self) -> int:
        """Number of pairs holding leases."""
        return len(self.granted)

    def rate_threshold(self) -> Optional[float]:
        """The smallest granted rate — the online policy's dual threshold."""
        granted_rates = [inst.query_rate for inst in self.instances
                         if (inst.record, inst.cache) in self.granted]
        return min(granted_rates) if granted_rates else None


def storage_constrained(instances: Sequence[LeaseInstance],
                        storage_budget: float) -> LeaseAssignment:
    """SLP greedy: maximal leases by descending query rate within budget.

    ``storage_budget`` is in expected-lease units (the sum of P_ij the
    server may carry); the paper's P_max.  Granting stops at the first
    pair that would overflow the budget — and, because the greedy covers
    the highest query rates first, "the total query rate covered by
    leases is maximal" (§4.2.1).
    """
    if storage_budget < 0:
        raise ValueError(f"negative storage budget: {storage_budget}")
    order = sorted(instances, key=lambda inst: inst.query_rate, reverse=True)
    granted: Dict[Tuple[Hashable, Hashable], float] = {}
    used = 0.0
    for inst in order:
        if inst.max_lease <= 0 or inst.query_rate <= 0:
            continue
        cost = inst.storage_cost
        if used + cost > storage_budget + 1e-12:
            continue
        used += cost
        granted[(inst.record, inst.cache)] = inst.max_lease
    return LeaseAssignment(list(instances), granted)


def communication_constrained(instances: Sequence[LeaseInstance],
                              message_budget: float) -> LeaseAssignment:
    """CLP greedy: start fully granted, deprive lowest rates first.

    ``message_budget`` is the allowed total upstream message rate
    (messages/second).  Deprivation of a pair raises the total message
    rate by its saving, so we shed the *cheapest* savings — the smallest
    query rates — keeping the lease count minimal for the budget.
    """
    if message_budget < 0:
        raise ValueError(f"negative message budget: {message_budget}")
    granted: Dict[Tuple[Hashable, Hashable], float] = {
        (inst.record, inst.cache): inst.max_lease
        for inst in instances if inst.max_lease > 0 and inst.query_rate > 0}
    total = sum(inst.message_rate_granted if (inst.record, inst.cache) in granted
                else inst.message_rate_denied for inst in instances)
    if total <= message_budget:
        # Already satisfied with everyone leased: deprive as much as
        # possible while staying within the budget (minimal lease count).
        order = sorted(instances, key=lambda inst: inst.query_rate)
        for inst in order:
            key = (inst.record, inst.cache)
            if key not in granted:
                continue
            if total + inst.message_saving <= message_budget + 1e-12:
                del granted[key]
                total += inst.message_saving
        return LeaseAssignment(list(instances), granted)
    raise ValueError(
        "message budget below the fully-leased floor: "
        f"budget={message_budget}, floor={total} — no assignment can satisfy it")


def communication_constrained_floor(instances: Sequence[LeaseInstance]) -> float:
    """The minimum achievable message rate (everyone granted)."""
    return sum(inst.message_rate_granted for inst in instances)


def storage_constrained_exact(instances: Sequence[LeaseInstance],
                              storage_budget: float,
                              resolution: int = 1000) -> LeaseAssignment:
    """Exact 0/1-knapsack solution by DP on discretized storage cost.

    Exponentially safer than brute force but still only for *small*
    instances (tests and the optimality-gap ablation); cost is
    O(len(instances) × resolution).
    """
    scale = resolution / max(storage_budget, 1e-12)
    budget_units = resolution
    usable = [inst for inst in instances
              if inst.max_lease > 0 and inst.query_rate > 0
              and int(round(inst.storage_cost * scale)) <= budget_units]
    # dp[u] = (best total message saving, chosen set) using <= u units.
    best_saving = [0.0] * (budget_units + 1)
    chosen: List[List[LeaseInstance]] = [[] for _ in range(budget_units + 1)]
    for inst in usable:
        cost_units = max(1, int(round(inst.storage_cost * scale)))
        saving = inst.message_saving
        for units in range(budget_units, cost_units - 1, -1):
            candidate = best_saving[units - cost_units] + saving
            if candidate > best_saving[units]:
                best_saving[units] = candidate
                chosen[units] = chosen[units - cost_units] + [inst]
    winners = chosen[budget_units]
    granted = {(inst.record, inst.cache): inst.max_lease for inst in winners}
    return LeaseAssignment(list(instances), granted)


def sweep_storage_budgets(instances: Sequence[LeaseInstance],
                          budgets: Sequence[float]
                          ) -> List[Tuple[float, LeaseOperatingPoint]]:
    """Evaluate the SLP greedy across budgets — the dynamic curve of Fig 5."""
    return [(budget, storage_constrained(instances, budget).operating_point())
            for budget in budgets]
