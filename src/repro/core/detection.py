"""The detection module: notices DNS record changes (paper Figure 6).

Two detection paths mirror the prototype:

* **event-driven** — dynamic updates and API mutations commit through
  :class:`~repro.zone.zone.Zone`, whose change listeners fire
  synchronously; this is the path RFC 2136 UPDATE messages take;
* **polling** — zones edited out-of-band (an operator rewriting a zone
  file) are diffed against a snapshot on a timer, the way the prototype
  watches the zone database file.

Either way the output is uniform: a stream of :class:`RecordChange`
events handed to the registered sinks (the notification module).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from ..dnslib import Name, RRSet, RRType
from ..net import ClockLike, PeriodicTimer
from ..zone import Zone, ZoneChange, diff_snapshots


@dataclasses.dataclass(frozen=True)
class RecordChange:
    """One detected RRset change on an authoritative server."""

    zone_origin: Name
    name: Name
    rrtype: RRType
    old: Optional[RRSet]
    new: Optional[RRSet]
    detected_at: float
    #: Correlation id assigned by the detection module (1-based, unique
    #: per module); 0 means "not tracked" (hand-built changes in tests).
    #: Trace events downstream carry this seq so one change's fan-out is
    #: reconstructible from the trace alone.
    seq: int = 0

    @property
    def is_deletion(self) -> bool:
        """True when the record was removed."""
        return self.new is None

    @property
    def is_addition(self) -> bool:
        """True when the record is new."""
        return self.old is None

    @property
    def kind(self) -> str:
        """``add`` / ``delete`` / ``update``, for traces and logs."""
        if self.old is None:
            return "add"
        if self.new is None:
            return "delete"
        return "update"


ChangeSink = Callable[[RecordChange], None]


class DetectionModule:
    """Watches zones and fans record changes out to sinks."""

    def __init__(self, simulator: ClockLike):
        self.simulator = simulator
        self._sinks: List[ChangeSink] = []
        self._watched: Dict[Name, Zone] = {}
        self._snapshots: Dict[Name, dict] = {}
        self._poll_timers: Dict[Name, PeriodicTimer] = {}
        self.changes_detected = 0
        #: Record types excluded from notification; SOA serial churn is
        #: replication bookkeeping, not a DN2IP mapping change.
        self.ignored_types = {RRType.SOA}
        #: Optional :class:`repro.obs.TraceBus` receiving
        #: ``change.detected`` events; attached by the middleware.
        self.trace = None

    # -- wiring ---------------------------------------------------------------

    def add_sink(self, sink: ChangeSink) -> None:
        """Register a consumer of detected changes."""
        self._sinks.append(sink)

    def watch_zone(self, zone: Zone, poll_interval: Optional[float] = None) -> None:
        """Subscribe to ``zone``'s commits; optionally poll for external edits."""
        if zone.origin in self._watched:
            raise ValueError(f"already watching {zone.origin}")
        self._watched[zone.origin] = zone
        zone.add_change_listener(self._on_zone_commit)
        if poll_interval is not None:
            self._snapshots[zone.origin] = zone.snapshot()
            self._poll_timers[zone.origin] = PeriodicTimer(
                self.simulator, poll_interval,
                lambda origin=zone.origin: self._poll(origin))

    def unwatch_zone(self, origin: Name) -> None:
        """Stop watching ``origin`` (event and polling paths)."""
        zone = self._watched.pop(origin, None)
        if zone is not None:
            zone.remove_change_listener(self._on_zone_commit)
        timer = self._poll_timers.pop(origin, None)
        if timer is not None:
            timer.stop()
        self._snapshots.pop(origin, None)

    # -- event-driven path ---------------------------------------------------------

    def _on_zone_commit(self, zone: Zone, changes: List[ZoneChange]) -> None:
        for name, rrtype, old, new in changes:
            self._emit(zone.origin, name, rrtype, old, new)
        if zone.origin in self._snapshots:
            # Keep the polling baseline current so the same change is not
            # re-detected by the next poll.
            self._snapshots[zone.origin] = zone.snapshot()

    # -- polling path -----------------------------------------------------------------

    def _poll(self, origin: Name) -> None:
        zone = self._watched.get(origin)
        if zone is None:
            return
        baseline = self._snapshots.get(origin, {})
        current = zone.snapshot()
        for name, rrtype, old, new in diff_snapshots(baseline, current):
            self._emit(origin, name, rrtype, old, new)
        self._snapshots[origin] = current

    # -- emission -----------------------------------------------------------------------

    def _emit(self, origin: Name, name: Name, rrtype: RRType,
              old: Optional[RRSet], new: Optional[RRSet]) -> None:
        if rrtype in self.ignored_types:
            return
        self.changes_detected += 1
        change = RecordChange(origin, name, rrtype, old, new,
                              self.simulator.now,
                              seq=self.changes_detected)
        if self.trace is not None:
            self.trace.emit("change.detected", t=change.detected_at,
                            seq=change.seq, zone=origin.to_text(),
                            name=name.to_text(), rrtype=rrtype.name,
                            kind=change.kind)
        for sink in list(self._sinks):
            sink(change)
