"""DNScup core: the paper's contribution.

Dynamic leases (analytical model, track file, grant policies, offline
optimizers) and the three prototype modules — detection, listening,
notification — assembled into middleware by :class:`DNScup`.
"""

from .analytical import (
    LeaseOperatingPoint,
    fixed_lease_curve,
    lease_probability,
    message_rate_reduction,
    operating_point,
    probability_increase,
    renewal_rate,
    tradeoff_ratio,
)
from .detection import ChangeSink, DetectionModule, RecordChange
from .lease import (
    Lease,
    LeaseTable,
    LeaseTableStats,
    load_track_file,
    save_track_file,
)
from .leasearray import ArrayLeaseTable
from .listening import ListeningModule, ListeningStats
from .middleware import DNScup, DNScupConfig, attach_dnscup, category_max_lease
from .notification import NotificationModule, NotificationOutcome, NotificationStats
from .optimizer import (
    LeaseAssignment,
    LeaseInstance,
    communication_constrained,
    communication_constrained_floor,
    storage_constrained,
    storage_constrained_exact,
    sweep_storage_budgets,
)
from .delegation_guard import DelegationGuard, DelegationGuardStats
from .renegotiation import RenegotiationAgent, RenegotiationStats
from .policy import (
    AdaptiveBudgetPolicy,
    DynamicLeasePolicy,
    FixedLeasePolicy,
    GrantDecision,
    LeasePolicy,
    MAX_LEASE_CDN,
    MAX_LEASE_DYN,
    MAX_LEASE_REGULAR,
    MaxLeaseFn,
    NoLeasePolicy,
    constant_max_lease,
)

__all__ = [
    "lease_probability", "renewal_rate", "probability_increase",
    "message_rate_reduction", "tradeoff_ratio", "operating_point",
    "fixed_lease_curve", "LeaseOperatingPoint",
    "Lease", "LeaseTable", "LeaseTableStats", "ArrayLeaseTable",
    "save_track_file", "load_track_file",
    "LeasePolicy", "NoLeasePolicy", "FixedLeasePolicy", "DynamicLeasePolicy",
    "AdaptiveBudgetPolicy", "GrantDecision", "MaxLeaseFn",
    "constant_max_lease",
    "MAX_LEASE_REGULAR", "MAX_LEASE_CDN", "MAX_LEASE_DYN",
    "LeaseInstance", "LeaseAssignment", "storage_constrained",
    "communication_constrained", "communication_constrained_floor",
    "storage_constrained_exact", "sweep_storage_budgets",
    "DetectionModule", "RecordChange", "ChangeSink",
    "ListeningModule", "ListeningStats",
    "NotificationModule", "NotificationStats", "NotificationOutcome",
    "DNScup", "DNScupConfig", "attach_dnscup", "category_max_lease",
    "RenegotiationAgent", "RenegotiationStats",
    "DelegationGuard", "DelegationGuardStats",
]
