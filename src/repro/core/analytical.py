"""The analytical lease model of paper §4.1.

For a record queried by one DNS cache with Poisson arrival rate λ and a
fixed lease length *t*:

* the server holds a lease for that cache a fraction
  ``P = t / (t + 1/λ)`` of the time (Eq. 4.1) — the *lease probability*,
  a proxy for storage overhead;
* the cache sends lease-renewal messages at rate
  ``M = 1 / (t + 1/λ)`` (Eq. 4.2) — the *communication overhead*;
* growing the lease from t₁ to t₂ trades ΔP of storage for −ΔM of
  messages at the constant exchange rate ``ΔM/ΔP = λ`` — which is why
  the greedy algorithms rank (record, cache) pairs purely by query rate.

All functions are scalar and pure; the optimizers and the trace-driven
simulator consume them directly, and the §4.1 bench sweeps them.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence, Tuple


def lease_probability(lease_length: float, query_rate: float) -> float:
    """Eq. 4.1: expected fraction of time the server holds the lease."""
    if lease_length < 0:
        raise ValueError(f"negative lease length: {lease_length}")
    if query_rate < 0:
        raise ValueError(f"negative query rate: {query_rate}")
    if query_rate == 0 or lease_length == 0:
        return 0.0
    return lease_length / (lease_length + 1.0 / query_rate)


def renewal_rate(lease_length: float, query_rate: float) -> float:
    """Eq. 4.2: lease-renewal messages per second from one cache.

    With a zero-length lease this degenerates to polling at the full
    query rate λ — the paper's maximal-query-rate extreme.
    """
    if lease_length < 0:
        raise ValueError(f"negative lease length: {lease_length}")
    if query_rate < 0:
        raise ValueError(f"negative query rate: {query_rate}")
    if query_rate == 0:
        return 0.0
    return 1.0 / (lease_length + 1.0 / query_rate)


def probability_increase(t1: float, t2: float, query_rate: float) -> float:
    """ΔP when the lease grows from ``t1`` to ``t2`` (Eq. 4.3's LHS)."""
    return lease_probability(t2, query_rate) - lease_probability(t1, query_rate)


def message_rate_reduction(t1: float, t2: float, query_rate: float) -> float:
    """−ΔM when the lease grows from ``t1`` to ``t2`` (Eq. 4.4's LHS)."""
    return renewal_rate(t1, query_rate) - renewal_rate(t2, query_rate)


def tradeoff_ratio(t1: float, t2: float, query_rate: float) -> float:
    """ΔM reduction per unit of ΔP increase; analytically equals λ."""
    dp = probability_increase(t1, t2, query_rate)
    if dp == 0.0:
        raise ValueError("degenerate lease change: ΔP is zero")
    return message_rate_reduction(t1, t2, query_rate) / dp


@dataclasses.dataclass(frozen=True)
class LeaseOperatingPoint:
    """Aggregate storage/communication for a set of (rate, lease) pairs."""

    #: Expected number of simultaneously held leases (sum of P_ij).
    expected_leases: float
    #: Total upstream message rate, renewals plus polling (sum of M_ij).
    message_rate: float
    #: Sum of raw query rates — the polling (no-lease) message rate.
    max_message_rate: float
    #: Number of (record, cache) pairs — the storage ceiling.
    pair_count: int

    @property
    def storage_percentage(self) -> float:
        """Paper §5.1.2's storage metric: held / maximum grantable, in %."""
        if self.pair_count == 0:
            return 0.0
        return 100.0 * self.expected_leases / self.pair_count

    @property
    def query_rate_percentage(self) -> float:
        """Paper §5.1.2's communication metric: actual / polling rate, %."""
        if self.max_message_rate == 0:
            return 0.0
        return 100.0 * self.message_rate / self.max_message_rate


def operating_point(pairs: Iterable[Tuple[float, float]]) -> LeaseOperatingPoint:
    """Evaluate an assignment of lease lengths.

    ``pairs`` yields (query_rate, lease_length) per (record, cache) pair;
    a lease length of zero means "no lease" and contributes polling
    traffic at the full query rate.
    """
    expected = 0.0
    messages = 0.0
    maximum = 0.0
    count = 0
    for query_rate, lease_length in pairs:
        expected += lease_probability(lease_length, query_rate)
        messages += renewal_rate(lease_length, query_rate)
        maximum += query_rate
        count += 1
    return LeaseOperatingPoint(expected, messages, maximum, count)


def fixed_lease_curve(rates: Sequence[float], lease_lengths: Sequence[float]
                      ) -> Sequence[Tuple[float, float, float]]:
    """The fixed-length-lease trade-off curve of Figure 5.

    For each candidate lease length (applied uniformly to every pair, the
    "simple fixed-length lease scheme" of §5.1.2) returns
    ``(lease_length, storage_percentage, query_rate_percentage)``.
    """
    curve = []
    for lease_length in lease_lengths:
        point = operating_point((rate, lease_length) for rate in rates)
        curve.append((lease_length, point.storage_percentage,
                      point.query_rate_percentage))
    return curve
