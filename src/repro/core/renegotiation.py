"""Lease renegotiation (paper §5.1.2).

"In reality, a DNS cache may monitor the rates of cached records in the
incoming queries.  When it detects a significant change in query rates,
the DNS cache will notify the authoritative DNS nameserver to
re-negotiate the current leases."

The :class:`RenegotiationAgent` runs on the local nameserver: on a
timer it compares each leased record's *current* client query rate with
the rate reported when the lease was granted.  A shift beyond
``change_factor`` (in either direction) triggers a renegotiation — a
direct DNScup-aware query to the granting server carrying the fresh RRC
value.  The server's listening module then re-decides:

* rate went up → the record clears the grant threshold more easily and
  the lease is refreshed (and the answer re-fetched, a freshness bonus);
* rate collapsed → the server declines, the cache notes the loss, and
  the entry decays back to plain TTL behaviour when the old lease ends.

No new message type is needed: renegotiation *is* a query with an
up-to-date RRC, exactly the incremental-deployment spirit of the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..dnslib import Message, Name, RRType, WireFormatError, make_query
from ..net import PeriodicTimer
from ..server.rates import rate_to_rrc
from ..server.resolver import LeaseGrantInfo, RecursiveResolver


@dataclasses.dataclass
class RenegotiationStats:
    """Counters exposed for tests, benchmarks and operators."""
    checks: int = 0
    renegotiations_sent: int = 0
    leases_refreshed: int = 0
    leases_lost: int = 0
    failures: int = 0


class RenegotiationAgent:
    """Cache-side rate monitoring and lease renegotiation."""

    def __init__(self, resolver: RecursiveResolver,
                 interval: float = 300.0,
                 change_factor: float = 4.0,
                 min_rate_floor: float = 1e-6,
                 trace=None):
        if change_factor <= 1.0:
            raise ValueError("change_factor must exceed 1")
        if not resolver.dnscup_enabled:
            raise ValueError("renegotiation needs a DNScup-enabled resolver")
        self.resolver = resolver
        self.change_factor = change_factor
        self.min_rate_floor = min_rate_floor
        self.stats = RenegotiationStats()
        #: Optional :class:`repro.obs.TraceBus` receiving ``renego.*``
        #: events; costs nothing while None.
        self.trace = trace
        #: Load-attribution hook: the full
        #: :class:`repro.obs.load.LoadLedger` (not a per-server facet —
        #: the agent targets whichever server granted each lease), so
        #: renegotiations count as renewal-class load on the *granting*
        #: server's ledger row.
        self.load_ledger = None
        self._timer = PeriodicTimer(resolver.host.simulator, interval,
                                    self.run_once)

    def stop(self) -> None:
        """Stop permanently; safe to call more than once."""
        self._timer.stop()

    # -- one scan ------------------------------------------------------------

    def run_once(self) -> int:
        """Scan all leased records; returns renegotiations initiated."""
        resolver = self.resolver
        now = resolver.now
        initiated = 0
        for key in list(resolver.lease_grants):
            info = resolver.lease_grants[key]
            entry = resolver.cache.peek(*key)
            if entry is None or not entry.has_lease(now):
                # Lease lapsed (or entry evicted): nothing to renegotiate.
                del resolver.lease_grants[key]
                continue
            self.stats.checks += 1
            current = resolver.rates.rate(key, now)
            if self._significant_change(info.rate_at_grant, current):
                self._renegotiate(key, info, current)
                initiated += 1
        return initiated

    def _significant_change(self, old_rate: float, new_rate: float) -> bool:
        old_rate = max(old_rate, self.min_rate_floor)
        new_rate = max(new_rate, self.min_rate_floor)
        ratio = new_rate / old_rate
        return ratio >= self.change_factor or ratio <= 1.0 / self.change_factor

    # -- the exchange ------------------------------------------------------------

    def _renegotiate(self, key: Tuple[Name, RRType], info: LeaseGrantInfo,
                     current_rate: float) -> None:
        resolver = self.resolver
        query = make_query(key[0], key[1], recursion_desired=False,
                           rrc=rate_to_rrc(current_rate))
        self.stats.renegotiations_sent += 1
        if self.load_ledger is not None:
            self.load_ledger.record(f"{info.origin[0]}:{info.origin[1]}",
                                    key[0].to_text(), "renewal",
                                    resolver.now)
        if self.trace is not None:
            self.trace.emit("renego.send", name=key[0].to_text(),
                            rrtype=key[1].name, rate=current_rate,
                            id=query.id)
        resolver.upstream_socket.request(
            query.to_wire(), info.origin, query.id,
            lambda payload, src: self._on_response(key, info, current_rate,
                                                   payload),
            retry=resolver.retry)

    def _on_response(self, key: Tuple[Name, RRType], info: LeaseGrantInfo,
                     current_rate: float,
                     payload: Optional[bytes]) -> None:
        resolver = self.resolver
        now = resolver.now
        if payload is None:
            self.stats.failures += 1
            if self.trace is not None:
                self.trace.emit("renego.fail", name=key[0].to_text(),
                                rrtype=key[1].name, reason="timeout")
            return
        try:
            response = Message.from_wire(payload)
        except (WireFormatError, ValueError):
            self.stats.failures += 1
            if self.trace is not None:
                self.trace.emit("renego.fail", name=key[0].to_text(),
                                rrtype=key[1].name, reason="malformed")
            return
        # Freshness bonus: adopt the re-fetched answer either way.
        from ..dnslib import records_to_rrsets
        for rrset in records_to_rrsets(response.answer):
            if (rrset.name, rrset.rrtype) == key:
                resolver.cache.apply_cache_update(rrset, now)
        if response.llt:
            resolver.cache.set_lease(key[0], key[1], now + response.llt)
            resolver.lease_grants[key] = LeaseGrantInfo(
                origin=info.origin, granted_at=now,
                llt=float(response.llt), rate_at_grant=current_rate)
            self.stats.leases_refreshed += 1
            if self.trace is not None:
                self.trace.emit("renego.refresh", t=now,
                                name=key[0].to_text(), rrtype=key[1].name,
                                llt=float(response.llt))
        else:
            # Declined: remember the shrunken rate so the agent does not
            # keep re-asking; the old lease simply runs out.
            resolver.lease_grants[key] = dataclasses.replace(
                info, rate_at_grant=current_rate)
            self.stats.leases_lost += 1
            if self.trace is not None:
                self.trace.emit("renego.lost", t=now,
                                name=key[0].to_text(), rrtype=key[1].name)
