"""The §3 measurement study: probing, change classification, statistics."""

from .classify import (
    CAUSE_TO_KIND,
    LOGICAL,
    PHYSICAL,
    ChangeTally,
    aggregate,
    classify_change,
    kind_of,
)
from .prober import (
    DnsDynamicsProber,
    ProbeResult,
    ResolveOracle,
    oracle_from_specs,
    results_by_class,
)
from .stats import (
    ClassSummary,
    GroupSummary,
    MeanWithCI,
    change_frequency_pdf,
    changed_share,
    coefficient_of_variation,
    cv_vs_caching_period,
    interarrival_cv_per_domain,
    mean_change_frequency,
    mean_with_ci95,
    redundancy_factor,
    summarize_campaign,
    summarize_class,
    summarize_groups,
)

__all__ = [
    "classify_change", "kind_of", "ChangeTally", "aggregate",
    "PHYSICAL", "LOGICAL", "CAUSE_TO_KIND",
    "DnsDynamicsProber", "ProbeResult", "ResolveOracle",
    "oracle_from_specs", "results_by_class",
    "change_frequency_pdf", "mean_change_frequency", "changed_share",
    "ClassSummary", "summarize_class", "summarize_campaign",
    "GroupSummary", "summarize_groups",
    "redundancy_factor", "coefficient_of_variation",
    "interarrival_cv_per_domain", "MeanWithCI", "mean_with_ci95",
    "cv_vs_caching_period",
]
