"""The DNS-dynamics prober (paper §3.2).

Each domain is resolved periodically at its TTL class's sampling
resolution for the class's measurement duration (Table 1).  A change is
detected when "the responses of two consecutive DNS probes for the same
domain name are different from each other", and the **relative change
frequency** is detected changes / probes sent.

The prober runs against any resolution oracle — a callable mapping
(name, time) to an address tuple.  In this reproduction the oracle is
the domain's ground-truth :class:`~repro.traces.changes.ChangeProcess`
(:func:`oracle_from_specs`), standing in for the live Internet; the
integration tests also drive it against a real simulated nameserver to
show the two agree.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..dnslib import Name
from ..traces.domains import DomainSpec
from ..traces.ttlclasses import TTLClass, classify_ttl
from .classify import ChangeTally, classify_change

#: (name, time) -> addresses; the "live DNS" the prober samples.
ResolveOracle = Callable[[Name, float], Tuple[str, ...]]


def oracle_from_specs(domains: Sequence[DomainSpec]) -> ResolveOracle:
    """An oracle backed by each domain's ground-truth change process."""
    processes = {domain.name: domain.process for domain in domains}

    def resolve(name: Name, time: float) -> Tuple[str, ...]:
        try:
            return tuple(sorted(processes[name].addresses_at(time)))
        except KeyError:
            raise KeyError(f"unknown domain: {name}") from None

    return resolve


@dataclasses.dataclass
class ProbeResult:
    """Per-domain measurement outcome."""

    name: Name
    ttl_class: TTLClass
    probes: int
    changes: int
    tally: ChangeTally
    #: Probe timestamps at which changes were seen (for lifetime stats).
    change_times: List[float]

    @property
    def change_frequency(self) -> float:
        """Relative change frequency: changes per resolving query."""
        return self.changes / self.probes if self.probes else 0.0

    @property
    def changed(self) -> bool:
        """True when at least one change was observed."""
        return self.changes > 0


class DnsDynamicsProber:
    """Runs the Table 1 campaign over a domain collection."""

    def __init__(self, oracle: ResolveOracle,
                 max_probes_per_domain: Optional[int] = None):
        self.oracle = oracle
        #: Laptop-scale cap: class 5's full campaign is 30 probes/domain
        #: anyway, but class 1 at 20 s over a day is 4,320 — the cap lets
        #: tests shrink runs without changing semantics.
        self.max_probes_per_domain = max_probes_per_domain

    def probe_domain(self, domain: DomainSpec,
                     start_time: float = 0.0) -> ProbeResult:
        """Probe one domain per its Table 1 schedule."""
        ttl_class = classify_ttl(domain.ttl)
        total = ttl_class.probe_count
        if self.max_probes_per_domain is not None:
            total = min(total, self.max_probes_per_domain)
        previous: Optional[Tuple[str, ...]] = None
        seen: Set[str] = set()
        tally = ChangeTally()
        changes = 0
        change_times: List[float] = []
        probes = 0
        for step in range(total):
            time = start_time + step * ttl_class.resolution
            answer = self.oracle(domain.name, time)
            probes += 1
            if previous is not None and answer != previous:
                cause = classify_change(previous, answer, seen)
                tally.add(cause)
                changes += 1
                change_times.append(time)
            if previous is not None:
                seen.update(previous)
            previous = answer
        return ProbeResult(domain.name, ttl_class, probes, changes, tally,
                           change_times)

    def run_campaign(self, domains: Sequence[DomainSpec],
                     start_time: float = 0.0) -> List[ProbeResult]:
        """Probe every domain; returns per-domain results."""
        return [self.probe_domain(domain, start_time) for domain in domains]


def results_by_class(results: Sequence[ProbeResult]
                     ) -> Dict[int, List[ProbeResult]]:
    """Group probe results by TTL class index."""
    grouped: Dict[int, List[ProbeResult]] = {}
    for result in results:
        grouped.setdefault(result.ttl_class.index, []).append(result)
    return grouped
