"""Statistics over measurement results.

Everything the evaluation sections read off the data:

* change-frequency PDFs per TTL class (Figure 2 a–e);
* physical/logical cause shares per class (Figure 2 f);
* implied mean mapping lifetimes (§3.2's 200 s … 500 d numbers);
* redundant-traffic factors for CDN/Dyn domains (§3.2's 10× / 25×);
* coefficient-of-variation analysis of query inter-arrivals with 95 %
  confidence intervals (Figure 4's Poisson validation).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..traces.ttlclasses import TTLClass, class_by_index, expected_lifetime
from ..traces.workload import QueryEvent
from .classify import ChangeTally, aggregate
from .prober import ProbeResult, results_by_class


# -- change-frequency distributions (Figure 2 a-e) ---------------------------------


def change_frequency_pdf(results: Sequence[ProbeResult],
                         bins: int = 20) -> List[Tuple[float, float]]:
    """Histogram of per-domain change frequencies on [0, 1].

    Returns (bin center, probability mass) — Figure 2's PDF panels.  All
    domains are included; unchanged domains pile into the first bin,
    reproducing the dominant spike at zero for classes 3-5.
    """
    if bins < 1:
        raise ValueError("bins must be positive")
    masses = [0] * bins
    total = 0
    for result in results:
        index = min(bins - 1, int(result.change_frequency * bins))
        masses[index] += 1
        total += 1
    if total == 0:
        return [(((i + 0.5) / bins), 0.0) for i in range(bins)]
    return [(((i + 0.5) / bins), masses[i] / total) for i in range(bins)]


def mean_change_frequency(results: Sequence[ProbeResult]) -> float:
    """Mean per-domain change frequency."""
    if not results:
        return 0.0
    return sum(r.change_frequency for r in results) / len(results)


def changed_share(results: Sequence[ProbeResult]) -> float:
    """Fraction of domains that changed at all during the measurement."""
    if not results:
        return 0.0
    return sum(1 for r in results if r.changed) / len(results)


@dataclasses.dataclass(frozen=True)
class ClassSummary:
    """One class's row in the §3.2 narrative."""

    class_index: int
    domains: int
    mean_change_frequency: float
    changed_share: float
    mean_lifetime: float            # seconds; inf when nothing changed
    physical_share: float           # among observed changes
    tally: ChangeTally


def summarize_class(class_index: int,
                    results: Sequence[ProbeResult]) -> ClassSummary:
    """The §3.2 summary row for one TTL class."""
    ttl_class = class_by_index(class_index)
    frequency = mean_change_frequency(results)
    tally = aggregate(r.tally for r in results)
    return ClassSummary(
        class_index=class_index,
        domains=len(results),
        mean_change_frequency=frequency,
        changed_share=changed_share(results),
        mean_lifetime=expected_lifetime(frequency, ttl_class.resolution),
        physical_share=tally.physical_share(),
        tally=tally,
    )


def summarize_campaign(results: Sequence[ProbeResult]) -> Dict[int, ClassSummary]:
    """Per-class summaries for a whole campaign."""
    return {index: summarize_class(index, group)
            for index, group in sorted(results_by_class(results).items())}


@dataclasses.dataclass(frozen=True)
class GroupSummary:
    """Per-category / per-provider dynamics (§3.2's CDN/Dyn discussion)."""

    label: str
    domains: int
    mean_change_frequency: float
    changed_share: float


def summarize_groups(results: Sequence[ProbeResult],
                     group_of: Dict) -> Dict[str, GroupSummary]:
    """Group probe results by an arbitrary labelling.

    ``group_of`` maps domain name → label (e.g. category, or CDN
    provider); unlabelled domains are skipped.  The paper reads these
    groups off its measurements: Akamai ≈10 % change frequency,
    Speedera ≈100 %, Dyn ≈0.4 % (TTL ≥ 300 s) and near zero below.
    """
    buckets: Dict[str, List[ProbeResult]] = {}
    for result in results:
        label = group_of.get(result.name)
        if label is not None:
            buckets.setdefault(label, []).append(result)
    return {label: GroupSummary(
                label=label, domains=len(group),
                mean_change_frequency=mean_change_frequency(group),
                changed_share=changed_share(group))
            for label, group in sorted(buckets.items())}


# -- redundant DNS traffic (§3.2's closing observation) ------------------------------


def redundancy_factor(ttl: float, mean_lifetime: float) -> float:
    """How much more often the record is fetched than it changes.

    A record with TTL 20 s that actually changes every 200 s is polled
    ~10× more than necessary — the paper's CDN (up to 10×) and Dyn (up
    to 25×) redundant-traffic factors.  Values below 1 mean the TTL is
    *too long* for the change rate (staleness risk instead of waste).
    """
    if ttl <= 0:
        raise ValueError("ttl must be positive")
    if math.isinf(mean_lifetime):
        return math.inf
    return mean_lifetime / ttl


# -- inter-arrival CV analysis (Figure 4) ----------------------------------------------


def coefficient_of_variation(intervals: Sequence[float]) -> float:
    """CV = std/mean of inter-arrival times; 1.0 for a Poisson process."""
    n = len(intervals)
    if n < 2:
        raise ValueError("need at least two intervals")
    mean = sum(intervals) / n
    if mean == 0:
        raise ValueError("zero mean interval")
    variance = sum((x - mean) ** 2 for x in intervals) / (n - 1)
    return math.sqrt(variance) / mean


def interarrival_cv_per_domain(events: Sequence[QueryEvent],
                               min_queries: int = 10) -> Dict:
    """Per-domain CV of query inter-arrival times.

    Domains with fewer than ``min_queries`` queries are skipped — too
    few intervals for a meaningful CV, as in the paper's methodology.
    """
    arrivals: Dict = {}
    for event in sorted(events, key=lambda e: e.time):
        arrivals.setdefault(event.name, []).append(event.time)
    cvs = {}
    for name, times in arrivals.items():
        if len(times) < min_queries:
            continue
        intervals = [b - a for a, b in zip(times, times[1:])]
        if all(i == 0 for i in intervals):
            continue
        cvs[name] = coefficient_of_variation(intervals)
    return cvs


@dataclasses.dataclass(frozen=True)
class MeanWithCI:
    """A sample mean with its 95 % confidence half-width."""

    mean: float
    half_width: float
    count: int

    @property
    def low(self) -> float:
        """Lower edge of the 95 % confidence interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper edge of the 95 % confidence interval."""
        return self.mean + self.half_width


def mean_with_ci95(values: Sequence[float]) -> MeanWithCI:
    """Normal-approximation 95 % CI of the mean (z = 1.96)."""
    n = len(values)
    if n == 0:
        raise ValueError("no values")
    mean = sum(values) / n
    if n == 1:
        return MeanWithCI(mean, 0.0, 1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = 1.96 * math.sqrt(variance / n)
    return MeanWithCI(mean, half, n)


def cv_vs_caching_period(requests: Sequence[QueryEvent],
                         caching_periods: Sequence[float],
                         min_queries: int = 10) -> List[Tuple[float, MeanWithCI]]:
    """Figure 4's curve for one nameserver's trace.

    For each client caching period, thin the raw request stream through
    a fresh client cache, compute per-domain inter-arrival CVs of the
    resulting query stream, and report mean CV ± 95 % CI.  As the period
    grows the thinned stream approaches Poisson (mean CV → 1).
    """
    from ..traces.workload import ClientCacheFilter  # late: avoid cycle
    ordered = sorted(requests, key=lambda e: e.time)
    curve = []
    for period in caching_periods:
        cache = ClientCacheFilter(period)
        thinned = [event for event in ordered if cache.offer(event)]
        cvs = interarrival_cv_per_domain(thinned, min_queries=min_queries)
        if not cvs:
            continue
        curve.append((period, mean_with_ci95(list(cvs.values()))))
    return curve
