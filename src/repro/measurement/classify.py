"""Classifying observed mapping changes (paper §3.2 / Figure 2f).

The prober sees only consecutive answer snapshots.  From a pair of
snapshots we infer the cause the way the paper does:

1. **relocation** — the new set shares no address with the old one (the
   domain moved); a *physical* change;
2. **growth** — the new set strictly contains the old one (addresses
   were added); logical;
3. **rotation** — the sets overlap or the new set re-visits addresses
   seen before for this domain (round-robin over a pool); logical.

Classification is per observed change; per-domain and per-class
aggregation feeds Figure 2(f).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..traces.changes import CAUSE_GROWTH, CAUSE_RELOCATION, CAUSE_ROTATION

PHYSICAL = "physical"
LOGICAL = "logical"

CAUSE_TO_KIND = {
    CAUSE_RELOCATION: PHYSICAL,
    CAUSE_GROWTH: LOGICAL,
    CAUSE_ROTATION: LOGICAL,
}


def classify_change(old: Sequence[str], new: Sequence[str],
                    seen_before: Set[str]) -> str:
    """Infer the cause of one observed change.

    ``seen_before`` is every address observed for this domain so far
    (excluding the current snapshot) — revisiting a known address is the
    signature of rotation.
    """
    old_set, new_set = set(old), set(new)
    if not old_set or not new_set:
        # Appearing/disappearing records: treat as relocation (physical).
        return CAUSE_RELOCATION
    if new_set == old_set:
        raise ValueError("not a change: address sets are equal")
    if new_set > old_set:
        return CAUSE_GROWTH
    if new_set & old_set:
        return CAUSE_ROTATION
    if new_set & seen_before:
        return CAUSE_ROTATION
    return CAUSE_RELOCATION


def kind_of(cause: str) -> str:
    """physical / logical for a cause label."""
    try:
        return CAUSE_TO_KIND[cause]
    except KeyError:
        raise ValueError(f"unknown cause: {cause!r}") from None


@dataclasses.dataclass
class ChangeTally:
    """Counts of observed changes by cause (one domain, or aggregated)."""

    relocation: int = 0
    growth: int = 0
    rotation: int = 0

    def add(self, cause: str, count: int = 1) -> None:
        """Add one item."""
        if cause == CAUSE_RELOCATION:
            self.relocation += count
        elif cause == CAUSE_GROWTH:
            self.growth += count
        elif cause == CAUSE_ROTATION:
            self.rotation += count
        else:
            raise ValueError(f"unknown cause: {cause!r}")

    def merge(self, other: "ChangeTally") -> None:
        """Fold ``other``'s counts into this tally."""
        self.relocation += other.relocation
        self.growth += other.growth
        self.rotation += other.rotation

    @property
    def total(self) -> int:
        """Total observed changes."""
        return self.relocation + self.growth + self.rotation

    @property
    def physical(self) -> int:
        """Changes classified as physical (relocations)."""
        return self.relocation

    @property
    def logical(self) -> int:
        """Changes classified as logical (growth + rotation)."""
        return self.growth + self.rotation

    def physical_share(self) -> float:
        """Fraction of observed changes that were physical."""
        return self.physical / self.total if self.total else 0.0

    def shares(self) -> Dict[str, float]:
        """Cause → fraction, the Figure 2(f) bar heights."""
        if not self.total:
            return {CAUSE_RELOCATION: 0.0, CAUSE_GROWTH: 0.0,
                    CAUSE_ROTATION: 0.0}
        return {CAUSE_RELOCATION: self.relocation / self.total,
                CAUSE_GROWTH: self.growth / self.total,
                CAUSE_ROTATION: self.rotation / self.total}


def aggregate(tallies: Iterable[ChangeTally]) -> ChangeTally:
    """Merge many tallies into one."""
    total = ChangeTally()
    for tally in tallies:
        total.merge(tally)
    return total
