"""Streaming audit ≡ batch audit, at every prefix, under tampering.

The :class:`repro.obs.IncrementalAuditor` contract: feeding any
*prefix* of a trace and asking for the report yields exactly the
violation multiset and check counts that :func:`repro.obs.audit_trace`
computes over the same prefix — bit for bit, violation message for
violation message — while holding only the *open* spans in memory.
The Hypothesis property drives that equivalence through randomized
tamperings (drops, duplicates, time shifts, rtt edits, field removals,
swaps) of a clean protocol trace under tight budget/staleness limits,
so both the clean paths and every violation path are exercised at
every prefix length.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    LATENCY_BUCKETS,
    AuditLimits,
    Histogram,
    IncrementalAuditor,
    audit_trace,
    consistency_windows,
)
from repro.sim import Testbed, TestbedConfig, run_figure7_scenario

NAME = "www.example.com."
CACHE_A = "10.0.0.2:53"
CACHE_B = "10.0.0.3:53"

#: Tight limits so even light tampering trips budget/staleness checks.
TIGHT = AuditLimits(storage_budget=1, renewal_budget=0.5,
                    renewal_window=10.0, max_staleness=0.05)

#: The fig7 bench's audit limits (matches benchmarks/bench_fig7*).
FIG7_LIMITS = AuditLimits(storage_budget=500, renewal_budget=50.0,
                          max_staleness=10.0)


def clean_trace():
    """Two lease holders, one change fanned out, both acked, settled —
    the same invariant-clean skeleton ``test_obs_audit`` uses."""
    detected = 10.0
    ack_a, ack_b = 10.2, 10.5
    return [
        (0.0, "lease.grant", {"cache": CACHE_A, "name": NAME,
                              "rrtype": "A", "length": 600.0}),
        (1.0, "lease.grant", {"cache": CACHE_B, "name": NAME,
                              "rrtype": "A", "length": 600.0}),
        (detected, "change.detected", {"seq": 1, "zone": "example.com.",
                                       "name": NAME, "rrtype": "A",
                                       "kind": "update"}),
        (detected, "notify.send", {"seq": 1, "cache": CACHE_A, "name": NAME,
                                   "rrtype": "A", "id": 101}),
        (detected, "notify.send", {"seq": 1, "cache": CACHE_B, "name": NAME,
                                   "rrtype": "A", "id": 102}),
        (10.1, "notify.retransmit", {"seq": 1, "cache": CACHE_B,
                                     "name": NAME, "rrtype": "A",
                                     "id": 102, "attempt": 2}),
        (ack_a, "notify.ack", {"seq": 1, "cache": CACHE_A, "name": NAME,
                               "rrtype": "A", "rtt": ack_a - detected}),
        (ack_b, "notify.ack", {"seq": 1, "cache": CACHE_B, "name": NAME,
                               "rrtype": "A", "rtt": ack_b - detected}),
        (ack_b, "change.settled", {"seq": 1, "window": ack_b - detected,
                                   "acked": 2, "failed": 0}),
        (20.0, "lease.expire", {"cache": CACHE_A, "name": NAME,
                                "rrtype": "A"}),
        (20.0, "lease.expire", {"cache": CACHE_B, "name": NAME,
                                "rrtype": "A"}),
    ]


def violation_key(violation):
    # repr() keeps None/int/float seq and t values mutually sortable
    # without loosening equality.
    return (violation.kind, repr(violation.seq), repr(violation.t),
            tuple(violation.events), violation.message)


def assert_equivalent_at_every_prefix(events, limits):
    """The core oracle: stream report == batch report on every prefix."""
    auditor = IncrementalAuditor(limits=limits)
    for i, event in enumerate(events, start=1):
        auditor.feed(event)
        stream = auditor.report()
        batch = audit_trace(events[:i], limits=limits)
        assert sorted(violation_key(v) for v in stream.violations) \
            == sorted(violation_key(v) for v in batch.violations), \
            f"violation multiset diverged at prefix {i}"
        assert stream.checks == batch.checks, \
            f"check counts diverged at prefix {i}"
        assert stream.ok == batch.ok
        assert stream.events_audited == i


def apply_ops(events, ops):
    """Deterministically tamper ``events`` with a list of edit ops."""
    events = [(t, name, dict(fields)) for t, name, fields in events]
    for kind, index, amount in ops:
        if not events:
            break
        i = index % len(events)
        t, name, fields = events[i]
        if kind == "drop":
            del events[i]
        elif kind == "dup":
            events.insert(i, (t, name, dict(fields)))
        elif kind == "shift":
            events[i] = (t - amount, name, fields)
        elif kind == "rtt":
            if "rtt" in fields:
                fields["rtt"] = float(fields["rtt"]) + amount
        elif kind == "strip":
            keys = sorted(fields)
            if keys:
                fields.pop(keys[index % len(keys)])
        elif kind == "swap":
            j = (i + 1) % len(events)
            events[i], events[j] = events[j], events[i]
    return events


OPS = st.lists(
    st.tuples(
        st.sampled_from(["drop", "dup", "shift", "rtt", "strip", "swap"]),
        st.integers(min_value=0, max_value=63),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False,
                  allow_infinity=False)),
    max_size=6)


class TestPropertyEquivalence:
    @given(ops=OPS)
    @settings(max_examples=80, deadline=None)
    def test_tampered_traces_match_batch_at_every_prefix(self, ops):
        events = apply_ops(clean_trace(), ops)
        assert_equivalent_at_every_prefix(events, TIGHT)

    @given(ops=OPS)
    @settings(max_examples=40, deadline=None)
    def test_tampered_traces_match_without_limits(self, ops):
        events = apply_ops(clean_trace(), ops)
        assert_equivalent_at_every_prefix(events, AuditLimits())

    def test_clean_trace_equivalent_and_ok(self):
        events = clean_trace()
        assert_equivalent_at_every_prefix(events, AuditLimits())
        auditor = IncrementalAuditor()
        auditor.feed_many(events)
        assert auditor.report().ok


class TestFailFast:
    def test_feed_returns_permanent_violations_as_they_land(self):
        events = clean_trace()
        # Move CACHE_A's ack before its send: a causality violation
        # that is permanent the moment the ack event is read.
        t, name, fields = events[6]
        assert name == "notify.ack" and fields["cache"] == CACHE_A
        events[6] = (5.0, name, fields)
        events.sort(key=lambda ev: ev[0])
        auditor = IncrementalAuditor()
        flagged_at = None
        for i, event in enumerate(events):
            fresh = auditor.feed(event)
            if fresh and flagged_at is None:
                flagged_at = i
                assert any(v.kind == "causality" for v in fresh)
        assert flagged_at is not None
        assert events[flagged_at][1] == "notify.ack"

    def test_pending_violations_stay_out_of_feed(self):
        # Without the settled event the change never retires: its
        # unresolved-leg state is a *pending* violation — visible in
        # report(), never returned by feed().
        events = [ev for ev in clean_trace()
                  if ev[1] not in ("change.settled", "notify.ack")]
        auditor = IncrementalAuditor()
        assert auditor.feed_many(events) == []
        report = auditor.report()
        assert not report.ok
        assert any(v.kind == "termination" for v in report.violations)


@pytest.fixture(scope="module")
def fig7_events():
    testbed = Testbed(TestbedConfig(observability=True))
    run_figure7_scenario(testbed)
    return list(testbed.observability.trace.events)


class TestFig7Stream:
    def test_full_trace_bit_for_bit(self, fig7_events):
        auditor = IncrementalAuditor(limits=FIG7_LIMITS)
        auditor.feed_many(fig7_events)
        stream = auditor.report()
        batch = audit_trace(fig7_events, limits=FIG7_LIMITS)
        assert [violation_key(v) for v in stream.violations] \
            == [violation_key(v) for v in batch.violations]
        assert stream.checks == batch.checks
        assert stream.ok and batch.ok

    def test_prefixes_match_on_stride(self, fig7_events):
        auditor = IncrementalAuditor(limits=FIG7_LIMITS)
        for i, event in enumerate(fig7_events, start=1):
            auditor.feed(event)
            if i % 37 and i != len(fig7_events):
                continue
            stream = auditor.report()
            batch = audit_trace(fig7_events[:i], limits=FIG7_LIMITS)
            assert sorted(violation_key(v) for v in stream.violations) \
                == sorted(violation_key(v) for v in batch.violations), i
            assert stream.checks == batch.checks, i

    def test_memory_stays_bounded(self, fig7_events):
        auditor = IncrementalAuditor(limits=FIG7_LIMITS)
        auditor.feed_many(fig7_events)
        # Tracked state is live leases + unretired changes, never the
        # whole event stream: the fig7 run holds ~80 leases and retires
        # every change, so the peak sits far below the event count.
        assert auditor.events_audited == len(fig7_events)
        assert auditor.peak_tracked_spans < 100
        assert auditor.peak_tracked_spans < len(fig7_events) // 4
        assert auditor.tracked_spans <= auditor.peak_tracked_spans

    def test_window_hist_matches_batch_windows(self, fig7_events):
        window_hist = Histogram("notify.consistency_window",
                                LATENCY_BUCKETS)
        auditor = IncrementalAuditor(limits=FIG7_LIMITS,
                                     window_hist=window_hist)
        auditor.feed_many(fig7_events)
        batch = Histogram("notify.consistency_window", LATENCY_BUCKETS)
        for _seq, window in consistency_windows(fig7_events):
            batch.observe(window)
        assert window_hist.counts == batch.counts
        assert window_hist.count == batch.count
        assert window_hist.min == batch.min
        assert window_hist.max == batch.max
        assert math.isclose(window_hist.sum, batch.sum, rel_tol=1e-12)
