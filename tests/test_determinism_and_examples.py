"""Determinism guarantees and example smoke tests."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


class TestDeterminism:
    """Identical seeds must give byte-identical runs — the property that
    makes every experiment in this repository exactly repeatable."""

    def run_testbed(self):
        from repro.dnslib import RRType
        from repro.sim import Testbed, TestbedConfig
        testbed = Testbed(TestbedConfig(network_seed=11))
        testbed.lookup_all(0)
        testbed.dynamic_update(testbed.domains[0].name, "172.26.0.1")
        testbed.run()
        stats = testbed.dnscup.notification.stats
        return (testbed.network.stats.datagrams_sent,
                testbed.network.stats.bytes_sent,
                testbed.max_message_size(),
                stats.notifications_sent, stats.acks_received,
                testbed.simulator.events_processed,
                testbed.simulator.now)

    def test_testbed_runs_identically(self):
        assert self.run_testbed() == self.run_testbed()

    def test_scenario_runs_identically(self):
        from repro.sim import ProtocolScenario, ScenarioConfig
        from repro.traces import (PopulationConfig, WorkloadConfig,
                                  generate_population)

        def run():
            population = generate_population(PopulationConfig(
                regular_per_tld=4, cdn_count=4, dyn_count=4, seed=3))
            scenario = ProtocolScenario(population, ScenarioConfig())
            scenario.run_workload(WorkloadConfig(
                duration=600.0, clients=9, total_request_rate=1.0, seed=4))
            return (scenario.report.stale_answers,
                    scenario.report.fresh_answers,
                    scenario.total_upstream_queries(),
                    scenario.simulator.events_processed)

        assert run() == run()

    def test_trace_generation_identical(self):
        from repro.traces import (PopulationConfig, WorkloadConfig,
                                  generate_population, generate_queries)
        population = generate_population(PopulationConfig(
            regular_per_tld=5, cdn_count=5, dyn_count=5, seed=8))
        config = WorkloadConfig(duration=1800.0, clients=10, seed=9)
        assert list(generate_queries(population, config)) == \
            list(generate_queries(population, config))


@pytest.mark.parametrize("example", [
    "quickstart.py",
    "emergency_remap.py",
    "secure_push.py",
    "audit_quickstart.py",
])
class TestExampleSmoke:
    """The fastest examples must run clean end to end (bit-rot guard;
    the slower ones are exercised by the benchmark suite's machinery)."""

    def test_example_runs(self, example):
        path = os.path.join(EXAMPLES_DIR, example)
        result = subprocess.run([sys.executable, path], capture_output=True,
                                text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()
