"""Tests for the simulated UDP network."""

import pytest

from repro.dnslib import MAX_UDP_PAYLOAD
from repro.net import (
    LatencyModel,
    LinkProfile,
    LognormalLatency,
    Network,
    NetworkError,
    Simulator,
)


def collector():
    received = []

    def handler(payload, src, dst):
        received.append((payload, src, dst))

    return received, handler


class TestDelivery:
    def test_basic_delivery(self, simulator, network):
        received, handler = collector()
        network.bind(("10.0.0.2", 53), handler)
        network.send(b"hello", ("10.0.0.1", 1000), ("10.0.0.2", 53))
        simulator.run()
        assert received == [(b"hello", ("10.0.0.1", 1000), ("10.0.0.2", 53))]

    def test_latency_applied(self, simulator):
        network = Network(simulator, seed=1,
                          default_profile=LinkProfile(
                              latency=LatencyModel(base=0.25)))
        arrivals = []
        network.bind(("b", 1), lambda p, s, d: arrivals.append(simulator.now))
        network.send(b"x", ("a", 1), ("b", 1))
        simulator.run()
        assert arrivals == [0.25]

    def test_unbound_destination_dropped_silently(self, simulator, network):
        network.send(b"x", ("a", 1), ("nowhere", 9))
        simulator.run()
        assert network.stats.datagrams_delivered == 0

    def test_double_bind_rejected(self, network):
        network.bind(("a", 1), lambda *a: None)
        with pytest.raises(NetworkError):
            network.bind(("a", 1), lambda *a: None)

    def test_unbind_then_rebind(self, network):
        network.bind(("a", 1), lambda *a: None)
        network.unbind(("a", 1))
        network.bind(("a", 1), lambda *a: None)

    def test_udp_limit_enforced(self, network):
        with pytest.raises(NetworkError):
            network.send(b"x" * (MAX_UDP_PAYLOAD + 1), ("a", 1), ("b", 1))

    def test_udp_limit_relaxable(self, simulator):
        network = Network(simulator, seed=1, enforce_udp_limit=False)
        network.send(b"x" * 2000, ("a", 1), ("b", 1))


class TestLossAndDuplication:
    def test_full_loss_link(self, simulator):
        network = Network(simulator, seed=3,
                          default_profile=LinkProfile(loss_rate=0.999))
        received, handler = collector()
        network.bind(("b", 1), handler)
        for _ in range(50):
            network.send(b"x", ("a", 1), ("b", 1))
        simulator.run()
        assert network.stats.datagrams_lost >= 45
        assert len(received) == network.stats.datagrams_delivered

    def test_loss_rate_statistics(self, simulator):
        network = Network(simulator, seed=4,
                          default_profile=LinkProfile(loss_rate=0.3))
        network.bind(("b", 1), lambda *a: None)
        n = 2000
        for _ in range(n):
            network.send(b"x", ("a", 1), ("b", 1))
        simulator.run()
        loss = network.stats.datagrams_lost / n
        assert 0.25 < loss < 0.35

    def test_duplication(self, simulator):
        network = Network(simulator, seed=5,
                          default_profile=LinkProfile(duplicate_rate=0.5))
        received, handler = collector()
        network.bind(("b", 1), handler)
        for _ in range(200):
            network.send(b"x", ("a", 1), ("b", 1))
        simulator.run()
        assert len(received) > 220  # some duplicates arrived

    def test_per_link_profile_overrides_default(self, simulator):
        network = Network(simulator, seed=6)
        network.set_link_profile("a", "b", LinkProfile(loss_rate=0.999))
        received, handler = collector()
        network.bind(("b", 1), handler)
        network.bind(("c", 1), handler)
        for _ in range(30):
            network.send(b"x", ("a", 1), ("b", 1))   # lossy link
            network.send(b"x", ("a", 1), ("c", 1))   # default link
        simulator.run()
        to_c = [r for r in received if r[2] == ("c", 1)]
        to_b = [r for r in received if r[2] == ("b", 1)]
        assert len(to_c) == 30
        assert len(to_b) < 5

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            LinkProfile(loss_rate=1.5)
        with pytest.raises(ValueError):
            LinkProfile(duplicate_rate=-0.1)


class TestStats:
    def test_counters_and_max_datagram(self, simulator, network):
        network.bind(("b", 1), lambda *a: None)
        network.send(b"12345", ("a", 1), ("b", 1))
        network.send(b"123", ("a", 1), ("b", 1))
        simulator.run()
        stats = network.stats
        assert stats.datagrams_sent == 2
        assert stats.datagrams_delivered == 2
        assert stats.bytes_sent == 8
        assert stats.max_datagram == 5

    def test_reset(self, simulator, network):
        network.bind(("b", 1), lambda *a: None)
        network.send(b"x", ("a", 1), ("b", 1))
        simulator.run()
        network.stats.reset()
        assert network.stats.datagrams_sent == 0


class TestLatencyModels:
    def test_fixed_latency_no_rng_use(self):
        import random
        model = LatencyModel(base=0.1)
        assert model.sample(random.Random(0)) == 0.1

    def test_jitter_within_bounds(self):
        import random
        model = LatencyModel(base=0.1, jitter=0.05)
        rng = random.Random(0)
        for _ in range(100):
            sample = model.sample(rng)
            assert 0.1 <= sample <= 0.15

    def test_lognormal_positive_and_heavy(self):
        import random
        model = LognormalLatency(base=0.01, mu=-4.0, sigma=1.0)
        rng = random.Random(0)
        samples = [model.sample(rng) for _ in range(1000)]
        assert all(s > 0.01 for s in samples)
        assert max(samples) > 5 * (sum(samples) / len(samples))

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base=-1.0)
