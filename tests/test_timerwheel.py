"""The hierarchical timer wheel against the reference heap backend.

The contract is *identical fire sequences*: for any schedule/cancel
workload, ``Simulator(queue="wheel")`` must fire the same events at the
same times in the same order as ``Simulator(queue="heap")`` — the
(time, seq) contract both backends implement.  Cascade boundaries
(timers landing exactly on bucket edges at every level) get dedicated
regression tests: an off-by-one in the bucket hash shows up precisely
there.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.simulator import Simulator
from repro.net.timerwheel import HierarchicalTimerWheel


def make_pair():
    return Simulator(queue="heap"), Simulator(queue="wheel")


def run_both(program):
    """Apply ``program(sim, log)`` to both backends; compare the logs."""
    logs = []
    for sim in make_pair():
        log = []
        program(sim, log)
        logs.append(log)
    assert logs[0] == logs[1], \
        f"\nheap:  {logs[0][:20]}\nwheel: {logs[1][:20]}"
    return logs[0]


class TestBackendBasics:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Simulator(queue="btree")

    def test_fire_order_same_time_is_schedule_order(self):
        def program(sim, log):
            for tag in "abc":
                sim.schedule(1.0, lambda tag=tag: log.append((sim.now, tag)))
            sim.run()
        assert run_both(program) == [(1.0, "a"), (1.0, "b"), (1.0, "c")]

    def test_cancel_is_effective_and_idempotent(self):
        def program(sim, log):
            keep = sim.schedule(1.0, lambda: log.append("keep"))
            drop = sim.schedule(1.0, lambda: log.append("drop"))
            drop.cancel()
            drop.cancel()
            sim.run()
            log.append(sim.pending)
            log.append(keep.cancelled)
        assert run_both(program) == ["keep", 0, False]

    def test_handles_carry_explicit_sequence(self):
        sim = Simulator()
        first = sim.schedule(5.0, lambda: None)
        second = sim.schedule(1.0, lambda: None)
        # Monotonic schedule order, independent of fire order.
        assert second.seq == first.seq + 1

    def test_schedule_during_current_bucket_drain(self):
        # An event scheduled at the current time while its own bucket
        # drains must still fire in this run, after pending same-time
        # events — the call_soon contract.
        def program(sim, log):
            def first():
                log.append("first")
                sim.call_soon(lambda: log.append("soon"))
            sim.schedule(1.0, first)
            sim.schedule(1.0, lambda: log.append("second"))
            sim.run()
        assert run_both(program) == ["first", "second", "soon"]

    def test_run_until_advances_between_sparse_buckets(self):
        def program(sim, log):
            sim.schedule(0.5, lambda: log.append(("a", sim.now)))
            sim.schedule(5000.0, lambda: log.append(("b", sim.now)))
            log.append(sim.run_until(0.5))
            log.append(sim.now)
            log.append(sim.run_until(6000.0))
            log.append(sim.now)
            sim.run()
        assert run_both(program) == [
            ("a", 0.5), 1, 0.5, ("b", 5000.0), 1, 6000.0]


class TestCascadeBoundaries:
    """Timers landing exactly on wheel-tick and level edges."""

    RESOLUTION = 1.0 / 64
    WHEEL = 64

    def edge_times(self):
        """Bucket starts/ends at every level, and their neighbours."""
        times = []
        for level in range(4):
            span = self.RESOLUTION * self.WHEEL ** level
            horizon = span * self.WHEEL
            for base in (span, horizon, 2 * horizon):
                for nudge in (-span / 2, 0.0, span / 2):
                    time = base + nudge
                    if time > 0:
                        times.append(time)
        return times

    def test_exact_edge_timers_fire_in_order(self):
        times = self.edge_times()

        def program(sim, log):
            for i, time in enumerate(times):
                sim.schedule_at(time, lambda i=i: log.append((sim.now, i)))
            sim.run()
        fired = run_both(program)
        assert len(fired) == len(times)
        assert [t for t, _i in fired] == sorted(t for t, _i in fired)

    def test_timer_exactly_on_level_horizon(self):
        # delta == horizon of level l must hash into level l+1 and
        # cascade back down without firing early or late.
        wheel = HierarchicalTimerWheel(0.0, resolution=self.RESOLUTION,
                                       wheel_size=self.WHEEL)
        sim = Simulator(queue="heap")  # donor for handles
        horizon0 = self.RESOLUTION * self.WHEEL
        handles = [sim.schedule_at(t, lambda: None)
                   for t in (horizon0, horizon0 - self.RESOLUTION / 4,
                             horizon0 * self.WHEEL)]
        for handle in handles:
            wheel.push(handle)
        popped = []
        while True:
            head = wheel.pop()
            if head is None:
                break
            popped.append(head.time)
        assert popped == sorted(h.time for h in handles)

    def test_non_binary_resolution_fires_in_order(self):
        # resolution=0.1 is not an exact binary fraction, so slot * span
        # arithmetic carries float rounding; the true floor and the
        # clamped bucket start must still preserve (time, seq) order.
        wheel = HierarchicalTimerWheel(0.0, resolution=0.1, wheel_size=4,
                                       levels=4)
        sim = Simulator(queue="heap")  # donor for handles
        times = [k * 0.1 for k in range(1, 40)]
        times += [k * 0.1 + 1e-12 for k in range(1, 40, 3)]
        times += [0.1 * 4 ** level for level in range(1, 4)]
        handles = [sim.schedule_at(t, lambda: None) for t in times]
        for handle in handles:
            wheel.push(handle)
        popped = [(h.time, h.seq) for h in iter(wheel.pop, None)]
        assert popped == sorted((h.time, h.seq) for h in handles)

    def test_cancelled_timer_in_cascaded_bucket(self):
        def program(sim, log):
            span1 = self.RESOLUTION * self.WHEEL
            victim = sim.schedule_at(3 * span1, lambda: log.append("victim"))
            sim.schedule_at(3 * span1, lambda: log.append("kept"))
            sim.schedule_at(span1 / 2, lambda: victim.cancel())
            sim.run()
        assert run_both(program) == ["kept"]

    def test_same_time_events_across_bucket_creation_orders(self):
        # Two events at one timestamp, scheduled around a cascade: the
        # explicit seq (not identity or arrival bucket) orders them.
        def program(sim, log):
            span1 = self.RESOLUTION * self.WHEEL
            target = 2 * span1

            def late_schedule():
                sim.schedule_at(target, lambda: log.append("late-sched"))
            sim.schedule_at(target, lambda: log.append("early-sched"))
            sim.schedule_at(span1, late_schedule)
            sim.run()
        assert run_both(program) == ["early-sched", "late-sched"]


# -- property: any workload, identical sequences -------------------------------


program_strategy = st.lists(
    st.one_of(
        # (schedule, delay-seconds, daemon?)
        st.tuples(st.just("schedule"),
                  st.floats(min_value=0.0, max_value=9000.0,
                            allow_nan=False, allow_infinity=False),
                  st.booleans()),
        # cancel the i-th schedule so far (modulo live count)
        st.tuples(st.just("cancel"), st.integers(0, 200)),
        # run for a stretch of virtual time
        st.tuples(st.just("run_for"), st.floats(min_value=0.0,
                                                max_value=500.0,
                                                allow_nan=False,
                                                allow_infinity=False)),
    ),
    min_size=0, max_size=60)


@settings(max_examples=200, deadline=None)
@given(program=program_strategy)
def test_wheel_and_heap_fire_identically(program):
    logs = []
    for sim in make_pair():
        log = []
        handles = []
        counter = [0]
        for op in program:
            if op[0] == "schedule":
                _, delay, daemon = op
                tag = counter[0]
                counter[0] += 1
                handles.append(sim.schedule(
                    delay, lambda tag=tag: log.append((sim.now, tag)),
                    daemon=daemon))
            elif op[0] == "cancel":
                if handles:
                    handles[op[1] % len(handles)].cancel()
            else:
                sim.run_for(op[1])
        sim.run()
        log.append(("pending", sim.pending))
        log.append(("processed", sim.events_processed))
        logs.append(log)
    assert logs[0] == logs[1]
