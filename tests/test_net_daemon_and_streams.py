"""Unit tests for daemon-event semantics and reliable streams."""

import pytest

from repro.net import Network, PeriodicTimer, Simulator


class TestDaemonEvents:
    def test_run_stops_when_only_daemons_remain(self, simulator):
        ticks = []
        PeriodicTimer(simulator, 1.0, lambda: ticks.append(simulator.now))
        simulator.schedule(2.5, lambda: None)  # real work until t=2.5
        simulator.run()
        # Daemon ticks at 1.0 and 2.0 fired (they precede real work);
        # then run() stopped instead of ticking forever.
        assert ticks == [1.0, 2.0]
        assert simulator.pending >= 1  # the next daemon tick still queued

    def test_run_with_no_real_work_returns_immediately(self, simulator):
        PeriodicTimer(simulator, 1.0, lambda: None)
        assert simulator.run() == 0

    def test_run_until_fires_daemons_regardless(self, simulator):
        ticks = []
        PeriodicTimer(simulator, 1.0, lambda: ticks.append(simulator.now))
        simulator.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_daemon_spawning_real_work_keeps_run_alive(self, simulator):
        """A daemon that fires while real work is pending can spawn more
        real work, which extends the run past the original horizon."""
        produced = []

        def tick():
            if simulator.now <= 2.0:
                simulator.schedule(0.5, lambda: produced.append(simulator.now))

        PeriodicTimer(simulator, 1.0, tick)
        simulator.schedule(2.2, lambda: None)  # real work keeps run alive
        simulator.run()
        # Ticks at 1.0 and 2.0 fired (before the 2.2 work) and spawned
        # real events at 1.5 and 2.5; the 2.5 one extended the run.
        assert produced == [1.5, 2.5]

    def test_cancel_daemon_event_bookkeeping(self, simulator):
        handle = simulator.schedule(1.0, lambda: None, daemon=True)
        real = simulator.schedule(1.0, lambda: None)
        handle.cancel()
        real.cancel()
        assert simulator.run() == 0

    def test_non_daemon_default(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.run()
        assert fired == [1]


class TestStreams:
    def test_stream_delivery_reliable_under_loss(self, simulator):
        from repro.net import LinkProfile
        network = Network(simulator, seed=1,
                          default_profile=LinkProfile(loss_rate=0.9))
        received = []
        network.bind_stream(("b", 1), lambda p, s, d: received.append(p))
        for index in range(20):
            network.send_stream(bytes([index]), ("a", 1), ("b", 1))
        simulator.run()
        assert len(received) == 20  # streams never lose

    def test_stream_ignores_udp_size_limit(self, simulator, network):
        received = []
        network.bind_stream(("b", 1), lambda p, s, d: received.append(p))
        network.send_stream(b"x" * 5000, ("a", 1), ("b", 1))
        simulator.run()
        assert len(received[0]) == 5000

    def test_stream_slower_than_datagram(self, simulator):
        from repro.net import LatencyModel, LinkProfile
        network = Network(simulator, seed=2,
                          default_profile=LinkProfile(
                              latency=LatencyModel(base=0.1)))
        arrivals = {}
        network.bind(("b", 1), lambda p, s, d: arrivals.__setitem__("udp", simulator.now))
        network.bind_stream(("b", 1), lambda p, s, d: arrivals.__setitem__("tcp", simulator.now))
        network.send(b"u", ("a", 1), ("b", 1))
        network.send_stream(b"t", ("a", 1), ("b", 1))
        simulator.run()
        assert arrivals["tcp"] > arrivals["udp"]  # connection setup cost

    def test_stream_stats_counted(self, simulator, network):
        network.bind_stream(("b", 1), lambda p, s, d: None)
        network.send_stream(b"abc", ("a", 1), ("b", 1))
        simulator.run()
        assert network.stats.stream_messages == 1
        assert network.stats.stream_bytes == 3

    def test_unbound_stream_endpoint_dropped(self, simulator, network):
        network.send_stream(b"x", ("a", 1), ("nowhere", 1))
        simulator.run()  # no crash

    def test_double_stream_bind_rejected(self, network):
        from repro.net import NetworkError
        network.bind_stream(("a", 1), lambda *a: None)
        with pytest.raises(NetworkError):
            network.bind_stream(("a", 1), lambda *a: None)

    def test_socket_request_stream_roundtrip(self, make_host, simulator):
        from repro.dnslib import Message, RRType, make_query, make_response
        server_host = make_host("10.0.0.1")
        client_host = make_host("10.0.0.2")
        server = server_host.dns_socket()

        def handle(payload, src, dst):
            message = Message.from_wire(payload)
            server.send_stream(make_response(message).to_wire(), src)

        server.on_receive_stream(handle)
        client = client_host.socket()
        query = make_query("x.example.", RRType.A)
        results = []
        client.request_stream(query.to_wire(), ("10.0.0.1", 53), query.id,
                              lambda p, s: results.append(p))
        simulator.run()
        assert results and results[0] is not None
        assert Message.from_wire(results[0]).id == query.id

    def test_request_stream_timeout(self, make_host, simulator):
        client = make_host("10.0.0.3").socket()
        results = []
        client.request_stream(b"\x00\x01\x00\x00", ("203.0.113.1", 53), 1,
                              lambda p, s: results.append(p), timeout=0.5)
        simulator.run()
        assert results == [None]
