"""Tests for the lame-delegation guard (paper §1)."""

import pytest

from repro.core import DelegationGuard
from repro.dnslib import A, Name, NS, RRSet, RRType, SOA
from repro.server import AuthoritativeServer
from repro.zone import (
    DelegationStatus,
    Zone,
    check_delegations,
    load_zone,
)

PARENT_TEXT = """\
$ORIGIN com.
$TTL 86400
@           IN SOA a.gtld. admin.gtld. 1 7200 900 604800 300
@           IN NS a.gtld.
example     IN NS ns1.example.com.
ns1.example IN A  10.1.0.1
"""

CHILD_TEXT = """\
$ORIGIN example.com.
$TTL 3600
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.1.0.1
www  IN A   10.0.0.10
"""


@pytest.fixture
def world(make_host, simulator):
    parent_zone = load_zone(PARENT_TEXT)
    parent_server = AuthoritativeServer(make_host("10.0.0.1"), [parent_zone])
    child_zone = load_zone(CHILD_TEXT)
    child_host = make_host("10.1.0.1")
    child_server = AuthoritativeServer(child_host, [child_zone])
    guard = DelegationGuard(child_zone, ("10.0.0.1", 53),
                            child_server.socket)
    return parent_zone, child_zone, guard, simulator


def delegation_status(parent_zone, child_zone):
    reports = check_delegations(
        parent_zone, {child_zone.origin: child_zone})
    return {r.child: r.status for r in reports}[child_zone.origin]


class TestGuard:
    def test_initially_consistent(self, world):
        parent_zone, child_zone, guard, simulator = world
        assert delegation_status(parent_zone, child_zone) == \
            DelegationStatus.CONSISTENT

    def test_ns_addition_pushed_to_parent(self, world):
        parent_zone, child_zone, guard, simulator = world
        with child_zone.bulk_update():
            child_zone.put_rrset(RRSet(
                "example.com", RRType.NS, 3600,
                [NS("ns1.example.com"), NS("ns2.example.com")]))
            child_zone.put_rrset(RRSet("ns2.example.com", RRType.A, 3600,
                                       [A("10.1.0.2")]))
        simulator.run()
        assert guard.stats.updates_accepted == 1
        parent_ns = parent_zone.get_rrset("example.com", RRType.NS)
        assert {r.target for r in parent_ns.rdatas} == {
            Name.from_text("ns1.example.com"),
            Name.from_text("ns2.example.com")}
        # Glue for the new server arrived too.
        glue = parent_zone.get_rrset("ns2.example.com", RRType.A)
        assert glue is not None and glue.rdatas == (A("10.1.0.2"),)
        assert delegation_status(parent_zone, child_zone) == \
            DelegationStatus.CONSISTENT

    def test_nameserver_renumbering_updates_glue(self, world):
        parent_zone, child_zone, guard, simulator = world
        child_zone.replace_address("ns1.example.com", ["10.1.0.99"])
        simulator.run()
        glue = parent_zone.get_rrset("ns1.example.com", RRType.A)
        assert glue.rdatas == (A("10.1.0.99"),)

    def test_unrelated_change_not_pushed(self, world):
        parent_zone, child_zone, guard, simulator = world
        child_zone.replace_address("www.example.com", ["10.0.0.77"])
        simulator.run()
        assert guard.stats.updates_sent == 0

    def test_ns_rename_with_swap(self, world):
        """Renaming the nameserver entirely — the classic lame setup."""
        parent_zone, child_zone, guard, simulator = world
        with child_zone.bulk_update():
            child_zone.put_rrset(RRSet("example.com", RRType.NS, 3600,
                                       [NS("dns.example.com")]))
            child_zone.put_rrset(RRSet("dns.example.com", RRType.A, 3600,
                                       [A("10.1.0.50")]))
            child_zone.delete_rrset("ns1.example.com", RRType.A)
        simulator.run()
        parent_ns = parent_zone.get_rrset("example.com", RRType.NS)
        assert {r.target for r in parent_ns.rdatas} == {
            Name.from_text("dns.example.com")}
        assert parent_zone.get_rrset("dns.example.com", RRType.A) is not None
        assert delegation_status(parent_zone, child_zone) == \
            DelegationStatus.CONSISTENT

    def test_detach_stops_pushing(self, world):
        parent_zone, child_zone, guard, simulator = world
        guard.detach()
        child_zone.replace_address("ns1.example.com", ["10.1.0.99"])
        simulator.run()
        assert guard.stats.updates_sent == 0

    def test_rejection_counted(self, world, make_host, simulator):
        parent_zone, child_zone, guard, _ = world
        # A parent that refuses updates.
        parent_zone2 = load_zone(PARENT_TEXT.replace("com.", "net.", 1)
                                 .replace("example.com", "example.net"))
        stubborn = AuthoritativeServer(make_host("10.0.0.2"), [parent_zone2])
        stubborn.allow_updates = False
        child_zone2 = load_zone(CHILD_TEXT.replace("example.com",
                                                   "example.net"))
        child_server2 = AuthoritativeServer(make_host("10.1.0.9"),
                                            [child_zone2])
        guard2 = DelegationGuard(child_zone2, ("10.0.0.2", 53),
                                 child_server2.socket)
        child_zone2.replace_address("ns1.example.net", ["10.1.0.99"])
        simulator.run()
        assert guard2.stats.updates_rejected == 1

    def test_explicit_parent_origin(self, world, make_host, simulator):
        _, child_zone, _, _ = world
        # Guard pointed at an explicit (grand)parent zone name.
        guard = DelegationGuard(child_zone, ("10.0.0.1", 53),
                                make_host("10.3.0.1").socket(),
                                parent_origin=Name.from_text("com"))
        message = guard.build_update()
        assert message.zone[0].name == Name.from_text("com")
