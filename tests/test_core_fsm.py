"""The normative lease-FSM table (``repro.core.fsm``, PROTOCOL.md §10)."""

from repro.core.fsm import (
    LEASE_INITIAL,
    LEASE_STATES,
    LEASE_TRANSITIONS,
    check_table,
    reachable_states,
    transition_events,
)
from repro.obs.trace import EVENT_NAMES


def test_normative_table_is_well_formed():
    assert check_table(LEASE_STATES, LEASE_INITIAL, LEASE_TRANSITIONS) == []


def test_every_state_is_reachable():
    assert reachable_states(LEASE_STATES, LEASE_INITIAL,
                            LEASE_TRANSITIONS) == set(LEASE_STATES)


def test_every_transition_event_is_registered():
    events = transition_events()
    assert len(events) == len(LEASE_TRANSITIONS)
    assert events <= EVENT_NAMES


def test_check_table_catches_structural_defects():
    states = ("absent", "granted")
    rows = (("grant", "absent", "granted", "lease.grant"),)
    assert check_table(states, "nowhere", rows)  # unknown initial
    assert check_table(states, "absent", rows + rows)  # duplicate name
    assert check_table(states, "absent",
                       (("grant", "absent", "limbo", "lease.grant"),))
    assert check_table(states, "absent",
                       (("grant", "absent", "granted", "noprefix"),))
    # 'granted' unreachable: the only row leads nowhere new.
    assert check_table(states, "absent",
                       (("stay", "absent", "absent", "lease.grant"),))


def test_clean_probe_rows_pass():
    states = ("absent", "granted")
    rows = (("grant", "absent", "granted", "lease.grant"),
            ("expire", "granted", "absent", "lease.expire"))
    assert check_table(states, "absent", rows) == []
