"""Tests for the detection, listening and notification modules."""

import pytest

from repro.core import (
    DetectionModule,
    DynamicLeasePolicy,
    LeaseTable,
    ListeningModule,
    NoLeasePolicy,
    NotificationModule,
)
from repro.dnslib import (
    A,
    Message,
    Name,
    Opcode,
    Rcode,
    ResourceRecord,
    RRType,
    make_cache_update_ack,
    make_query,
    make_response,
)
from repro.net import LinkProfile, RetryPolicy
from repro.zone import load_zone
from tests.conftest import EXAMPLE_ZONE_TEXT


class TestDetectionModule:
    def test_event_driven_detection(self, simulator):
        zone = load_zone(EXAMPLE_ZONE_TEXT)
        module = DetectionModule(simulator)
        events = []
        module.add_sink(events.append)
        module.watch_zone(zone)
        zone.replace_address("www.example.com", ["9.9.9.9"])
        assert len(events) == 1
        change = events[0]
        assert change.name == Name.from_text("www.example.com")
        assert change.new.rdatas == (A("9.9.9.9"),)
        assert not change.is_deletion

    def test_soa_churn_ignored(self, simulator):
        """Serial bumps are replication bookkeeping, not mapping changes."""
        zone = load_zone(EXAMPLE_ZONE_TEXT)
        module = DetectionModule(simulator)
        events = []
        module.add_sink(events.append)
        module.watch_zone(zone)
        zone.replace_address("www.example.com", ["9.9.9.9"])
        assert all(e.rrtype != RRType.SOA for e in events)

    def test_deletion_detected(self, simulator):
        zone = load_zone(EXAMPLE_ZONE_TEXT)
        module = DetectionModule(simulator)
        events = []
        module.add_sink(events.append)
        module.watch_zone(zone)
        zone.delete_rrset("mail.example.com", RRType.A)
        assert events[0].is_deletion

    def test_polling_detects_out_of_band_edit(self, simulator):
        zone = load_zone(EXAMPLE_ZONE_TEXT)
        module = DetectionModule(simulator)
        events = []
        module.add_sink(events.append)
        module.watch_zone(zone, poll_interval=10.0)
        # Out-of-band edit: mutate internal state without listeners
        # (simulates an operator editing the zone file directly).
        zone.remove_change_listener(module._on_zone_commit)
        zone.replace_address("www.example.com", ["8.8.8.8"])
        simulator.run_until(10.0)
        assert any(e.name == Name.from_text("www.example.com") for e in events)

    def test_no_double_detection_with_polling(self, simulator):
        zone = load_zone(EXAMPLE_ZONE_TEXT)
        module = DetectionModule(simulator)
        events = []
        module.add_sink(events.append)
        module.watch_zone(zone, poll_interval=10.0)
        zone.replace_address("www.example.com", ["8.8.8.8"])
        simulator.run_until(30.0)
        www_events = [e for e in events
                      if e.name == Name.from_text("www.example.com")]
        assert len(www_events) == 1

    def test_double_watch_rejected(self, simulator):
        zone = load_zone(EXAMPLE_ZONE_TEXT)
        module = DetectionModule(simulator)
        module.watch_zone(zone)
        with pytest.raises(ValueError):
            module.watch_zone(zone)

    def test_unwatch_stops_events(self, simulator):
        zone = load_zone(EXAMPLE_ZONE_TEXT)
        module = DetectionModule(simulator)
        events = []
        module.add_sink(events.append)
        module.watch_zone(zone)
        module.unwatch_zone(zone.origin)
        zone.replace_address("www.example.com", ["9.9.9.9"])
        assert not events


def make_answered_query(name="www.example.com", rrc=100):
    query = make_query(name, RRType.A, rrc=rrc)
    response = make_response(query)
    response.authoritative = True
    response.answer.append(ResourceRecord(name, RRType.A, 60, A("1.1.1.1")))
    return query, response


class TestListeningModule:
    def test_grants_and_stamps_llt(self, simulator):
        table = LeaseTable()
        module = ListeningModule(simulator, table, DynamicLeasePolicy(0.0),
                                 max_lease_fn=lambda n, t: 6000.0)
        query, response = make_answered_query()
        module.on_query(query, ("10.2.0.1", 40000), response)
        assert response.llt == 6000
        lease = table.get(("10.2.0.1", 53), "www.example.com", RRType.A)
        assert lease is not None and lease.length == 6000.0
        assert module.stats.grants == 1

    def test_lease_tracked_at_port_53(self, simulator):
        """Queries come from ephemeral ports; notifications go to :53."""
        table = LeaseTable()
        module = ListeningModule(simulator, table, DynamicLeasePolicy(0.0))
        query, response = make_answered_query()
        module.on_query(query, ("10.2.0.1", 54321), response)
        assert table.holders("www.example.com", RRType.A, 0.0)[0].cache == \
            ("10.2.0.1", 53)

    def test_plain_dns_query_untouched(self, simulator):
        table = LeaseTable()
        module = ListeningModule(simulator, table, DynamicLeasePolicy(0.0))
        query = make_query("www.example.com", RRType.A)  # no CU bit
        response = make_response(query)
        response.answer.append(ResourceRecord("www.example.com", RRType.A,
                                              60, A("1.1.1.1")))
        module.on_query(query, ("10.2.0.1", 40000), response)
        assert response.llt is None
        assert len(table) == 0

    def test_no_lease_on_failed_answer(self, simulator):
        table = LeaseTable()
        module = ListeningModule(simulator, table, DynamicLeasePolicy(0.0))
        query = make_query("missing.example.com", RRType.A, rrc=5)
        response = make_response(query, Rcode.NXDOMAIN)
        module.on_query(query, ("10.2.0.1", 40000), response)
        assert len(table) == 0

    def test_policy_denial_no_llt(self, simulator):
        table = LeaseTable()
        module = ListeningModule(simulator, table, NoLeasePolicy())
        query, response = make_answered_query()
        module.on_query(query, ("10.2.0.1", 40000), response)
        assert response.llt is None
        assert module.stats.denials == 1

    def test_table_full_counted(self, simulator):
        table = LeaseTable(capacity=1)
        module = ListeningModule(simulator, table, DynamicLeasePolicy(0.0))
        q1, r1 = make_answered_query("a.example.com")
        q2, r2 = make_answered_query("b.example.com")
        module.on_query(q1, ("10.2.0.1", 40000), r1)
        module.on_query(q2, ("10.2.0.2", 40000), r2)
        assert module.stats.table_full == 1
        assert r2.llt is None

    def test_rate_uses_max_of_reported_and_observed(self, simulator):
        """A cache under-reporting its RRC still gets rated by arrivals."""
        table = LeaseTable()
        module = ListeningModule(simulator, table,
                                 DynamicLeasePolicy(rate_threshold=0.5),
                                 rate_window=10.0)
        source = ("10.2.0.1", 40000)
        granted = False
        for _ in range(20):  # 20 arrivals in a 10 s window → 2 q/s observed
            query, response = make_answered_query(rrc=0)
            module.on_query(query, source, response)
            if response.llt:
                granted = True
        assert granted


class TestNotificationModule:
    def build(self, make_host, loss_rate=0.0):
        server_host = make_host("10.1.0.1")
        cache_host = make_host("10.2.0.1")
        if loss_rate:
            server_host.network.set_link_profile(
                "10.1.0.1", "10.2.0.1", LinkProfile(loss_rate=loss_rate))
        server_socket = server_host.dns_socket()
        table = LeaseTable()
        module = NotificationModule(
            server_socket, table,
            retry=RetryPolicy(initial_timeout=0.5, max_attempts=3))
        # A minimal acking cache.
        cache_socket = cache_host.dns_socket()
        received = []

        def on_datagram(payload, src, dst):
            message = Message.from_wire(payload)
            if message.opcode == Opcode.CACHE_UPDATE:
                received.append(message)
                cache_socket.send(make_cache_update_ack(message).to_wire(),
                                  src)

        cache_socket.on_receive(on_datagram)
        return module, table, received

    def fake_change(self, name="www.example.com"):
        from repro.core.detection import RecordChange
        from repro.dnslib import RRSet
        new = RRSet(name, RRType.A, 60, [A("9.9.9.9")])
        return RecordChange(Name.from_text("example.com"),
                            Name.from_text(name), RRType.A, None, new, 0.0)

    def test_notifies_lease_holders(self, make_host, simulator):
        module, table, received = self.build(make_host)
        table.grant(("10.2.0.1", 53), "www.example.com", RRType.A, 0.0, 100.0)
        module.on_change(self.fake_change())
        simulator.run()
        assert len(received) == 1
        assert received[0].answer[0].rdata == A("9.9.9.9")
        assert module.stats.acks_received == 1
        assert module.ack_ratio() == 1.0
        assert module.mean_ack_rtt() is not None

    def test_ack_ratio_counts_in_flight(self, make_host, simulator):
        """A mid-run reading must not report 1.0 while notifications are
        still outstanding (regression: in-flight sends were invisible to
        ack_ratio until their ack or timeout landed)."""
        module, table, received = self.build(make_host)
        table.grant(("10.2.0.1", 53), "www.example.com", RRType.A, 0.0, 100.0)
        module.on_change(self.fake_change())
        # Notification sent, ack not yet processed: 0 of 1 acknowledged.
        assert module.stats.in_flight == 1
        assert module.ack_ratio() == 0.0
        simulator.run()
        assert module.stats.in_flight == 0
        assert module.ack_ratio() == 1.0
        # Idle module with nothing attempted still reads 1.0.
        idle = NotificationModule(make_host("10.1.0.9").dns_socket(),
                                  LeaseTable())
        assert idle.ack_ratio() == 1.0

    def test_in_flight_settles_on_timeout(self, make_host, simulator):
        module, table, received = self.build(make_host, loss_rate=0.999)
        table.grant(("10.2.0.1", 53), "www.example.com", RRType.A, 0.0, 100.0)
        module.on_change(self.fake_change())
        assert module.stats.in_flight == 1
        simulator.run()
        assert module.stats.in_flight == 0
        assert module.stats.failures == 1
        assert module.ack_ratio() == 0.0

    def test_skips_expired_leases(self, make_host, simulator):
        module, table, received = self.build(make_host)
        table.grant(("10.2.0.1", 53), "www.example.com", RRType.A, 0.0, 100.0)
        simulator.run_until(200.0)
        module.on_change(self.fake_change())
        simulator.run()
        assert not received
        assert module.stats.no_holders == 1

    def test_retransmits_through_loss(self, make_host, simulator):
        module, table, received = self.build(make_host, loss_rate=0.6)
        for i in range(10):
            table.grant(("10.2.0.1", 53), f"d{i}.example.com", RRType.A,
                        0.0, 1000.0)
            module.on_change(self.fake_change(f"d{i}.example.com"))
        simulator.run()
        assert module.stats.acks_received >= 7
        assert module.stats.acks_received + module.stats.failures == 10

    def test_unreachable_cache_recorded(self, make_host, simulator):
        server_host = make_host("10.1.0.2")
        table = LeaseTable()
        module = NotificationModule(
            server_host.dns_socket(), table,
            retry=RetryPolicy(initial_timeout=0.2, max_attempts=2))
        table.grant(("203.0.113.9", 53), "www.example.com", RRType.A,
                    0.0, 100.0)
        module.on_change(self.fake_change())
        simulator.run()
        assert module.stats.failures == 1
        assert ("203.0.113.9", 53) in module.unreachable

    def test_deletion_pushed_with_empty_answer(self, make_host, simulator):
        from repro.core.detection import RecordChange
        from repro.dnslib import RRSet
        module, table, received = self.build(make_host)
        table.grant(("10.2.0.1", 53), "www.example.com", RRType.A, 0.0, 100.0)
        old = RRSet("www.example.com", RRType.A, 60, [A("1.1.1.1")])
        change = RecordChange(Name.from_text("example.com"),
                              Name.from_text("www.example.com"),
                              RRType.A, old, None, 0.0)
        module.on_change(change)
        simulator.run()
        assert len(received) == 1
        assert not received[0].answer
        assert received[0].question[0].rrtype == RRType.A

    def test_fanout_encodes_once_with_unique_ids(self, make_host, simulator):
        """One change to N leaseholders: one wire encode, N messages that
        differ only in their patched IDs, all acked."""
        server_host = make_host("10.1.0.1")
        table = LeaseTable()
        module = NotificationModule(
            server_host.dns_socket(), table,
            retry=RetryPolicy(initial_timeout=0.5, max_attempts=3))
        received = []
        caches = [f"10.2.0.{i}" for i in range(1, 6)]
        for address in caches:
            socket = make_host(address).dns_socket()

            def on_datagram(payload, src, dst, socket=socket):
                message = Message.from_wire(payload)
                if message.opcode == Opcode.CACHE_UPDATE:
                    received.append(message)
                    socket.send(make_cache_update_ack(message).to_wire(), src)

            socket.on_receive(on_datagram)
            table.grant((address, 53), "www.example.com", RRType.A,
                        0.0, 100.0)
        module.on_change(self.fake_change())
        simulator.run()
        assert len(received) == 5
        assert module.stats.wire_encodes == 1
        assert module.stats.notifications_sent == 5
        assert module.stats.acks_received == 5
        # Every copy is individually addressable...
        assert len({message.id for message in received}) == 5
        # ...but carries the identical payload.
        for message in received:
            assert message.answer[0].rdata == A("9.9.9.9")
            assert message.question[0].name == Name.from_text(
                "www.example.com")
