"""Tests for hosts, sockets, and request/response matching."""

import pytest

from repro.dnslib import Message, RRType, make_query, make_response
from repro.net import Host, NetworkError, RetryPolicy


@pytest.fixture
def pair(network, make_host):
    return make_host("10.0.0.1"), make_host("10.0.0.2")


class TestSockets:
    def test_ephemeral_ports_distinct(self, pair):
        host, _ = pair
        a, b = host.socket(), host.socket()
        assert a.port != b.port
        assert a.port >= 49152

    def test_dns_socket_is_53(self, pair):
        host, _ = pair
        assert host.dns_socket().port == 53

    def test_close_unbinds(self, pair, network):
        host, _ = pair
        sock = host.socket(1234)
        assert network.is_bound(("10.0.0.1", 1234))
        sock.close()
        assert not network.is_bound(("10.0.0.1", 1234))

    def test_host_close_closes_all(self, pair, network):
        host, _ = pair
        host.socket(1000)
        host.socket(1001)
        host.close()
        assert not network.is_bound(("10.0.0.1", 1000))
        assert not network.is_bound(("10.0.0.1", 1001))

    def test_plain_send_receive(self, pair, simulator):
        a, b = pair
        received = []
        server = b.socket(53)
        server.on_receive(lambda p, s, d: received.append(p))
        client = a.socket()
        client.send(b"\x00\x01\x00\x00ping", ("10.0.0.2", 53))
        simulator.run()
        assert received == [b"\x00\x01\x00\x00ping"]


class TestRequestResponse:
    def echo_server(self, host):
        sock = host.dns_socket()

        def handle(payload, src, dst):
            message = Message.from_wire(payload)
            response = make_response(message)
            sock.send(response.to_wire(), src)

        sock.on_receive(handle)
        return sock

    def test_response_matched_by_id(self, pair, simulator):
        a, b = pair
        self.echo_server(b)
        client = a.socket()
        query = make_query("x.example.", RRType.A)
        results = []
        client.request(query.to_wire(), ("10.0.0.2", 53), query.id,
                       lambda p, s: results.append((p, s)))
        simulator.run()
        assert len(results) == 1
        payload, src = results[0]
        assert payload is not None
        assert Message.from_wire(payload).id == query.id
        assert src == ("10.0.0.2", 53)

    def test_timeout_reports_none(self, pair, simulator):
        a, _ = pair
        client = a.socket()
        results = []
        client.request(b"\x00\x09\x00\x00", ("10.9.9.9", 53), 9,
                       lambda p, s: results.append((p, s)),
                       retry=RetryPolicy(initial_timeout=0.5, max_attempts=2))
        simulator.run()
        assert results == [(None, None)]
        # Two attempts were actually sent.
        assert a.network.stats.datagrams_sent == 2

    def test_retransmission_recovers_from_loss(self, simulator, network,
                                               make_host):
        from repro.net import LinkProfile
        a = make_host("10.0.0.1")
        b = make_host("10.0.0.2")
        # Lossy forward path: drop ~50% of datagrams.
        network.set_link_profile("10.0.0.1", "10.0.0.2",
                                 LinkProfile(loss_rate=0.5))
        self.echo_server(b)
        client = a.socket()
        successes = 0
        for i in range(30):
            query = make_query(f"q{i}.example.", RRType.A)
            results = []
            client.request(query.to_wire(), ("10.0.0.2", 53), query.id,
                           lambda p, s, r=results: r.append(p),
                           retry=RetryPolicy(initial_timeout=0.2,
                                             max_attempts=6))
            simulator.run()
            if results and results[0] is not None:
                successes += 1
        assert successes >= 27  # 6 tries at 50% loss: ~1.6% failure each

    def test_duplicate_outstanding_request_rejected(self, pair):
        a, _ = pair
        client = a.socket()
        client.request(b"\x00\x07\x00\x00", ("10.0.0.2", 53), 7,
                       lambda p, s: None)
        with pytest.raises(NetworkError):
            client.request(b"\x00\x07\x00\x00", ("10.0.0.2", 53), 7,
                           lambda p, s: None)

    def test_query_payload_does_not_settle_pending(self, pair, simulator):
        """A server-initiated QUERY reusing an ID must not be mistaken
        for the response to our outstanding request (QR-bit check)."""
        a, b = pair
        client = a.socket(1100)
        fallthrough = []
        client.on_receive(lambda p, s, d: fallthrough.append(p))
        matched = []
        client.request(b"\x00\x2a\x00\x00", ("10.0.0.2", 53), 0x2A,
                       lambda p, s: matched.append(p),
                       retry=RetryPolicy(initial_timeout=5.0, max_attempts=1))
        server = b.socket(53)
        # Same ID 0x2A but QR=0 (a query, e.g. CACHE-UPDATE).
        server.send(b"\x00\x2a\x00\x00query", ("10.0.0.1", 1100))
        simulator.run_until(1.0)
        assert fallthrough and not matched

    def test_late_duplicate_response_goes_to_handler_or_dropped(self, pair,
                                                                simulator):
        a, b = pair
        client = a.socket(1200)
        unmatched = []
        client.on_receive(lambda p, s, d: unmatched.append(p))
        results = []
        client.request(b"\x00\x05\x00\x00", ("10.0.0.2", 53), 5,
                       lambda p, s: results.append(p),
                       retry=RetryPolicy(initial_timeout=1.0, max_attempts=1))
        server = b.socket(53)
        response = b"\x00\x05\x80\x00pong"
        server.send(response, ("10.0.0.1", 1200))
        server.send(response, ("10.0.0.1", 1200))  # duplicate
        simulator.run()
        assert len(results) == 1
        assert len(unmatched) == 1  # the duplicate fell through


class TestRetryPolicy:
    def test_backoff_progression(self):
        policy = RetryPolicy(initial_timeout=1.0, backoff=2.0,
                             max_timeout=5.0, max_attempts=5)
        assert [policy.timeout_for(i) for i in range(1, 6)] == \
            [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_total_budget(self):
        policy = RetryPolicy(initial_timeout=1.0, backoff=2.0,
                             max_timeout=100.0, max_attempts=3)
        assert policy.total_budget() == 7.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(initial_timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_attempt_below_one_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().timeout_for(0)
