"""Cross-module integration tests.

These exercise the seams the unit tests cannot: the measurement prober
against a *live* simulated nameserver hierarchy (not the oracle), the
emergency-remap scenario from the paper's introduction, and agreement
between the event-driven simulator and the §4.1 analytical model at the
whole-system level.
"""

import pytest

from repro.core import DynamicLeasePolicy, attach_dnscup
from repro.dnslib import A, Name, Rcode, RRType
from repro.measurement import (
    DnsDynamicsProber,
    oracle_from_specs,
    summarize_campaign,
)
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.sim import ProtocolScenario, ScenarioConfig, Testbed, TestbedConfig
from repro.traces import (
    CATEGORY_REGULAR,
    DomainSpec,
    PoissonRelocation,
    StableProcess,
    WorkloadConfig,
)
from repro.zone import load_zone


class TestProberAgainstLiveServer:
    """The prober's change counts must match whether it samples the
    ground-truth oracle or a real server whose zone follows the same
    change process — validating the measurement substitution."""

    def test_oracle_and_live_server_agree(self):
        name = Name.from_text("www.moving.com")
        process = PoissonRelocation(["10.7.0.1"], mean_lifetime=2000.0,
                                    seed=42)
        domain = DomainSpec(name, CATEGORY_REGULAR, 600.0, 1.0, process)

        # Path 1: oracle.
        prober = DnsDynamicsProber(oracle_from_specs([domain]),
                                   max_probes_per_domain=200)
        oracle_result = prober.probe_domain(domain)

        # Path 2: live zone, mutated by the same process events, sampled
        # through an actual authoritative server at the same cadence.
        simulator = Simulator()
        network = Network(simulator, seed=1)
        zone = load_zone(
            "$ORIGIN moving.com.\n$TTL 600\n"
            "@ IN SOA ns1 admin 1 7200 900 604800 300\n"
            "@ IN NS ns1\nns1 IN A 10.7.255.1\nwww IN A 10.7.0.1\n")
        server = AuthoritativeServer(Host(network, "10.7.255.1"), [zone])
        client = Host(network, "10.7.255.2").socket()

        resolution = oracle_result.ttl_class.resolution
        horizon = 200 * resolution
        for event in process.events_between(0.0, horizon):
            simulator.schedule_at(event.time,
                                  lambda e=event: zone.replace_address(
                                      name, list(e.addresses)))
        observed = []

        def probe(step):
            from repro.dnslib import Message, make_query
            query = make_query(name, RRType.A, recursion_desired=False)
            client.request(
                query.to_wire(), ("10.7.255.1", 53), query.id,
                lambda p, s: observed.append(
                    tuple(sorted(r.rdata.address
                                 for r in Message.from_wire(p).answer))))

        for step in range(200):
            simulator.schedule_at(step * resolution, lambda s=step: probe(s))
        simulator.run()

        live_changes = sum(1 for a, b in zip(observed, observed[1:])
                           if a != b)
        assert live_changes == oracle_result.changes

    def test_campaign_summaries_have_expected_shape(self):
        from repro.traces import PopulationConfig, generate_population
        population = generate_population(PopulationConfig(
            regular_per_tld=12, cdn_count=12, dyn_count=12, seed=77))
        prober = DnsDynamicsProber(oracle_from_specs(population),
                                   max_probes_per_domain=400)
        summaries = summarize_campaign(prober.run_campaign(population))
        # Classes 1-2 (CDN-dominated) change far more often than 3-5.
        fast = [s.mean_change_frequency for i, s in summaries.items()
                if i in (1, 2)]
        slow = [s.mean_change_frequency for i, s in summaries.items()
                if i in (3, 4, 5)]
        assert fast and slow
        assert min(fast) > max(slow)


class TestEmergencyRemap:
    """The paper's motivating scenario 1: a disaster forces an immediate
    redirect of a service to a backup site; DNScup caches follow at
    network speed while TTL caches are stranded."""

    def build(self, dnscup_enabled):
        simulator = Simulator()
        network = Network(simulator, seed=3)
        zone = load_zone(
            "$ORIGIN bank.com.\n$TTL 86400\n"   # one-day TTL: the trap
            "@ IN SOA ns1 admin 1 7200 900 604800 300\n"
            "@ IN NS ns1\nns1 IN A 10.8.0.1\nwww IN A 10.8.1.1\n")
        root = AuthoritativeServer(
            Host(network, "198.41.0.4"),
            [load_zone("$ORIGIN .\n$TTL 86400\n"
                       ". IN SOA a.root. admin. 1 7200 900 604800 300\n"
                       ". IN NS a.root.\na.root. IN A 198.41.0.4\n"
                       "bank.com. IN NS ns1.bank.com.\n"
                       "ns1.bank.com. IN A 10.8.0.1\n",
                       origin=Name.root())])
        auth = AuthoritativeServer(Host(network, "10.8.0.1"), [zone])
        middleware = None
        if dnscup_enabled:
            middleware = attach_dnscup(auth, policy=DynamicLeasePolicy(0.0))
        resolver = RecursiveResolver(Host(network, "10.9.0.1"),
                                     [("198.41.0.4", 53)],
                                     dnscup_enabled=dnscup_enabled)
        stub = StubResolver(Host(network, "10.9.0.2"), ("10.9.0.1", 53),
                            cache_seconds=0.0)
        return simulator, zone, resolver, stub, middleware

    def lookup(self, simulator, stub):
        results = []
        stub.lookup("www.bank.com", lambda a, rc: results.append(a))
        simulator.run()
        return results[0]

    def test_dnscup_redirect_is_instant(self):
        simulator, zone, resolver, stub, middleware = self.build(True)
        assert self.lookup(simulator, stub) == ["10.8.1.1"]
        # Disaster at t: service moves to the backup site.
        zone.replace_address("www.bank.com", ["172.31.99.1"])
        simulator.run()
        assert self.lookup(simulator, stub) == ["172.31.99.1"]
        assert middleware.notification.ack_ratio() == 1.0

    def test_ttl_only_serves_dead_address(self):
        simulator, zone, resolver, stub, _ = self.build(False)
        assert self.lookup(simulator, stub) == ["10.8.1.1"]
        zone.replace_address("www.bank.com", ["172.31.99.1"])
        simulator.run()
        # The resolver cache still holds the dead mapping (TTL one day).
        assert self.lookup(simulator, stub) == ["10.8.1.1"]


class TestScenarioVsAnalyticalModel:
    def test_upstream_savings_follow_lease_model(self):
        """With DNScup leases on, resolvers refetch less after TTL expiry
        than without — the communication saving §4.1 promises."""
        domains = [DomainSpec(Name.from_text(f"www.s{i}.com"),
                              CATEGORY_REGULAR, 30.0, 1.0,
                              StableProcess([f"10.30.{i}.1"]))
                   for i in range(4)]
        workload = WorkloadConfig(duration=1800.0, clients=9, nameservers=3,
                                  total_request_rate=1.0,
                                  client_cache_seconds=0.0, seed=31)
        upstream = {}
        for enabled in (True, False):
            scenario = ProtocolScenario(
                domains, ScenarioConfig(dnscup_enabled=enabled,
                                        auth_servers=1, resolvers=3))
            scenario.run_workload(workload)
            upstream[enabled] = scenario.total_upstream_queries()
        assert upstream[True] < upstream[False]


class TestTestbedCpuParity:
    def test_query_handling_cost_comparable(self):
        """§5.2: 'the difference in computation overhead between TTL and
        DNScup is hardly noticeable'.  Handle the same query stream with
        and without the middleware and compare per-query CPU time."""
        import time

        def time_queries(dnscup_enabled):
            testbed = Testbed(TestbedConfig(dnscup_enabled=dnscup_enabled))
            testbed.lookup_all(0)  # warm caches and code paths
            start = time.perf_counter()
            for _ in range(3):
                for cache in testbed.caches:
                    cache.cache.flush()
                testbed.lookup_all(0)
            return time.perf_counter() - start

        with_cup = time_queries(True)
        without = time_queries(False)
        # "Hardly noticeable": within 3x under noisy CI timing.
        assert with_cup < 3.0 * without
