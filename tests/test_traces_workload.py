"""Tests for workload generation and client-cache thinning."""

import pytest

from repro.dnslib import Name
from repro.traces import (
    ClientCacheFilter,
    PopulationConfig,
    QueryEvent,
    WorkloadConfig,
    domain_request_rates,
    generate_population,
    generate_queries,
    generate_requests,
    measured_rates,
    split_by_nameserver,
    trace_roundtrip,
    write_trace,
)


@pytest.fixture(scope="module")
def small_population():
    return generate_population(PopulationConfig(regular_per_tld=5,
                                                cdn_count=5, dyn_count=5))


@pytest.fixture(scope="module")
def config():
    return WorkloadConfig(duration=3600.0, clients=20, nameservers=3,
                          total_request_rate=1.0, seed=21)


@pytest.fixture(scope="module")
def requests(small_population, config):
    return list(generate_requests(small_population, config))


class TestRequestGeneration:
    def test_time_ordered(self, requests):
        times = [e.time for e in requests]
        assert times == sorted(times)

    def test_within_duration(self, requests, config):
        assert all(0 <= e.time <= config.duration for e in requests)

    def test_total_rate_approximate(self, requests, config):
        empirical = len(requests) / config.duration
        assert empirical == pytest.approx(config.total_request_rate, rel=0.2)

    def test_clients_in_range(self, requests, config):
        assert all(0 <= e.client < config.clients for e in requests)

    def test_nameserver_assignment_consistent(self, requests, config):
        for event in requests:
            assert event.nameserver == event.client % config.nameservers

    def test_deterministic(self, small_population, config):
        again = list(generate_requests(small_population, config))
        assert again == list(generate_requests(small_population, config))

    def test_popular_domains_queried_more(self, small_population, requests):
        rates = domain_request_rates(small_population, 1.0)
        hottest = max(rates, key=lambda pair: pair[1])[0]
        coldest = min(rates, key=lambda pair: pair[1])[0]
        count_hot = sum(1 for e in requests if e.name == hottest.name)
        count_cold = sum(1 for e in requests if e.name == coldest.name)
        assert count_hot >= count_cold


class TestClientCacheFilter:
    def make_events(self, times, client=0, name="www.x.com"):
        return [QueryEvent(t, client, Name.from_text(name)) for t in times]

    def test_suppresses_within_window(self):
        cache = ClientCacheFilter(cache_seconds=900.0)
        events = self.make_events([0.0, 100.0, 800.0, 950.0])
        passed = [e.time for e in cache.filter(events)]
        assert passed == [0.0, 950.0]

    def test_distinct_clients_independent(self):
        cache = ClientCacheFilter(900.0)
        events = (self.make_events([0.0], client=1)
                  + self.make_events([1.0], client=2))
        assert len(list(cache.filter(events))) == 2

    def test_distinct_names_independent(self):
        cache = ClientCacheFilter(900.0)
        events = (self.make_events([0.0], name="a.x.com")
                  + self.make_events([1.0], name="b.x.com"))
        assert len(list(cache.filter(events))) == 2

    def test_zero_cache_passes_everything(self):
        cache = ClientCacheFilter(0.0)
        events = self.make_events([0.0, 0.1, 0.2])
        assert len(list(cache.filter(events))) == 3
        assert cache.hit_ratio == 0.0

    def test_hit_ratio(self):
        cache = ClientCacheFilter(100.0)
        events = self.make_events([0.0, 1.0, 2.0, 3.0])
        list(cache.filter(events))
        assert cache.hit_ratio == 0.75

    def test_negative_cache_seconds_rejected(self):
        with pytest.raises(ValueError):
            ClientCacheFilter(-1.0)

    def test_generate_queries_thinner_than_requests(self, small_population,
                                                    config, requests):
        queries = list(generate_queries(small_population, config))
        assert 0 < len(queries) <= len(requests)


class TestSplitsAndRates:
    def test_split_by_nameserver_partitions(self, requests, config):
        traces = split_by_nameserver(requests, config.nameservers)
        assert sum(len(t) for t in traces) == len(requests)
        for index, trace in enumerate(traces):
            assert all(e.nameserver == index for e in trace)

    def test_measured_rates_by_name(self, requests, config):
        rates = measured_rates(requests, config.duration)
        total = sum(rates.values())
        assert total == pytest.approx(len(requests) / config.duration)

    def test_measured_rates_by_pair(self, requests, config):
        rates = measured_rates(requests, config.duration,
                               by="name-nameserver")
        assert all(isinstance(key, tuple) for key in rates)

    def test_measured_rates_bad_grouping(self, requests):
        with pytest.raises(ValueError):
            measured_rates(requests, 1.0, by="bogus")

    def test_measured_rates_bad_duration(self, requests):
        with pytest.raises(ValueError):
            measured_rates(requests, 0.0)


class TestTraceFormat:
    def test_roundtrip(self, requests):
        sample = requests[:50]
        assert trace_roundtrip(sample) == sample

    def test_file_roundtrip(self, requests, tmp_path):
        from repro.traces import load_trace
        path = str(tmp_path / "trace.txt")
        write_trace(requests[:20], path)
        assert load_trace(path) == requests[:20]

    def test_malformed_line_rejected(self):
        import io
        from repro.traces import load_trace
        with pytest.raises(ValueError):
            load_trace(io.StringIO("1.0 2\n"))
