"""Tests for TSIG transaction signatures (§5.3 secure DNScup)."""

import pytest

from repro.dnslib import (
    Key,
    Keyring,
    Message,
    RRType,
    TsigError,
    Verifier,
    make_query,
    sign,
    split_signed,
)


@pytest.fixture
def key():
    return Key.create("push.example.com", b"0123456789abcdef-secret")


@pytest.fixture
def keyring(key):
    ring = Keyring()
    ring.add(key)
    return ring


@pytest.fixture
def verifier(keyring):
    return Verifier(keyring)


def wire():
    return make_query("www.example.com", RRType.A).to_wire()


class TestKeyManagement:
    def test_short_secret_rejected(self):
        with pytest.raises(ValueError):
            Key.create("k.example", b"short")

    def test_string_secret_encoded(self):
        key = Key.create("k.example", "x" * 20)
        assert isinstance(key.secret, bytes)

    def test_keyring_lookup_case_insensitive(self, keyring, key):
        assert keyring.get("PUSH.Example.COM") == key
        assert "push.example.com" in keyring
        assert len(keyring) == 1


class TestSignVerify:
    def test_roundtrip(self, key, verifier):
        message = wire()
        signed = sign(message, key, now=1000.0)
        assert verifier.verify(signed, now=1000.0) == message

    def test_signed_blob_parses(self, key):
        message = wire()
        signed = sign(message, key, now=1000.0)
        stripped, fields = split_signed(signed)
        assert stripped == message
        assert fields["key_name"] == key.name
        assert fields["signed_at"] == 1000

    def test_unsigned_passthrough_when_optional(self, verifier):
        message = wire()
        assert verifier.verify(message, now=0.0,
                               require_signature=False) == message

    def test_unsigned_rejected_when_required(self, verifier):
        with pytest.raises(TsigError):
            verifier.verify(wire(), now=0.0)

    def test_header_intact_after_signing(self, key):
        """Request/response matching peeks at the first bytes — signing
        must not disturb them."""
        message = wire()
        signed = sign(message, key, now=5.0)
        assert signed[:4] == message[:4]


class TestTamperDetection:
    def test_payload_tamper_detected(self, key, verifier):
        signed = bytearray(sign(wire(), key, now=1000.0))
        signed[4] ^= 0xFF  # flip a bit in the message body
        with pytest.raises(TsigError):
            verifier.verify(bytes(signed), now=1000.0)

    def test_mac_tamper_detected(self, key, verifier):
        signed = bytearray(sign(wire(), key, now=1000.0))
        signed[-1] ^= 0x01
        with pytest.raises(TsigError):
            verifier.verify(bytes(signed), now=1000.0)

    def test_unknown_key_rejected(self, verifier):
        other = Key.create("other.example.com", b"another-16-byte-secret!")
        signed = sign(wire(), other, now=1000.0)
        with pytest.raises(TsigError):
            verifier.verify(signed, now=1000.0)

    def test_wrong_secret_rejected(self, key):
        impostor_ring = Keyring()
        impostor_ring.add(Key.create(key.name, b"wrong-secret-of-16b+"))
        impostor = Verifier(impostor_ring)
        signed = sign(wire(), key, now=1000.0)
        with pytest.raises(TsigError):
            impostor.verify(signed, now=1000.0)


class TestTimeChecks:
    def test_within_fudge_accepted(self, key, verifier):
        signed = sign(wire(), key, now=1000.0, fudge=300)
        verifier.verify(signed, now=1250.0)

    def test_outside_fudge_rejected(self, key, verifier):
        signed = sign(wire(), key, now=1000.0, fudge=300)
        with pytest.raises(TsigError):
            verifier.verify(signed, now=1400.0)

    def test_future_signature_rejected(self, key, verifier):
        signed = sign(wire(), key, now=5000.0, fudge=300)
        with pytest.raises(TsigError):
            verifier.verify(signed, now=1000.0)

    def test_replay_of_older_timestamp_rejected(self, key, verifier):
        first = sign(wire(), key, now=2000.0)
        old = sign(wire(), key, now=1900.0)
        verifier.verify(first, now=2000.0)
        with pytest.raises(TsigError):
            verifier.verify(old, now=2000.0)

    def test_equal_timestamp_accepted(self, key, verifier):
        """Several messages in the same second must all verify."""
        a = sign(wire(), key, now=2000.0)
        b = sign(wire(), key, now=2000.0)
        verifier.verify(a, now=2000.0)
        verifier.verify(b, now=2000.0)


class TestSplitEdgeCases:
    def test_plain_message_passes_through(self):
        message = wire()
        stripped, fields = split_signed(message)
        assert stripped == message and fields is None

    def test_truncated_blob_raises(self, key):
        signed = sign(wire(), key, now=0.0)
        with pytest.raises(TsigError):
            split_signed(signed[:-3])
