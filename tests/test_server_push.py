"""Tests for the DNS-Push-style comparator."""

import pytest

from repro.dnslib import A, Name, RRType
from repro.server import PushService, PushSubscriber
from repro.zone import load_zone
from tests.conftest import EXAMPLE_ZONE_TEXT

NAME = Name.from_text("www.example.com")


@pytest.fixture
def world(make_host, simulator):
    server_host = make_host("10.1.0.1")
    cache_host = make_host("10.2.0.1")
    zone = load_zone(EXAMPLE_ZONE_TEXT)
    service = PushService(server_host.dns_socket(), [zone],
                          keepalive_interval=600.0)
    applied = []
    subscriber = PushSubscriber(
        cache_host.dns_socket(),
        lambda name, rrtype, rrsets: applied.append((name, rrtype, rrsets)))
    return zone, service, subscriber, applied, simulator


class TestSubscriptions:
    def test_subscribe_and_count(self, world):
        zone, service, subscriber, applied, simulator = world
        service.subscribe(subscriber.endpoint, NAME, RRType.A)
        assert service.subscriber_count() == 1
        # Idempotent.
        service.subscribe(subscriber.endpoint, NAME, RRType.A)
        assert service.subscriber_count() == 1
        assert service.stats.subscriptions == 1

    def test_unsubscribe(self, world):
        zone, service, subscriber, applied, simulator = world
        service.subscribe(subscriber.endpoint, NAME, RRType.A)
        assert service.unsubscribe(subscriber.endpoint, NAME, RRType.A)
        assert not service.unsubscribe(subscriber.endpoint, NAME, RRType.A)
        assert service.subscriber_count() == 0


class TestPushDelivery:
    def test_change_pushed_to_subscriber(self, world):
        zone, service, subscriber, applied, simulator = world
        service.subscribe(subscriber.endpoint, NAME, RRType.A)
        zone.replace_address(NAME, ["172.30.0.1"])
        simulator.run()
        assert service.stats.pushes_sent == 1
        assert subscriber.stats.pushes_received == 1
        name, rrtype, rrsets = applied[0]
        assert name == NAME and rrsets[0].rdatas == (A("172.30.0.1"),)

    def test_unsubscribed_record_not_pushed(self, world):
        zone, service, subscriber, applied, simulator = world
        service.subscribe(subscriber.endpoint, NAME, RRType.A)
        zone.replace_address("mail.example.com", ["172.30.0.2"])
        simulator.run()
        assert not applied

    def test_subscription_never_decays(self, world):
        """Unlike a lease, subscription state survives arbitrarily long
        idle periods — the storage cost DNScup's dynamic lease avoids."""
        zone, service, subscriber, applied, simulator = world
        service.subscribe(subscriber.endpoint, NAME, RRType.A)
        simulator.run_until(30 * 86400.0)  # a silent month
        zone.replace_address(NAME, ["172.30.0.3"])
        simulator.run()
        assert subscriber.stats.pushes_received == 1

    def test_deletion_pushed_with_empty_answer(self, world):
        zone, service, subscriber, applied, simulator = world
        service.subscribe(subscriber.endpoint, NAME, RRType.A)
        zone.delete_rrset(NAME, RRType.A)
        simulator.run()
        name, rrtype, rrsets = applied[0]
        assert rrsets == []


class TestKeepalives:
    def test_keepalives_flow_per_connection(self, world):
        zone, service, subscriber, applied, simulator = world
        service.subscribe(subscriber.endpoint, NAME, RRType.A)
        service.subscribe(subscriber.endpoint,
                          Name.from_text("mail.example.com"), RRType.A)
        simulator.run_until(1900.0)  # three keepalive intervals
        simulator.run()
        # One connection → one keepalive per interval despite two
        # subscriptions.
        assert service.stats.keepalives_sent == 3
        assert subscriber.stats.keepalives_received == 3

    def test_no_keepalives_without_subscribers(self, world):
        zone, service, subscriber, applied, simulator = world
        simulator.run_until(1900.0)
        assert service.stats.keepalives_sent == 0
