"""Tests for the DNS-dynamics prober."""

import pytest

from repro.dnslib import Name
from repro.measurement import (
    DnsDynamicsProber,
    oracle_from_specs,
    results_by_class,
)
from repro.traces import (
    AddressRotation,
    DomainSpec,
    PoissonRelocation,
    StableProcess,
    CATEGORY_REGULAR,
)


def spec(name, ttl, process):
    return DomainSpec(Name.from_text(name), CATEGORY_REGULAR, ttl, 1.0,
                      process)


class TestOracle:
    def test_oracle_resolves_known_domain(self):
        domain = spec("a.x.com", 60.0, StableProcess(["1.1.1.1"]))
        oracle = oracle_from_specs([domain])
        assert oracle(domain.name, 0.0) == ("1.1.1.1",)

    def test_oracle_unknown_domain_raises(self):
        oracle = oracle_from_specs([])
        with pytest.raises(KeyError):
            oracle(Name.from_text("nope.x.com"), 0.0)

    def test_oracle_sorted_for_stable_comparison(self):
        domain = spec("a.x.com", 60.0, StableProcess(["9.9.9.9", "1.1.1.1"]))
        oracle = oracle_from_specs([domain])
        assert oracle(domain.name, 0.0) == ("1.1.1.1", "9.9.9.9")


class TestProbing:
    def test_stable_domain_never_changes(self):
        domain = spec("a.x.com", 30.0, StableProcess(["1.1.1.1"]))
        prober = DnsDynamicsProber(oracle_from_specs([domain]))
        result = prober.probe_domain(domain)
        assert result.changes == 0
        assert result.change_frequency == 0.0
        assert not result.changed

    def test_probe_count_follows_table1(self):
        domain = spec("a.x.com", 30.0, StableProcess(["1.1.1.1"]))
        prober = DnsDynamicsProber(oracle_from_specs([domain]))
        result = prober.probe_domain(domain)
        assert result.probes == result.ttl_class.probe_count == 4320

    def test_probe_cap_applies(self):
        domain = spec("a.x.com", 30.0, StableProcess(["1.1.1.1"]))
        prober = DnsDynamicsProber(oracle_from_specs([domain]),
                                   max_probes_per_domain=100)
        assert prober.probe_domain(domain).probes == 100

    def test_rotation_every_period_gives_full_frequency(self):
        """A domain rotating every sampling period has frequency ≈ 1."""
        process = AddressRotation(["1.1.1.1", "2.2.2.2"], period=20.0,
                                  change_probability=1.0, seed=1)
        domain = spec("cdn.x.com", 20.0, process)
        prober = DnsDynamicsProber(oracle_from_specs([domain]),
                                   max_probes_per_domain=500)
        result = prober.probe_domain(domain)
        assert result.change_frequency > 0.9
        # The very first flip of a rotation pool is indistinguishable
        # from a relocation (no history yet); everything after must be
        # recognized as rotation.
        assert result.tally.rotation >= result.changes - 1

    def test_relocations_classified_physical(self):
        process = PoissonRelocation(["1.1.1.1"], mean_lifetime=400.0, seed=2)
        domain = spec("moving.x.com", 600.0, process)  # class 3, res 300 s
        prober = DnsDynamicsProber(oracle_from_specs([domain]),
                                   max_probes_per_domain=800)
        result = prober.probe_domain(domain)
        assert result.changes > 0
        assert result.tally.physical == result.changes

    def test_change_times_recorded(self):
        process = AddressRotation(["1.1.1.1", "2.2.2.2"], period=20.0,
                                  change_probability=1.0, seed=3)
        domain = spec("cdn.x.com", 20.0, process)
        prober = DnsDynamicsProber(oracle_from_specs([domain]),
                                   max_probes_per_domain=50)
        result = prober.probe_domain(domain)
        assert len(result.change_times) == result.changes
        assert all(t >= 0 for t in result.change_times)

    def test_undersampling_misses_fast_changes(self):
        """Probing at the class resolution can only see net changes
        between samples — a rotation faster than the sampling period is
        partially invisible (why Table 1 matches resolution to TTL)."""
        fast = AddressRotation(["1.1.1.1", "2.2.2.2", "3.3.3.3"],
                               period=5.0, change_probability=1.0, seed=4)
        domain = spec("fast.x.com", 3000.0, fast)  # class 3: 300 s sampling
        prober = DnsDynamicsProber(oracle_from_specs([domain]),
                                   max_probes_per_domain=200)
        result = prober.probe_domain(domain)
        events = len(fast.events_between(0, 200 * 300.0))
        assert result.changes < events


class TestCampaign:
    def test_results_grouped_by_class(self):
        domains = [
            spec("a.x.com", 30.0, StableProcess(["1.1.1.1"])),
            spec("b.x.com", 120.0, StableProcess(["1.1.1.1"])),
            spec("c.x.com", 7200.0, StableProcess(["1.1.1.1"])),
        ]
        prober = DnsDynamicsProber(oracle_from_specs(domains),
                                   max_probes_per_domain=10)
        results = prober.run_campaign(domains)
        grouped = results_by_class(results)
        assert set(grouped) == {1, 2, 4}
