"""Unit tests for online lease deprivation (evict-under-pressure)."""

import pytest

from repro.core import DynamicLeasePolicy, LeaseTable, ListeningModule
from repro.dnslib import A, ResourceRecord, RRType, make_query, make_response
from repro.net import Simulator


def answered_query(name, rrc):
    query = make_query(name, RRType.A, rrc=rrc)
    response = make_response(query)
    response.authoritative = True
    response.answer.append(ResourceRecord(name, RRType.A, 60, A("1.1.1.1")))
    return query, response


@pytest.fixture
def module():
    simulator = Simulator()
    table = LeaseTable(capacity=2)
    return ListeningModule(simulator, table, DynamicLeasePolicy(0.0),
                           max_lease_fn=lambda n, t: 1000.0,
                           rate_window=100.0,
                           evict_under_pressure=True), table, simulator


def offer(module, name, source, times=1):
    for _ in range(times):
        query, response = answered_query(name, rrc=0)
        module.on_query(query, source, response)
    return response


class TestEviction:
    def test_hot_candidate_evicts_coldest(self, module):
        listening, table, simulator = module
        # Fill the table with two cold leases (one arrival each).
        offer(listening, "cold1.x.com", ("10.2.0.1", 40000))
        offer(listening, "cold2.x.com", ("10.2.0.2", 40000))
        assert len(table) == 2
        # A hot record (many arrivals) from a third cache forces room.
        response = offer(listening, "hot.x.com", ("10.2.0.3", 40000),
                         times=10)
        assert response.llt is not None
        assert listening.stats.evictions >= 1
        assert len(table) == 2
        hot_holders = table.holders("hot.x.com", RRType.A, simulator.now)
        assert hot_holders

    def test_cold_candidate_does_not_evict_hot(self, module):
        listening, table, simulator = module
        offer(listening, "hot1.x.com", ("10.2.0.1", 40000), times=10)
        offer(listening, "hot2.x.com", ("10.2.0.2", 40000), times=10)
        response = offer(listening, "cold.x.com", ("10.2.0.3", 40000))
        assert response.llt is None
        assert listening.stats.table_full == 1
        assert table.holders("hot1.x.com", RRType.A, simulator.now)
        assert table.holders("hot2.x.com", RRType.A, simulator.now)

    def test_disabled_by_default(self):
        simulator = Simulator()
        table = LeaseTable(capacity=1)
        listening = ListeningModule(simulator, table,
                                    DynamicLeasePolicy(0.0),
                                    max_lease_fn=lambda n, t: 1000.0)
        offer(listening, "a.x.com", ("10.2.0.1", 40000))
        response = offer(listening, "b.x.com", ("10.2.0.2", 40000),
                         times=10)
        assert response.llt is None
        assert listening.stats.evictions == 0
        assert listening.stats.table_full == 10  # every attempt bounced
