"""Tests for the recursive resolver (the local nameserver / DNS cache)."""

import pytest

from repro.dnslib import (
    A,
    CNAME,
    Message,
    Name,
    NS,
    Rcode,
    ResourceRecord,
    RRSet,
    RRType,
    SOA,
    make_cache_update,
    make_query,
)
from repro.net import LinkProfile, RetryPolicy
from repro.server import AuthoritativeServer, RecursiveResolver, ResolverCache
from repro.zone import Zone, load_zone


ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.                  IN SOA a.root. admin.root. 1 7200 900 604800 300
.                  IN NS a.root.
a.root.            IN A  198.41.0.4
example.com.       IN NS ns1.example.com.
ns1.example.com.   IN A  10.1.0.1
glueless.com.      IN NS ns1.example.com.
"""

AUTH_TEXT = """\
$ORIGIN example.com.
$TTL 3600
@     IN SOA ns1 admin 1 7200 900 604800 300
@     IN NS  ns1
ns1   IN A   10.1.0.1
www   IN A   10.0.0.10
alias IN CNAME www
ext   IN CNAME target.glueless.com.
"""

GLUELESS_TEXT = """\
$ORIGIN glueless.com.
$TTL 3600
@      IN SOA ns1.example.com. admin 1 7200 900 604800 300
@      IN NS  ns1.example.com.
target IN A   172.16.0.50
"""


@pytest.fixture
def world(make_host, simulator):
    """Root + one auth server serving two zones + a resolver."""
    root_host = make_host("198.41.0.4")
    auth_host = make_host("10.1.0.1")
    resolver_host = make_host("10.2.0.1")
    root = AuthoritativeServer(root_host,
                               [load_zone(ROOT_TEXT, origin=Name.root())])
    auth = AuthoritativeServer(auth_host, [load_zone(AUTH_TEXT),
                                           load_zone(GLUELESS_TEXT)])
    resolver = RecursiveResolver(resolver_host, [("198.41.0.4", 53)],
                                 cache=ResolverCache())
    return root, auth, resolver, simulator


def resolve(resolver, simulator, name, rrtype=RRType.A):
    results = []
    resolver.resolve(name, rrtype, lambda recs, rc: results.append((recs, rc)))
    simulator.run()
    assert results, "resolution never completed"
    return results[0]


class TestIterativeResolution:
    def test_follows_referral_from_root(self, world):
        root, auth, resolver, simulator = world
        records, rcode = resolve(resolver, simulator, "www.example.com")
        assert rcode == Rcode.NOERROR
        assert any(r.rdata == A("10.0.0.10") for r in records)
        assert root.stats.referrals == 1
        assert auth.stats.answers == 1

    def test_answer_cached_second_lookup_local(self, world):
        _, auth, resolver, simulator = world
        resolve(resolver, simulator, "www.example.com")
        upstream_before = resolver.stats.upstream_queries
        records, rcode = resolve(resolver, simulator, "www.example.com")
        assert rcode == Rcode.NOERROR and records
        assert resolver.stats.upstream_queries == upstream_before
        assert resolver.stats.cache_answers == 1

    def test_cached_ttl_decays(self, world):
        _, _, resolver, simulator = world
        resolve(resolver, simulator, "www.example.com")
        simulator.run_until(simulator.now + 100.0)
        records, _ = resolve(resolver, simulator, "www.example.com")
        a_records = [r for r in records if r.rrtype == RRType.A]
        assert a_records[0].ttl <= 3600 - 100

    def test_expired_entry_refetched(self, world):
        _, auth, resolver, simulator = world
        resolve(resolver, simulator, "www.example.com")
        simulator.run_until(simulator.now + 4000.0)  # past TTL 3600
        resolve(resolver, simulator, "www.example.com")
        assert auth.stats.queries >= 2

    def test_nxdomain_negative_cached(self, world):
        _, auth, resolver, simulator = world
        _, rcode = resolve(resolver, simulator, "missing.example.com")
        assert rcode == Rcode.NXDOMAIN
        queries_before = auth.stats.queries
        _, rcode2 = resolve(resolver, simulator, "missing.example.com")
        assert rcode2 == Rcode.NXDOMAIN
        assert auth.stats.queries == queries_before

    def test_nodata_negative_cached(self, world):
        _, auth, resolver, simulator = world
        records, rcode = resolve(resolver, simulator, "www.example.com",
                                 RRType.MX)
        assert rcode == Rcode.NOERROR and not records

    def test_cname_within_zone(self, world):
        _, _, resolver, simulator = world
        records, rcode = resolve(resolver, simulator, "alias.example.com")
        assert rcode == Rcode.NOERROR
        assert any(r.rrtype == RRType.CNAME for r in records)
        assert any(r.rdata == A("10.0.0.10") for r in records)

    def test_cname_across_zones(self, world):
        _, _, resolver, simulator = world
        records, rcode = resolve(resolver, simulator, "ext.example.com")
        assert rcode == Rcode.NOERROR
        assert any(r.rrtype == RRType.A and r.rdata == A("172.16.0.50")
                   for r in records)

    def test_glueless_delegation_resolved(self, world):
        _, _, resolver, simulator = world
        records, rcode = resolve(resolver, simulator, "target.glueless.com")
        assert rcode == Rcode.NOERROR
        assert any(r.rdata == A("172.16.0.50") for r in records)

    def test_unreachable_root_fails_servfail(self, make_host, simulator):
        resolver = RecursiveResolver(
            make_host("10.2.0.2"), [("203.0.113.1", 53)],
            retry=RetryPolicy(initial_timeout=0.2, max_attempts=2))
        records, rcode = resolve(resolver, simulator, "www.example.com")
        assert rcode == Rcode.SERVFAIL and not records

    def test_requires_root_hint(self, make_host):
        with pytest.raises(ValueError):
            RecursiveResolver(make_host("10.2.0.3"), [])


class TestClientService:
    def test_serves_stub_queries_on_port_53(self, world, make_host):
        _, _, resolver, simulator = world
        client = make_host("10.3.0.1").socket()
        query = make_query("www.example.com", RRType.A,
                           recursion_desired=True)
        responses = []
        client.request(query.to_wire(), ("10.2.0.1", 53), query.id,
                       lambda p, s: responses.append(p))
        simulator.run()
        response = Message.from_wire(responses[0])
        assert response.recursion_available
        assert any(r.rdata == A("10.0.0.10") for r in response.answer)

    def test_multi_question_client_query_formerr(self, world, make_host):
        _, _, resolver, simulator = world
        client = make_host("10.3.0.2").socket()
        query = make_query("www.example.com", RRType.A)
        query.question.append(query.question[0])
        responses = []
        client.request(query.to_wire(), ("10.2.0.1", 53), query.id,
                       lambda p, s: responses.append(p))
        simulator.run()
        assert Message.from_wire(responses[0]).rcode == Rcode.FORMERR


class TestDnscupClientSide:
    @pytest.fixture
    def cup_world(self, make_host, simulator):
        root_host = make_host("198.41.0.4")
        auth_host = make_host("10.1.0.1")
        resolver_host = make_host("10.2.0.1")
        root = AuthoritativeServer(root_host,
                                   [load_zone(ROOT_TEXT, origin=Name.root())])
        auth = AuthoritativeServer(auth_host, [load_zone(AUTH_TEXT)])

        def grant(query, src, response):
            if query.cache_update_aware and response.answer:
                response.llt = 500

        auth.query_hooks.append(grant)
        resolver = RecursiveResolver(resolver_host, [("198.41.0.4", 53)],
                                     dnscup_enabled=True)
        return auth, resolver, simulator

    def test_outgoing_queries_carry_rrc(self, cup_world):
        auth, resolver, simulator = cup_world
        seen = []
        auth.query_hooks.append(
            lambda q, src, r: seen.append(q.question[0].rrc))
        resolve(resolver, simulator, "www.example.com")
        assert seen and seen[0] is not None

    def test_lease_recorded_on_cache_entry(self, cup_world):
        auth, resolver, simulator = cup_world
        resolve(resolver, simulator, "www.example.com")
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.lease_until == pytest.approx(simulator.now + 500, abs=1.0)
        assert resolver.stats.leases_received == 1
        grant = resolver.lease_grants[(Name.from_text("www.example.com"),
                                       RRType.A)]
        assert grant.origin == ("10.1.0.1", 53)
        assert grant.llt == 500.0

    def test_cache_update_applied_and_acked(self, cup_world, make_host):
        auth, resolver, simulator = cup_world
        resolve(resolver, simulator, "www.example.com")
        pusher = make_host("10.1.0.1").socket(5353)  # same addr, spare port
        update = make_cache_update(
            "www.example.com",
            [ResourceRecord("www.example.com", RRType.A, 3600, A("9.9.9.9"))])
        acks = []
        pusher.request(update.to_wire(), ("10.2.0.1", 53), update.id,
                       lambda p, s: acks.append(p))
        simulator.run()
        assert acks and acks[0] is not None
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas == (A("9.9.9.9"),)
        assert resolver.stats.cache_updates_received == 1
        assert resolver.stats.cache_updates_acked == 1

    def test_cache_update_for_unknown_record_acked_but_ignored(
            self, cup_world, make_host):
        auth, resolver, simulator = cup_world
        pusher = make_host("10.1.0.2").socket(5353)
        update = make_cache_update(
            "never-seen.example.com",
            [ResourceRecord("never-seen.example.com", RRType.A, 60,
                            A("9.9.9.9"))])
        acks = []
        pusher.request(update.to_wire(), ("10.2.0.1", 53), update.id,
                       lambda p, s: acks.append(p))
        simulator.run()
        assert acks and acks[0] is not None
        assert resolver.stats.cache_updates_ignored == 1
        assert resolver.cache.peek("never-seen.example.com", RRType.A) is None

    def test_leased_entry_served_past_ttl(self, cup_world):
        """Strong-consistency absorption: no upstream refetch while leased."""
        auth, resolver, simulator = cup_world
        resolve(resolver, simulator, "www.example.com")
        # TTL is 3600 but lease is 500: at t+400 the entry is TTL-valid
        # anyway; shrink TTL by direct cache surgery to isolate the lease.
        entry = resolver.cache.peek("www.example.com", RRType.A)
        entry.expires_at = simulator.now + 10.0
        simulator.run_until(simulator.now + 100.0)
        queries_before = auth.stats.queries
        records, rcode = resolve(resolver, simulator, "www.example.com")
        assert rcode == Rcode.NOERROR and records
        assert auth.stats.queries == queries_before
