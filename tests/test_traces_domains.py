"""Tests for synthetic domain populations."""

import pytest

from repro.dnslib import Name
from repro.traces import (
    CATEGORY_CDN,
    CATEGORY_DYN,
    CATEGORY_REGULAR,
    PopulationConfig,
    REGULAR_TLDS,
    by_category,
    by_ttl_class,
    category_map,
    generate_cdn_domains,
    generate_dyn_domains,
    generate_population,
    generate_regular_domains,
    zipf_weights,
)


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationConfig(regular_per_tld=30,
                                                cdn_count=20, dyn_count=20))


class TestZipf:
    def test_weights_decreasing(self):
        weights = zipf_weights(100)
        assert weights == sorted(weights, reverse=True)

    def test_head_dominates(self):
        weights = zipf_weights(1000)
        assert sum(weights[:10]) > 0.1 * sum(weights)


class TestRegularDomains:
    def test_counts_per_tld(self):
        config = PopulationConfig(regular_per_tld=10)
        domains = generate_regular_domains(config)
        assert len(domains) == 10 * len(REGULAR_TLDS)
        tlds = {d.name.tld() for d in domains}
        assert "com" in tlds and "gov" in tlds

    def test_all_regular_category(self):
        domains = generate_regular_domains(PopulationConfig(regular_per_tld=5))
        assert all(d.category == CATEGORY_REGULAR for d in domains)

    def test_deterministic_for_seed(self):
        config = PopulationConfig(regular_per_tld=5, seed=99)
        a = generate_regular_domains(config)
        b = generate_regular_domains(config)
        assert [d.name for d in a] == [d.name for d in b]
        assert [d.ttl for d in a] == [d.ttl for d in b]


class TestCdnDomains:
    def test_ttls_bounded_by_300(self, population):
        """§3.2: all CDN and Dyn TTLs are <= 300 s (classes 1-2)."""
        for domain in by_category(population).get(CATEGORY_CDN, []):
            assert domain.ttl <= 300
            assert domain.ttl_class.index in (1, 2)

    def test_providers_match_ttls(self):
        domains = generate_cdn_domains(PopulationConfig(cdn_count=10))
        for domain in domains:
            if domain.provider == "akamai":
                assert domain.ttl == 20.0
            elif domain.provider == "speedera":
                assert domain.ttl == 120.0

    def test_akamai_changes_less_than_speedera(self):
        """§3.2: Akamai ~10 % change frequency vs Speedera ~100 %."""
        domains = generate_cdn_domains(PopulationConfig(cdn_count=20))
        horizon = 86400.0

        def mean_changes_per_probe(provider):
            members = [d for d in domains if d.provider == provider]
            ratios = []
            for domain in members:
                events = domain.process.events_between(0, horizon)
                probes = horizon / domain.ttl
                ratios.append(len(events) / probes)
            return sum(ratios) / len(ratios)

        assert mean_changes_per_probe("akamai") < 0.25
        assert mean_changes_per_probe("speedera") > 0.8


class TestDynDomains:
    def test_category_and_physical_changes(self):
        domains = generate_dyn_domains(PopulationConfig(dyn_count=10))
        assert all(d.category == CATEGORY_DYN for d in domains)
        horizon = 30 * 86400.0
        for domain in domains:
            for event in domain.process.events_between(0, horizon):
                assert event.is_physical  # DHCP moves are relocations


class TestGrouping:
    def test_by_category_covers_all(self, population):
        groups = by_category(population)
        assert set(groups) == {CATEGORY_REGULAR, CATEGORY_CDN, CATEGORY_DYN}
        assert sum(len(v) for v in groups.values()) == len(population)

    def test_by_ttl_class_covers_all(self, population):
        groups = by_ttl_class(population)
        assert sum(len(v) for v in groups.values()) == len(population)
        assert set(groups) <= {1, 2, 3, 4, 5}

    def test_category_map_includes_zone_origins(self, population):
        mapping = category_map(population)
        cdn = by_category(population)[CATEGORY_CDN][0]
        assert mapping[cdn.name] == CATEGORY_CDN
        assert mapping[cdn.zone_origin] == CATEGORY_CDN

    def test_zone_origin_is_registrable_suffix(self, population):
        domain = population[0]
        assert len(domain.zone_origin) == 2
        assert domain.name.is_subdomain_of(domain.zone_origin)
